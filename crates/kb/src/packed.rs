//! Packed pair keys and the dense-id hasher for hot-path maps.
//!
//! The hot loops of candidate generation, pruning and propagation look up
//! `(EntityId, EntityId)` pairs millions of times per campaign. Hashing a
//! 2-field tuple through SipHash is the single most expensive part of
//! those lookups, so this module provides:
//!
//! * [`PackedPair`] — both entity ids packed into one `u64`, left id in
//!   the high 32 bits so the integer order of the packed key equals the
//!   `(left, right)` lexicographic order of the tuple;
//! * [`IdHasher`] — a multiply-and-fold finisher for dense integer keys
//!   (the `EntityHasher` idiom), deterministic across processes because
//!   it has no random state;
//! * [`IdHashMap`] / [`IdHashSet`] — `std` map/set aliases wired to
//!   [`IdHasher`].
//!
//! # Determinism contract
//!
//! Swapping hashers can never change campaign outputs: every map keyed by
//! ids is used for *lookups only* — whenever code produces an ordered
//! artifact (candidate lists, adjacency, question order) it derives the
//! order from `Vec` insertion order or an explicit sort, never from map
//! iteration order. `IdHasher` additionally removes the per-process
//! `RandomState` seed, so even accidental iteration-order dependence
//! would be reproducible across runs and machines.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::EntityId;

/// A `(left, right)` entity pair packed into a single `u64`.
///
/// The left (KB1) id occupies the high 32 bits, the right (KB2) id the
/// low 32 bits, so `u64` ordering coincides with lexicographic tuple
/// ordering and a packed key can be compared, sorted and hashed as one
/// machine word.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PackedPair(u64);

impl PackedPair {
    /// Packs a `(left, right)` pair.
    #[inline]
    pub fn pack(left: EntityId, right: EntityId) -> Self {
        PackedPair((u64::from(left.0) << 32) | u64::from(right.0))
    }

    /// The left (KB1) entity.
    #[inline]
    pub fn left(self) -> EntityId {
        EntityId((self.0 >> 32) as u32)
    }

    /// The right (KB2) entity.
    #[inline]
    pub fn right(self) -> EntityId {
        EntityId(self.0 as u32)
    }

    /// Unpacks back into the `(left, right)` tuple.
    #[inline]
    pub fn unpack(self) -> (EntityId, EntityId) {
        (self.left(), self.right())
    }

    /// The raw packed key.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<(EntityId, EntityId)> for PackedPair {
    #[inline]
    fn from((left, right): (EntityId, EntityId)) -> Self {
        PackedPair::pack(left, right)
    }
}

impl From<PackedPair> for (EntityId, EntityId) {
    #[inline]
    fn from(p: PackedPair) -> Self {
        p.unpack()
    }
}

impl fmt::Debug for PackedPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.left(), self.right())
    }
}

impl Hash for PackedPair {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0);
    }
}

/// Odd (hence bijective modulo 2^64) golden-ratio multiplier with entropy
/// in every byte, so the product scrambles all positions it can reach.
const UPPER_PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// A deterministic hasher for dense integer ids.
///
/// One `wrapping_mul` plus a high→low XOR fold replaces SipHash for keys
/// that are already well-distributed small integers ([`EntityId`],
/// [`PackedPair`], pair ids). The fold in [`finish`](Hasher::finish)
/// matters: multiplication only propagates entropy *upward* (bit `k` of a
/// product depends on bits `≤ k` of its inputs), while `HashMap` derives
/// bucket indices from the *low* hash bits — without the fold, every
/// [`PackedPair`] sharing a right entity id would land in the same
/// buckets and long probe chains would dominate dense workloads.
/// Multi-word keys fold via XOR before the multiply, so tuple keys
/// such as `(EntityId, EntityId)` still work. Hashing byte strings is a
/// bug, not a fallback — [`IdHasher::write`] panics.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher {
    state: u64,
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // `x ^ (x >> 32)` is a bijection mixing the multiply's high-bit
        // entropy back into the bucket-index bits.
        self.state ^ (self.state >> 32)
    }

    fn write(&mut self, _bytes: &[u8]) {
        panic!("IdHasher is for dense integer ids, not byte strings");
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i).wrapping_mul(UPPER_PHI);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// The `BuildHasher` for [`IdHasher`] maps and sets.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by dense integer ids, hashed with [`IdHasher`].
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A `HashSet` of dense integer ids, hashed with [`IdHasher`].
pub type IdHashSet<K> = HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut h = IdHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn pack_unpack_smoke() {
        let p = PackedPair::pack(EntityId(7), EntityId(12));
        assert_eq!(p.left(), EntityId(7));
        assert_eq!(p.right(), EntityId(12));
        assert_eq!(p.unpack(), (EntityId(7), EntityId(12)));
        assert_eq!(p.as_u64(), (7u64 << 32) | 12);
    }

    #[test]
    fn debug_renders_like_the_tuple() {
        let p = PackedPair::pack(EntityId(3), EntityId(9));
        assert_eq!(format!("{p:?}"), "(e3, e9)");
    }

    #[test]
    fn idhasher_is_known_constants() {
        // The exact hash values are part of the determinism story: they
        // depend only on the key, never on process or platform state.
        let mut h = IdHasher::default();
        h.write_u64(1);
        assert_eq!(h.finish(), UPPER_PHI ^ (UPPER_PHI >> 32));
        assert_eq!(
            hash_one(&PackedPair::pack(EntityId(0), EntityId(1))),
            UPPER_PHI ^ (UPPER_PHI >> 32)
        );
    }

    #[test]
    #[should_panic(expected = "dense integer ids")]
    fn idhasher_rejects_byte_strings() {
        let mut h = IdHasher::default();
        h.write(b"not an id");
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut map: IdHashMap<PackedPair, usize> = IdHashMap::default();
        let mut set: IdHashSet<EntityId> = IdHashSet::default();
        for i in 0..1000u32 {
            map.insert(PackedPair::pack(EntityId(i), EntityId(i * 7)), i as usize);
            set.insert(EntityId(i));
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&PackedPair::pack(EntityId(41), EntityId(287))], 41);
        assert!(set.contains(&EntityId(999)));
        assert!(!set.contains(&EntityId(1000)));
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trips(l in any::<u32>(), r in any::<u32>()) {
            let pair = (EntityId(l), EntityId(r));
            let packed = PackedPair::pack(pair.0, pair.1);
            prop_assert_eq!(packed.unpack(), pair);
            prop_assert_eq!(PackedPair::from(pair).as_u64(), packed.as_u64());
        }

        #[test]
        fn packed_order_is_lexicographic(
            l1 in any::<u32>(), r1 in any::<u32>(),
            l2 in any::<u32>(), r2 in any::<u32>(),
        ) {
            let a = PackedPair::pack(EntityId(l1), EntityId(r1));
            let b = PackedPair::pack(EntityId(l2), EntityId(r2));
            prop_assert_eq!(a.cmp(&b), (l1, r1).cmp(&(l2, r2)));
        }

        #[test]
        fn idhasher_is_deterministic_and_injective_on_u64(
            a in any::<u64>(), b in any::<u64>()
        ) {
            let mut h1 = IdHasher::default();
            h1.write_u64(a);
            let mut h2 = IdHasher::default();
            h2.write_u64(a);
            // Same key, two fresh hashers: identical — there is no
            // hidden per-instance or per-process state.
            prop_assert_eq!(h1.finish(), h2.finish());
            // The multiplier is odd, so x → (x·PHI) mod 2^64 is a
            // bijection: distinct single-word keys never collide.
            let mut h3 = IdHasher::default();
            h3.write_u64(b);
            prop_assert_eq!(a == b, h1.finish() == h3.finish());
        }

        #[test]
        fn u32_and_usize_writes_agree_with_u64(i in any::<u32>()) {
            let mut a = IdHasher::default();
            a.write_u32(i);
            let mut b = IdHasher::default();
            b.write_u64(u64::from(i));
            let mut c = IdHasher::default();
            c.write_usize(i as usize);
            prop_assert_eq!(a.finish(), b.finish());
            prop_assert_eq!(a.finish(), c.finish());
        }
    }
}
