//! Structural validation and the trusted-parts constructor.
//!
//! KBs built through [`KbBuilder`](crate::KbBuilder) are correct by
//! construction (every id is asserted at insertion time). KBs that arrive
//! from *outside* — a binary snapshot, a hand-assembled dump — carry no
//! such guarantee, so [`Kb::from_parts`] re-checks every invariant via
//! [`Kb::validate`] and surfaces corruption as a typed [`KbError`]
//! instead of a latent out-of-bounds panic deep inside the pipeline.

use std::collections::HashMap;
use std::fmt;

use crate::{AttrId, EntityId, Kb, RelId, Value};

/// A structural defect found in a [`Kb`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KbError {
    /// A per-entity adjacency table has the wrong number of rows.
    WrongLength {
        /// Which table (`"attr_values"`, `"rel_out"`, `"rel_in"`).
        table: &'static str,
        /// Rows present.
        got: usize,
        /// Rows required (= number of entities).
        expected: usize,
    },
    /// A relationship triple endpoint is not a known entity.
    DanglingEntity {
        /// The out-of-range entity id.
        entity: EntityId,
        /// Number of entities in the KB.
        entities: usize,
        /// Where the dangling id was found.
        table: &'static str,
    },
    /// An attribute triple references an attribute that does not exist.
    DanglingAttr {
        /// The out-of-range attribute id.
        attr: AttrId,
        /// Number of attributes in the KB.
        attrs: usize,
    },
    /// A relationship triple references a relationship that does not exist.
    DanglingRel {
        /// The out-of-range relationship id.
        rel: RelId,
        /// Number of relationships in the KB.
        rels: usize,
    },
    /// An adjacency list is not sorted (value-set lookups binary-search).
    Unsorted {
        /// The entity whose list is out of order.
        entity: EntityId,
        /// Which table.
        table: &'static str,
    },
    /// `rel_out` and `rel_in` disagree: a triple appears in one direction
    /// but its mirror is missing from the other.
    MirrorMismatch {
        /// Triple subject.
        subject: EntityId,
        /// Triple relationship.
        rel: RelId,
        /// Triple object.
        object: EntityId,
        /// The table the mirror entry is missing from.
        missing_in: &'static str,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::WrongLength { table, got, expected } => {
                write!(f, "table {table} has {got} rows but the KB has {expected} entities")
            }
            KbError::DanglingEntity { entity, entities, table } => {
                write!(f, "{table} references entity {entity} but only {entities} entities exist")
            }
            KbError::DanglingAttr { attr, attrs } => {
                write!(f, "attribute triple references {attr} but only {attrs} attributes exist")
            }
            KbError::DanglingRel { rel, rels } => {
                write!(
                    f,
                    "relationship triple references {rel} but only {rels} relationships exist"
                )
            }
            KbError::Unsorted { entity, table } => {
                write!(f, "adjacency list of entity {entity} in {table} is not sorted")
            }
            KbError::MirrorMismatch { subject, rel, object, missing_in } => {
                write!(f, "triple ({subject}, {rel}, {object}) has no mirror entry in {missing_in}")
            }
        }
    }
}

impl std::error::Error for KbError {}

impl Kb {
    /// Checks every structural invariant of the store.
    ///
    /// Verified invariants:
    /// * the three per-entity tables have exactly one row per entity,
    /// * attribute triples reference existing attributes and are sorted
    ///   by `(attribute, value)`,
    /// * relationship triples reference existing relationships and
    ///   entities (no dangling endpoints),
    /// * outgoing/incoming adjacency lists are sorted and mutually
    ///   consistent (every `(s, r, o)` in `rel_out` has `(r, s)` in
    ///   `rel_in[o]` and vice versa).
    ///
    /// KBs produced by [`KbBuilder`](crate::KbBuilder) always pass;
    /// ingestion calls this on deserialized snapshots to surface corrupt
    /// dumps early.
    pub fn validate(&self) -> Result<(), KbError> {
        let n = self.entity_labels.len();
        for (table, got) in [
            ("attr_values", self.attr_values.len()),
            ("rel_out", self.rel_out.len()),
            ("rel_in", self.rel_in.len()),
        ] {
            if got != n {
                return Err(KbError::WrongLength { table, got, expected: n });
            }
        }

        let n_attrs = self.attr_names.len();
        for (u, list) in self.attr_values.iter().enumerate() {
            for (a, _) in list {
                if a.index() >= n_attrs {
                    return Err(KbError::DanglingAttr { attr: *a, attrs: n_attrs });
                }
            }
            if !list.windows(2).all(|w| w[0] <= w[1]) {
                return Err(KbError::Unsorted {
                    entity: EntityId::from_index(u),
                    table: "attr_values",
                });
            }
        }

        let n_rels = self.rel_names.len();
        let check_side = |lists: &[Vec<(RelId, EntityId)>], table: &'static str| {
            for (u, list) in lists.iter().enumerate() {
                for &(r, v) in list {
                    if r.index() >= n_rels {
                        return Err(KbError::DanglingRel { rel: r, rels: n_rels });
                    }
                    if v.index() >= n {
                        return Err(KbError::DanglingEntity { entity: v, entities: n, table });
                    }
                }
                if !list.windows(2).all(|w| w[0] < w[1]) {
                    return Err(KbError::Unsorted { entity: EntityId::from_index(u), table });
                }
            }
            Ok(())
        };
        check_side(&self.rel_out, "rel_out")?;
        check_side(&self.rel_in, "rel_in")?;

        // Mirror consistency (endpoints are in range from here on).
        for (s, list) in self.rel_out.iter().enumerate() {
            let s = EntityId::from_index(s);
            for &(r, o) in list {
                if self.rel_in[o.index()].binary_search(&(r, s)).is_err() {
                    return Err(KbError::MirrorMismatch {
                        subject: s,
                        rel: r,
                        object: o,
                        missing_in: "rel_in",
                    });
                }
            }
        }
        for (o, list) in self.rel_in.iter().enumerate() {
            let o = EntityId::from_index(o);
            for &(r, s) in list {
                if self.rel_out[s.index()].binary_search(&(r, o)).is_err() {
                    return Err(KbError::MirrorMismatch {
                        subject: s,
                        rel: r,
                        object: o,
                        missing_in: "rel_out",
                    });
                }
            }
        }
        Ok(())
    }

    /// Assembles a [`Kb`] directly from its frozen representation,
    /// validating every invariant.
    ///
    /// This is the fast path for binary snapshot loading: the tables are
    /// stored already grouped and sorted, so construction is a linear
    /// validation sweep plus the label-index build — no re-sorting, no
    /// re-interning. Use [`KbBuilder`](crate::KbBuilder) everywhere else.
    ///
    /// `attr_values` must be sorted by `(attribute, value)` per entity;
    /// `rel_out` / `rel_in` must be sorted, deduplicated and mutual
    /// mirrors, exactly as [`KbBuilder::finish`](crate::KbBuilder::finish)
    /// lays them out.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: String,
        entity_labels: Vec<String>,
        attr_names: Vec<String>,
        rel_names: Vec<String>,
        attr_values: Vec<Vec<(AttrId, Value)>>,
        rel_out: Vec<Vec<(RelId, EntityId)>>,
        rel_in: Vec<Vec<(RelId, EntityId)>>,
    ) -> Result<Kb, KbError> {
        let n_attr_triples = attr_values.iter().map(Vec::len).sum();
        let n_rel_triples = rel_out.iter().map(Vec::len).sum();
        let mut label_index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for (i, label) in entity_labels.iter().enumerate() {
            label_index.entry(label.clone()).or_default().push(EntityId::from_index(i));
        }
        let kb = Kb {
            name,
            entity_labels,
            attr_names,
            rel_names,
            attr_values,
            rel_out,
            rel_in,
            n_attr_triples,
            n_rel_triples,
            label_index,
        };
        kb.validate()?;
        Ok(kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbBuilder;

    fn sample() -> Kb {
        let mut b = KbBuilder::new("v");
        let a = b.add_entity("a");
        let c = b.add_entity("c");
        let name = b.add_attr("name");
        let knows = b.add_rel("knows");
        b.add_attr_triple(a, name, Value::text("a"));
        b.add_rel_triple(a, knows, c);
        b.finish()
    }

    type Parts = (
        String,
        Vec<String>,
        Vec<String>,
        Vec<String>,
        Vec<Vec<(AttrId, Value)>>,
        Vec<Vec<(RelId, EntityId)>>,
        Vec<Vec<(RelId, EntityId)>>,
    );

    fn parts(kb: &Kb) -> Parts {
        (
            kb.name.clone(),
            kb.entity_labels.clone(),
            kb.attr_names.clone(),
            kb.rel_names.clone(),
            kb.attr_values.clone(),
            kb.rel_out.clone(),
            kb.rel_in.clone(),
        )
    }

    #[test]
    fn builder_output_validates() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn from_parts_round_trips() {
        let kb = sample();
        let (n, el, an, rn, av, ro, ri) = parts(&kb);
        let rebuilt = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap();
        assert_eq!(rebuilt, kb);
    }

    #[test]
    fn dangling_relationship_endpoint_rejected() {
        let kb = sample();
        let (n, el, an, rn, av, mut ro, ri) = parts(&kb);
        ro[0] = vec![(RelId(0), EntityId(99))];
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::DanglingEntity { entity: EntityId(99), .. }), "{err}");
    }

    #[test]
    fn dangling_relationship_id_rejected() {
        let kb = sample();
        let (n, el, an, rn, av, mut ro, ri) = parts(&kb);
        ro[0] = vec![(RelId(7), EntityId(1))];
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::DanglingRel { rel: RelId(7), .. }), "{err}");
    }

    #[test]
    fn dangling_attribute_rejected() {
        let kb = sample();
        let (n, el, an, rn, mut av, ro, ri) = parts(&kb);
        av[1] = vec![(AttrId(3), Value::text("x"))];
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::DanglingAttr { attr: AttrId(3), .. }), "{err}");
    }

    #[test]
    fn missing_mirror_rejected() {
        let kb = sample();
        let (n, el, an, rn, av, ro, mut ri) = parts(&kb);
        ri[1].clear(); // drop the incoming side of (e0, knows, e1)
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::MirrorMismatch { missing_in: "rel_in", .. }), "{err}");
    }

    #[test]
    fn forged_incoming_edge_rejected() {
        let kb = sample();
        let (n, el, an, rn, av, ro, mut ri) = parts(&kb);
        ri[0] = vec![(RelId(0), EntityId(1))]; // claims (e1, knows, e0) exists
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::MirrorMismatch { missing_in: "rel_out", .. }), "{err}");
    }

    #[test]
    fn unsorted_adjacency_rejected() {
        let mut b = KbBuilder::new("v");
        let a = b.add_entity("a");
        let c = b.add_entity("c");
        let d = b.add_entity("d");
        let r = b.add_rel("r");
        b.add_rel_triple(a, r, c);
        b.add_rel_triple(a, r, d);
        let kb = b.finish();
        let (n, el, an, rn, av, mut ro, ri) = parts(&kb);
        ro[0].reverse();
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::Unsorted { table: "rel_out", .. }), "{err}");
    }

    #[test]
    fn wrong_table_length_rejected() {
        let kb = sample();
        let (n, el, an, rn, av, ro, mut ri) = parts(&kb);
        ri.push(Vec::new());
        let err = Kb::from_parts(n, el, an, rn, av, ro, ri).unwrap_err();
        assert!(matches!(err, KbError::WrongLength { table: "rel_in", .. }), "{err}");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = KbError::DanglingEntity { entity: EntityId(9), entities: 3, table: "rel_out" };
        assert!(err.to_string().contains("e9"), "{err}");
        assert!(err.to_string().contains('3'), "{err}");
    }
}
