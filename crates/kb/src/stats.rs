//! Summary statistics mirroring the paper's Table II.

use std::fmt;

/// Per-KB statistics in the shape of the paper's Table II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KbStats {
    /// KB name.
    pub name: String,
    /// `|U|` — number of entities.
    pub entities: usize,
    /// `|A|` — number of attributes.
    pub attributes: usize,
    /// `|R|` — number of relationships.
    pub relationships: usize,
    /// `|T_attr|` — number of attribute triples.
    pub attr_triples: usize,
    /// `|T_rel|` — number of relationship triples.
    pub rel_triples: usize,
    /// Entities occurring in no relationship triple (isolated; §VII-B).
    pub isolated_entities: usize,
}

impl KbStats {
    /// Fraction of entities that are isolated, in `[0, 1]`.
    pub fn isolated_fraction(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.isolated_entities as f64 / self.entities as f64
        }
    }
}

impl fmt::Display for KbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entities, {} attrs, {} rels, {} attr-triples, {} rel-triples, {:.1}% isolated",
            self.name,
            self.entities,
            self.attributes,
            self.relationships,
            self.attr_triples,
            self.rel_triples,
            100.0 * self.isolated_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> KbStats {
        KbStats {
            name: "kb".into(),
            entities: 10,
            attributes: 2,
            relationships: 3,
            attr_triples: 20,
            rel_triples: 15,
            isolated_entities: 4,
        }
    }

    #[test]
    fn isolated_fraction() {
        assert!((stats().isolated_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn isolated_fraction_empty_kb() {
        let s = KbStats { entities: 0, isolated_entities: 0, ..stats() };
        assert_eq!(s.isolated_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_all_counts() {
        let text = stats().to_string();
        assert!(text.contains("10 entities"));
        assert!(text.contains("40.0% isolated"));
    }
}
