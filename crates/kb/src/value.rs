//! Literal values of attribute triples.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A literal value `l ∈ L` attached to an entity by an attribute triple.
///
/// The paper's similarity machinery distinguishes two literal kinds
/// (§IV-C): strings are compared with token-set Jaccard, numbers (integers,
/// floats, dates encoded as days) with the maximum percentage difference.
#[derive(Clone, Debug)]
pub enum Value {
    /// A free-text literal, e.g. `"Mona Lisa"`.
    Text(String),
    /// A numeric literal, e.g. `1452.0` or a date encoded as a day number.
    Number(f64),
}

impl Value {
    /// Builds a text literal from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Builds a numeric literal.
    pub fn number(n: f64) -> Self {
        Value::Number(n)
    }

    /// Returns the text content if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Number(_) => None,
        }
    }

    /// Returns the numeric content if this is a [`Value::Number`].
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Text(_) => None,
            Value::Number(n) => Some(*n),
        }
    }

    /// A human-readable rendering (used by examples and debugging output).
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Text(s) => Cow::Borrowed(s),
            Value::Number(n) => Cow::Owned(format!("{n}")),
        }
    }

    /// Canonical ordering key so values can live in sorted containers.
    fn order_key(&self) -> (u8, Option<&str>, u64) {
        match self {
            Value::Text(s) => (0, Some(s), 0),
            Value::Number(n) => (1, None, n.to_bits()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a == b,
            // Bit-equality keeps Eq/Hash consistent (NaN == NaN here, which is
            // what deduplicating value sets needs).
            (Value::Number(a), Value::Number(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Text(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            Value::Number(n) => {
                state.write_u8(1);
                state.write_u64(n.to_bits());
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn text_accessors() {
        let v = Value::text("hello");
        assert_eq!(v.as_text(), Some("hello"));
        assert_eq!(v.as_number(), None);
        assert_eq!(v.to_string(), "hello");
    }

    #[test]
    fn number_accessors() {
        let v = Value::number(3.5);
        assert_eq!(v.as_number(), Some(3.5));
        assert_eq!(v.as_text(), None);
        assert_eq!(v.to_string(), "3.5");
    }

    #[test]
    fn eq_and_hash_agree() {
        let mut set = HashSet::new();
        set.insert(Value::text("a"));
        set.insert(Value::text("a"));
        set.insert(Value::number(1.0));
        set.insert(Value::number(1.0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn nan_is_self_equal_for_dedup() {
        assert_eq!(Value::number(f64::NAN), Value::number(f64::NAN));
    }

    #[test]
    fn ordering_is_total_and_kind_separated() {
        let mut vals =
            vec![Value::number(2.0), Value::text("b"), Value::text("a"), Value::number(1.0)];
        vals.sort();
        assert_eq!(
            vals,
            vec![Value::text("a"), Value::text("b"), Value::number(1.0), Value::number(2.0)]
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(2i64), Value::number(2.0));
        assert_eq!(Value::from(2.5f64), Value::number(2.5));
    }
}
