//! Knowledge-base substrate for the Remp entity-resolution system.
//!
//! A knowledge base (KB) is a 5-tuple `K = (U, L, A, R, T)` of entities,
//! literals, attributes, relationships and triples (paper §III-A). Attribute
//! triples `(entity, attribute, literal)` attach literal values to entities;
//! relationship triples `(entity, relationship, entity)` link entities.
//!
//! This crate provides:
//! * compact, copyable ids ([`EntityId`], [`AttrId`], [`RelId`]),
//! * dense-id hot-path plumbing: [`PackedPair`] single-`u64` pair keys and
//!   the deterministic multiply-and-fold [`IdHasher`] with its
//!   [`IdHashMap`]/[`IdHashSet`] aliases,
//! * an interning [`Kb`] store with O(1) value-set lookups `N_u^r` / `N_u^a`
//!   used pervasively by attribute matching and match propagation,
//! * a mutable [`KbBuilder`] for constructing KBs programmatically,
//! * structural validation ([`Kb::validate`]) and the trusted-parts
//!   constructor [`Kb::from_parts`] used by binary snapshot loading,
//! * summary [`KbStats`] mirroring Table II of the paper.

mod builder;
mod ids;
mod kb;
mod packed;
mod stats;
mod validate;
mod value;

pub use builder::KbBuilder;
pub use ids::{AttrId, EntityId, RelId};
pub use kb::Kb;
pub use packed::{IdBuildHasher, IdHashMap, IdHashSet, IdHasher, PackedPair};
pub use stats::KbStats;
pub use validate::KbError;
pub use value::Value;

#[cfg(test)]
mod tests;
