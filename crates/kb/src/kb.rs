//! The immutable knowledge-base store.

use std::collections::HashMap;

use crate::{AttrId, EntityId, KbStats, RelId, Value};

/// An immutable knowledge base `K = (U, L, A, R, T)` (paper §III-A).
///
/// Construct with [`crate::KbBuilder`]; once frozen, all lookups — entity
/// labels, attribute value sets `N_u^a`, relationship value sets `N_u^r`,
/// and inverse relationship sets — are O(1) slice accesses.
#[derive(Clone, Debug, PartialEq)]
pub struct Kb {
    pub(crate) name: String,
    pub(crate) entity_labels: Vec<String>,
    pub(crate) attr_names: Vec<String>,
    pub(crate) rel_names: Vec<String>,
    /// Attribute triples grouped per entity: `attr_values[e]` holds
    /// `(attribute, literal)` pairs sorted by attribute.
    pub(crate) attr_values: Vec<Vec<(AttrId, Value)>>,
    /// Outgoing relationship triples grouped per entity, sorted by relation.
    pub(crate) rel_out: Vec<Vec<(RelId, EntityId)>>,
    /// Incoming relationship triples grouped per entity, sorted by relation.
    pub(crate) rel_in: Vec<Vec<(RelId, EntityId)>>,
    pub(crate) n_attr_triples: usize,
    pub(crate) n_rel_triples: usize,
    pub(crate) label_index: HashMap<String, Vec<EntityId>>,
}

impl Kb {
    /// The KB's human-readable name (e.g. `"YAGO"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entities `|U|`.
    pub fn num_entities(&self) -> usize {
        self.entity_labels.len()
    }

    /// Number of attributes `|A|`.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of relationships `|R|`.
    pub fn num_rels(&self) -> usize {
        self.rel_names.len()
    }

    /// Iterates over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entity_labels.len() as u32).map(EntityId)
    }

    /// Iterates over all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attr_names.len() as u32).map(AttrId)
    }

    /// Iterates over all relationship ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rel_names.len() as u32).map(RelId)
    }

    /// The label of entity `u` (the value of `rdfs:label` in the paper).
    pub fn label(&self, u: EntityId) -> &str {
        &self.entity_labels[u.index()]
    }

    /// The name of attribute `a`.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a.index()]
    }

    /// The name of relationship `r`.
    pub fn rel_name(&self, r: RelId) -> &str {
        &self.rel_names[r.index()]
    }

    /// Entities whose label is exactly `label` (used for initial matches).
    pub fn entities_with_label(&self, label: &str) -> &[EntityId] {
        self.label_index.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(attribute, literal)` pairs of entity `u`, sorted by attribute.
    pub fn attrs_of(&self, u: EntityId) -> &[(AttrId, Value)] {
        &self.attr_values[u.index()]
    }

    /// The attribute value set `N_u^a = { l : (u, a, l) ∈ T }`.
    pub fn attr_values(&self, u: EntityId, a: AttrId) -> impl Iterator<Item = &Value> + '_ {
        range_of(&self.attr_values[u.index()], a).iter().map(|(_, v)| v)
    }

    /// Whether `u` has at least one value for attribute `a`.
    pub fn has_attr(&self, u: EntityId, a: AttrId) -> bool {
        !range_of(&self.attr_values[u.index()], a).is_empty()
    }

    /// All outgoing `(relationship, object)` pairs of `u`, sorted by relation.
    pub fn rels_of(&self, u: EntityId) -> &[(RelId, EntityId)] {
        &self.rel_out[u.index()]
    }

    /// All incoming `(relationship, subject)` pairs of `u`, sorted by relation.
    pub fn rels_into(&self, u: EntityId) -> &[(RelId, EntityId)] {
        &self.rel_in[u.index()]
    }

    /// The relationship value set `N_u^r = { u' : (u, r, u') ∈ T }`.
    pub fn rel_values(&self, u: EntityId, r: RelId) -> &[(RelId, EntityId)] {
        range_of(&self.rel_out[u.index()], r)
    }

    /// The inverse value set `{ u' : (u', r, u) ∈ T }`.
    pub fn rel_subjects(&self, u: EntityId, r: RelId) -> &[(RelId, EntityId)] {
        range_of(&self.rel_in[u.index()], r)
    }

    /// Whether `u` participates in any relationship triple (in or out).
    ///
    /// Entities that do not are *isolated*: match propagation cannot reach
    /// them and Remp handles their pairs with a classifier (paper §VII-B).
    pub fn is_isolated(&self, u: EntityId) -> bool {
        self.rel_out[u.index()].is_empty() && self.rel_in[u.index()].is_empty()
    }

    /// Total number of attribute triples `|T_attr|`.
    pub fn num_attr_triples(&self) -> usize {
        self.n_attr_triples
    }

    /// Total number of relationship triples `|T_rel|`.
    pub fn num_rel_triples(&self) -> usize {
        self.n_rel_triples
    }

    /// Extracts the sub-KB induced by `keep` (sorted, deduplicated
    /// entity ids): kept entities are re-indexed densely in `keep`
    /// order, attribute/relationship *names* keep their ids, and
    /// relationship triples whose other endpoint is not kept are
    /// dropped. The shard builder in `remp-scale` uses this to make
    /// component shards self-contained — callers wanting intact
    /// adjacency for a set of entities must include their relationship
    /// neighbours in `keep`.
    ///
    /// # Panics
    ///
    /// If `keep` is not strictly ascending or references an unknown
    /// entity. Strict ascent keeps the id remap monotone, which is what
    /// preserves the per-entity sort invariants without re-sorting.
    pub fn restrict(&self, keep: &[EntityId]) -> Kb {
        let mut remap: Vec<u32> = vec![u32::MAX; self.num_entities()];
        let mut prev: Option<EntityId> = None;
        for (new, &old) in keep.iter().enumerate() {
            assert!(prev.is_none_or(|p| p < old), "Kb::restrict: keep must be strictly ascending");
            assert!(old.index() < self.num_entities(), "Kb::restrict: unknown entity {old:?}");
            remap[old.index()] = new as u32;
            prev = Some(old);
        }

        let mut entity_labels = Vec::with_capacity(keep.len());
        let mut attr_values = Vec::with_capacity(keep.len());
        let mut rel_out = Vec::with_capacity(keep.len());
        let mut rel_in = Vec::with_capacity(keep.len());
        let mut n_attr_triples = 0;
        let mut n_rel_triples = 0;
        let mut label_index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for (new, &old) in keep.iter().enumerate() {
            let label = self.entity_labels[old.index()].clone();
            label_index.entry(label.clone()).or_default().push(EntityId(new as u32));
            entity_labels.push(label);
            let attrs = self.attr_values[old.index()].clone();
            n_attr_triples += attrs.len();
            attr_values.push(attrs);
            // The remap is monotone over kept ids and rows are sorted by
            // `(rel, entity)`, so filtering preserves the sort invariant.
            let keep_edges = |edges: &[(RelId, EntityId)]| -> Vec<(RelId, EntityId)> {
                edges
                    .iter()
                    .filter(|(_, v)| remap[v.index()] != u32::MAX)
                    .map(|&(r, v)| (r, EntityId(remap[v.index()])))
                    .collect()
            };
            let out = keep_edges(&self.rel_out[old.index()]);
            n_rel_triples += out.len();
            rel_out.push(out);
            rel_in.push(keep_edges(&self.rel_in[old.index()]));
        }

        Kb {
            name: self.name.clone(),
            entity_labels,
            attr_names: self.attr_names.clone(),
            rel_names: self.rel_names.clone(),
            attr_values,
            rel_out,
            rel_in,
            n_attr_triples,
            n_rel_triples,
            label_index,
        }
    }

    /// Summary statistics in the shape of the paper's Table II.
    pub fn stats(&self) -> KbStats {
        KbStats {
            name: self.name.clone(),
            entities: self.num_entities(),
            attributes: self.num_attrs(),
            relationships: self.num_rels(),
            attr_triples: self.n_attr_triples,
            rel_triples: self.n_rel_triples,
            isolated_entities: self.entities().filter(|&u| self.is_isolated(u)).count(),
        }
    }
}

/// Binary-searches the sorted-by-key slice for the contiguous range of `key`.
fn range_of<K: Copy + Ord, V>(items: &[(K, V)], key: K) -> &[(K, V)] {
    let start = items.partition_point(|(k, _)| *k < key);
    let end = items[start..].partition_point(|(k, _)| *k == key) + start;
    &items[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbBuilder;

    fn sample() -> Kb {
        let mut b = KbBuilder::new("test");
        let leo = b.add_entity("Leonardo da Vinci");
        let mona = b.add_entity("Mona Lisa");
        let lonely = b.add_entity("Isolated One");
        let birth = b.add_attr("birth date");
        let works = b.add_rel("works");
        b.add_attr_triple(leo, birth, Value::text("1452-4-15"));
        b.add_attr_triple(leo, birth, Value::number(1452.0));
        b.add_rel_triple(leo, works, mona);
        let _ = lonely;
        b.finish()
    }

    #[test]
    fn counts() {
        let kb = sample();
        assert_eq!(kb.num_entities(), 3);
        assert_eq!(kb.num_attrs(), 1);
        assert_eq!(kb.num_rels(), 1);
        assert_eq!(kb.num_attr_triples(), 2);
        assert_eq!(kb.num_rel_triples(), 1);
    }

    #[test]
    fn attr_value_sets() {
        let kb = sample();
        let leo = EntityId(0);
        let birth = AttrId(0);
        let vals: Vec<_> = kb.attr_values(leo, birth).collect();
        assert_eq!(vals.len(), 2);
        assert!(kb.has_attr(leo, birth));
        assert!(!kb.has_attr(EntityId(1), birth));
    }

    #[test]
    fn rel_value_sets_and_inverse() {
        let kb = sample();
        let (leo, mona, works) = (EntityId(0), EntityId(1), RelId(0));
        assert_eq!(kb.rel_values(leo, works), &[(works, mona)]);
        assert_eq!(kb.rel_subjects(mona, works), &[(works, leo)]);
        assert!(kb.rel_values(mona, works).is_empty());
    }

    #[test]
    fn isolated_detection() {
        let kb = sample();
        assert!(!kb.is_isolated(EntityId(0)));
        assert!(!kb.is_isolated(EntityId(1)));
        assert!(kb.is_isolated(EntityId(2)));
    }

    #[test]
    fn label_index() {
        let kb = sample();
        assert_eq!(kb.entities_with_label("Mona Lisa"), &[EntityId(1)]);
        assert!(kb.entities_with_label("nope").is_empty());
    }

    #[test]
    fn stats_shape() {
        let s = sample().stats();
        assert_eq!(s.entities, 3);
        assert_eq!(s.isolated_entities, 1);
    }

    #[test]
    fn range_of_finds_runs() {
        let items = vec![(1u32, 'a'), (2, 'b'), (2, 'c'), (4, 'd')];
        assert_eq!(range_of(&items, 2).len(), 2);
        assert_eq!(range_of(&items, 3).len(), 0);
        assert_eq!(range_of(&items, 1).len(), 1);
        assert_eq!(range_of(&items, 4).len(), 1);
    }
}
