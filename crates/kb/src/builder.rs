//! Mutable builder that assembles and freezes a [`Kb`].

use std::collections::HashMap;

use crate::{AttrId, EntityId, Kb, RelId, Value};

/// Incrementally builds a [`Kb`].
///
/// Attribute and relationship names are deduplicated on insertion, so
/// repeated [`KbBuilder::add_attr`] calls with the same name return the same
/// id. Entities are *not* deduplicated by label (two distinct entities may
/// share a label, which is exactly the ambiguity ER resolves).
#[derive(Debug, Default)]
pub struct KbBuilder {
    name: String,
    entity_labels: Vec<String>,
    attr_names: Vec<String>,
    attr_lookup: HashMap<String, AttrId>,
    rel_names: Vec<String>,
    rel_lookup: HashMap<String, RelId>,
    attr_triples: Vec<(EntityId, AttrId, Value)>,
    rel_triples: Vec<(EntityId, RelId, EntityId)>,
}

impl KbBuilder {
    /// Starts a new builder for a KB called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Adds a new entity with the given label and returns its id.
    pub fn add_entity(&mut self, label: impl Into<String>) -> EntityId {
        let id = EntityId::from_index(self.entity_labels.len());
        self.entity_labels.push(label.into());
        id
    }

    /// Number of entities added so far.
    pub fn num_entities(&self) -> usize {
        self.entity_labels.len()
    }

    /// Replaces the label of an already-added entity.
    ///
    /// Streaming loaders create an entity the first time its identifier
    /// is *referenced* — which may be before the triple carrying its
    /// label arrives — so the placeholder label set at creation can be
    /// overwritten later in the scan.
    ///
    /// # Panics
    /// Panics if `u` was not created by this builder.
    pub fn set_label(&mut self, u: EntityId, label: impl Into<String>) {
        assert!(u.index() < self.entity_labels.len(), "unknown entity {u}");
        self.entity_labels[u.index()] = label.into();
    }

    /// Interns an attribute name, returning its (possibly existing) id.
    pub fn add_attr(&mut self, name: impl AsRef<str>) -> AttrId {
        let name = name.as_ref();
        if let Some(&id) = self.attr_lookup.get(name) {
            return id;
        }
        let id = AttrId::from_index(self.attr_names.len());
        self.attr_names.push(name.to_owned());
        self.attr_lookup.insert(name.to_owned(), id);
        id
    }

    /// Interns a relationship name, returning its (possibly existing) id.
    pub fn add_rel(&mut self, name: impl AsRef<str>) -> RelId {
        let name = name.as_ref();
        if let Some(&id) = self.rel_lookup.get(name) {
            return id;
        }
        let id = RelId::from_index(self.rel_names.len());
        self.rel_names.push(name.to_owned());
        self.rel_lookup.insert(name.to_owned(), id);
        id
    }

    /// Records the attribute triple `(u, a, value)`.
    ///
    /// # Panics
    /// Panics if `u` or `a` was not created by this builder.
    pub fn add_attr_triple(&mut self, u: EntityId, a: AttrId, value: Value) {
        assert!(u.index() < self.entity_labels.len(), "unknown entity {u}");
        assert!(a.index() < self.attr_names.len(), "unknown attribute {a}");
        self.attr_triples.push((u, a, value));
    }

    /// Records the relationship triple `(subject, r, object)`.
    ///
    /// # Panics
    /// Panics if any id was not created by this builder.
    pub fn add_rel_triple(&mut self, subject: EntityId, r: RelId, object: EntityId) {
        assert!(subject.index() < self.entity_labels.len(), "unknown entity {subject}");
        assert!(object.index() < self.entity_labels.len(), "unknown entity {object}");
        assert!(r.index() < self.rel_names.len(), "unknown relationship {r}");
        self.rel_triples.push((subject, r, object));
    }

    /// Freezes the builder into an immutable, indexed [`Kb`].
    pub fn finish(self) -> Kb {
        let n = self.entity_labels.len();
        let mut attr_values: Vec<Vec<(AttrId, Value)>> = vec![Vec::new(); n];
        for (u, a, v) in self.attr_triples {
            attr_values[u.index()].push((a, v));
        }
        for list in &mut attr_values {
            list.sort_by(|(a1, v1), (a2, v2)| a1.cmp(a2).then_with(|| v1.cmp(v2)));
        }

        let mut rel_out: Vec<Vec<(RelId, EntityId)>> = vec![Vec::new(); n];
        let mut rel_in: Vec<Vec<(RelId, EntityId)>> = vec![Vec::new(); n];
        for (s, r, o) in &self.rel_triples {
            rel_out[s.index()].push((*r, *o));
            rel_in[o.index()].push((*r, *s));
        }
        for list in rel_out.iter_mut().chain(rel_in.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }

        let n_attr_triples = attr_values.iter().map(Vec::len).sum();
        let n_rel_triples = rel_out.iter().map(Vec::len).sum();

        let mut label_index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for (i, label) in self.entity_labels.iter().enumerate() {
            label_index.entry(label.clone()).or_default().push(EntityId::from_index(i));
        }

        Kb {
            name: self.name,
            entity_labels: self.entity_labels,
            attr_names: self.attr_names,
            rel_names: self.rel_names,
            attr_values,
            rel_out,
            rel_in,
            n_attr_triples,
            n_rel_triples,
            label_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_and_rels_are_interned() {
        let mut b = KbBuilder::new("kb");
        let a1 = b.add_attr("name");
        let a2 = b.add_attr("name");
        let a3 = b.add_attr("year");
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        let r1 = b.add_rel("actedIn");
        let r2 = b.add_rel("actedIn");
        assert_eq!(r1, r2);
    }

    #[test]
    fn entities_not_deduplicated() {
        let mut b = KbBuilder::new("kb");
        let e1 = b.add_entity("John");
        let e2 = b.add_entity("John");
        assert_ne!(e1, e2);
        let kb = b.finish();
        assert_eq!(kb.entities_with_label("John").len(), 2);
    }

    #[test]
    fn set_label_overwrites() {
        let mut b = KbBuilder::new("kb");
        let e = b.add_entity("placeholder");
        b.set_label(e, "Real Name");
        let kb = b.finish();
        assert_eq!(kb.label(e), "Real Name");
        assert_eq!(kb.entities_with_label("Real Name"), &[e]);
        assert!(kb.entities_with_label("placeholder").is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown entity")]
    fn set_label_unknown_entity_panics() {
        let mut b = KbBuilder::new("kb");
        b.set_label(EntityId(0), "x");
    }

    #[test]
    fn duplicate_rel_triples_are_deduped() {
        let mut b = KbBuilder::new("kb");
        let e1 = b.add_entity("a");
        let e2 = b.add_entity("b");
        let r = b.add_rel("r");
        b.add_rel_triple(e1, r, e2);
        b.add_rel_triple(e1, r, e2);
        let kb = b.finish();
        assert_eq!(kb.num_rel_triples(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown entity")]
    fn unknown_entity_panics() {
        let mut b = KbBuilder::new("kb");
        let a = b.add_attr("x");
        b.add_attr_triple(EntityId(9), a, Value::text("v"));
    }

    #[test]
    fn finish_sorts_value_sets() {
        let mut b = KbBuilder::new("kb");
        let e = b.add_entity("e");
        let a_z = b.add_attr("z");
        let a_a = b.add_attr("a");
        b.add_attr_triple(e, a_z, Value::text("1"));
        b.add_attr_triple(e, a_a, Value::text("2"));
        let kb = b.finish();
        let pairs = kb.attrs_of(e);
        assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
