//! Crate-level property tests for the KB substrate.

use proptest::prelude::*;

use crate::{Kb, KbBuilder, Value};

/// Builds a random small KB from generated triples.
fn arb_kb() -> impl Strategy<Value = Kb> {
    let n_entities = 1usize..12;
    n_entities.prop_flat_map(|n| {
        let rels = proptest::collection::vec((0..n, 0usize..3, 0..n), 0..40);
        let attrs = proptest::collection::vec((0..n, 0usize..3, "[a-c]{1,3}"), 0..40);
        (rels, attrs).prop_map(move |(rels, attrs)| {
            let mut b = KbBuilder::new("prop");
            let es: Vec<_> = (0..n).map(|i| b.add_entity(format!("entity {i}"))).collect();
            let rs: Vec<_> = (0..3).map(|i| b.add_rel(format!("r{i}"))).collect();
            let as_: Vec<_> = (0..3).map(|i| b.add_attr(format!("a{i}"))).collect();
            for (s, r, o) in rels {
                b.add_rel_triple(es[s], rs[r], es[o]);
            }
            for (e, a, v) in attrs {
                b.add_attr_triple(es[e], as_[a], Value::text(v));
            }
            b.finish()
        })
    })
}

proptest! {
    /// Every outgoing edge has a mirror incoming edge.
    #[test]
    fn rel_in_mirrors_rel_out(kb in arb_kb()) {
        for u in kb.entities() {
            for &(r, o) in kb.rels_of(u) {
                prop_assert!(kb.rels_into(o).contains(&(r, u)));
            }
            for &(r, s) in kb.rels_into(u) {
                prop_assert!(kb.rels_of(s).contains(&(r, u)));
            }
        }
    }

    /// Triple counts agree with per-entity groupings.
    #[test]
    fn triple_counts_consistent(kb in arb_kb()) {
        let out: usize = kb.entities().map(|u| kb.rels_of(u).len()).sum();
        let inn: usize = kb.entities().map(|u| kb.rels_into(u).len()).sum();
        prop_assert_eq!(out, kb.num_rel_triples());
        prop_assert_eq!(inn, kb.num_rel_triples());
        let attrs: usize = kb.entities().map(|u| kb.attrs_of(u).len()).sum();
        prop_assert_eq!(attrs, kb.num_attr_triples());
    }

    /// `rel_values` returns exactly the (r, ·) prefix-grouped slice.
    #[test]
    fn rel_values_filters_by_relation(kb in arb_kb()) {
        for u in kb.entities() {
            for r in kb.rels() {
                let via_index: Vec<_> = kb.rel_values(u, r).iter().map(|&(_, o)| o).collect();
                let via_scan: Vec<_> =
                    kb.rels_of(u).iter().filter(|&&(r2, _)| r2 == r).map(|&(_, o)| o).collect();
                prop_assert_eq!(via_index, via_scan);
            }
        }
    }

    /// Label index is complete: every entity is findable by its label.
    #[test]
    fn label_index_complete(kb in arb_kb()) {
        for u in kb.entities() {
            prop_assert!(kb.entities_with_label(kb.label(u)).contains(&u));
        }
    }

    /// An isolated entity has no in- or out-edges, and vice versa.
    #[test]
    fn isolated_iff_no_edges(kb in arb_kb()) {
        for u in kb.entities() {
            let no_edges = kb.rels_of(u).is_empty() && kb.rels_into(u).is_empty();
            prop_assert_eq!(kb.is_isolated(u), no_edges);
        }
    }
}

mod restrict {
    use super::*;
    use crate::EntityId;

    /// Restricting to all entities is the identity.
    #[test]
    fn restrict_to_everything_is_identity() {
        let mut b = KbBuilder::new("full");
        let a = b.add_entity("a");
        let c = b.add_entity("b");
        let r = b.add_rel("knows");
        let at = b.add_attr("age");
        b.add_attr_triple(a, at, Value::number(3.0));
        b.add_rel_triple(a, r, c);
        let kb = b.finish();
        let all: Vec<EntityId> = kb.entities().collect();
        assert_eq!(kb.restrict(&all), kb);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn restrict_rejects_unsorted_keep() {
        let mut b = KbBuilder::new("x");
        let a = b.add_entity("a");
        let c = b.add_entity("b");
        let kb = b.finish();
        let _ = kb.restrict(&[c, a]);
    }

    proptest! {
        /// A restriction to every other entity keeps exactly the triples
        /// among kept entities, passes validation, and preserves labels,
        /// attributes and edge order.
        #[test]
        fn restrict_keeps_induced_subgraph(kb in arb_kb()) {
            let keep: Vec<EntityId> = kb.entities().step_by(2).collect();
            let sub = kb.restrict(&keep);
            prop_assert!(sub.validate().is_ok());
            prop_assert_eq!(sub.num_entities(), keep.len());
            prop_assert_eq!(sub.num_attrs(), kb.num_attrs());
            prop_assert_eq!(sub.num_rels(), kb.num_rels());
            for (new, &old) in keep.iter().enumerate() {
                let new_id = EntityId::from_index(new);
                prop_assert_eq!(sub.label(new_id), kb.label(old));
                prop_assert_eq!(sub.attrs_of(new_id), kb.attrs_of(old));
                // Expected edges: old edges with kept targets, remapped.
                let expect: Vec<_> = kb
                    .rels_of(old)
                    .iter()
                    .filter(|(_, v)| keep.binary_search(v).is_ok())
                    .map(|&(r, v)| (r, EntityId::from_index(keep.binary_search(&v).unwrap())))
                    .collect();
                prop_assert_eq!(sub.rels_of(new_id).to_vec(), expect);
            }
        }
    }
}
