//! Compact identifier newtypes.
//!
//! All ids are dense `u32` indexes local to one [`crate::Kb`]. Using 4-byte
//! ids (rather than `usize` or strings) halves the size of the entity-pair
//! structures that dominate memory in ER-graph construction.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "id overflow");
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifier of an entity `u ∈ U` within one KB.
    EntityId,
    "e"
);
define_id!(
    /// Identifier of an attribute `a ∈ A` within one KB.
    AttrId,
    "a"
);
define_id!(
    /// Identifier of a relationship `r ∈ R` within one KB.
    RelId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(e, EntityId(42));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(EntityId(7).to_string(), "e7");
        assert_eq!(AttrId(3).to_string(), "a3");
        assert_eq!(RelId(1).to_string(), "r1");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelId(0) < RelId(10));
    }

    #[test]
    fn from_u32() {
        let a: AttrId = 5u32.into();
        assert_eq!(a, AttrId(5));
    }
}
