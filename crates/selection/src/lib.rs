//! Multiple questions selection (paper §VI).
//!
//! Asking a question `q` and receiving a "match" label lets propagation
//! infer every pair in `inferred(q)` (Eq. 12). The benefit of a question
//! set `Q` is the *expected* number of pairs inferred once workers label it
//! (Eqs. 15–16):
//!
//! `benefit(Q) = Σ_{p∈C} (1 − Π_{q∈Q : p∈inferred(q)} (1 − Pr[m_q]))`
//!
//! Selecting the best `|Q| ≤ µ` is NP-hard (Theorem 1, set-cover
//! reduction) but `benefit` is monotone submodular (Theorem 2), so the
//! [`select_questions`] lazy greedy achieves the (1 − 1/e) guarantee
//! (Algorithm 3 with the Minoux/lazier-than-lazy-greedy priority queue).
//!
//! [`max_inf_questions`] and [`max_pr_questions`] are the two heuristic
//! baselines of §VIII-B (Fig. 5): maximal inference power and maximal
//! match probability.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use remp_ergraph::{ComponentIndex, PairId};
use remp_par::Parallelism;
use remp_propagation::InferredSets;

/// Which question-selection policy a session's [`select_batch`] uses.
///
/// [`BatchStrategy::Benefit`] is the paper's Algorithm 3 and the default;
/// the two heuristics are the §VIII-B baselines, exposed so callers (the
/// session API, the Fig. 5 harness) can swap policies per run without
/// re-implementing the selection loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BatchStrategy {
    /// Lazy-greedy expected-benefit maximisation (Algorithm 3).
    #[default]
    Benefit,
    /// Maximal inference power, ignoring match probability.
    MaxInf,
    /// Maximal match probability, ignoring inference power.
    MaxPr,
}

impl BatchStrategy {
    /// Stable identifier, used by checkpoints and display.
    pub fn name(self) -> &'static str {
        match self {
            BatchStrategy::Benefit => "benefit",
            BatchStrategy::MaxInf => "max_inf",
            BatchStrategy::MaxPr => "max_pr",
        }
    }

    /// Inverse of [`BatchStrategy::name`].
    pub fn from_name(name: &str) -> Option<BatchStrategy> {
        match name {
            "benefit" => Some(BatchStrategy::Benefit),
            "max_inf" => Some(BatchStrategy::MaxInf),
            "max_pr" => Some(BatchStrategy::MaxPr),
            _ => None,
        }
    }
}

/// Selects at most `mu` questions under the given policy — the single
/// entry point the session state machine calls each loop.
///
/// The greedy selection itself is inherently sequential, but the initial
/// scoring of every candidate question is data-parallel under `par`; the
/// selected set is identical in every [`Parallelism`] mode.
pub fn select_batch(
    strategy: BatchStrategy,
    candidates: &[PairId],
    inferred: &InferredSets,
    priors: &[f64],
    eligible: &[bool],
    mu: usize,
    par: &Parallelism,
) -> Vec<PairId> {
    match strategy {
        BatchStrategy::Benefit => select_questions(candidates, inferred, priors, eligible, mu, par),
        BatchStrategy::MaxInf => max_inf_questions(candidates, inferred, eligible, mu, par),
        BatchStrategy::MaxPr => max_pr_questions(candidates, priors, mu),
    }
}

/// Expected number of inferred matches for the question set `Q`
/// (Eqs. 15–16). `priors[p]` is `Pr[m_p]` indexed by pair id; `eligible`
/// marks the unresolved pairs `C` that count toward the benefit.
pub fn benefit(
    questions: &[PairId],
    inferred: &InferredSets,
    priors: &[f64],
    eligible: &[bool],
) -> f64 {
    let n = eligible.len();
    let mut not_covered = vec![1.0f64; n];
    for &q in questions {
        let pq = priors[q.index()];
        for &(p, _) in inferred.inferred(q) {
            if eligible[p.index()] {
                not_covered[p.index()] *= 1.0 - pq;
            }
        }
    }
    eligible.iter().enumerate().filter(|&(_, &e)| e).map(|(p, _)| 1.0 - not_covered[p]).sum()
}

/// Max-heap entry: cached marginal gain of a candidate question.
struct Entry {
    gain: f64,
    question: PairId,
    /// Selection round the gain was computed in (for lazy invalidation).
    round: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.question == other.question
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.question.cmp(&self.question))
    }
}

/// Algorithm 3: lazy greedy selection of at most `mu` questions from
/// `candidates`, maximising [`benefit`].
///
/// Stops early when no remaining question has positive gain (the paper's
/// termination condition: nothing more can be inferred). Runs in
/// `O(µ · |C| · avg|inferred|)` with the lazy evaluation usually far
/// cheaper.
pub fn select_questions(
    candidates: &[PairId],
    inferred: &InferredSets,
    priors: &[f64],
    eligible: &[bool],
    mu: usize,
    par: &Parallelism,
) -> Vec<PairId> {
    let n = eligible.len();
    // not_covered[p] = Π_{selected q ∋ p} (1 − Pr[m_q]); gain of adding q is
    // Pr[m_q] · Σ_{p ∈ inferred(q), eligible} not_covered[p].
    let mut not_covered = vec![1.0f64; n];
    let gain_of = |q: PairId, not_covered: &[f64]| -> f64 {
        let pq = priors[q.index()];
        pq * inferred
            .inferred(q)
            .iter()
            .filter(|&&(p, _)| eligible[p.index()])
            .map(|&(p, _)| not_covered[p.index()])
            .sum::<f64>()
    };

    // The initial scoring pass touches every candidate's full inferred
    // set — by far the dominant cost of a selection round — and is
    // data-parallel; heap order is total, so the selection that follows
    // is deterministic regardless of mode.
    let initial_gains: Vec<f64> = par.par_map(candidates, |&q| gain_of(q, &not_covered));
    let mut heap: BinaryHeap<Entry> = candidates
        .iter()
        .zip(initial_gains)
        .map(|(&q, gain)| Entry { gain, question: q, round: 0 })
        .collect();

    let mut selected = Vec::with_capacity(mu.min(candidates.len()));
    let mut round = 0usize;
    while selected.len() < mu {
        let Some(top) = heap.pop() else { break };
        if top.gain <= 1e-12 {
            break; // nothing informative left (Alg. 3 line 9)
        }
        if top.round < round {
            // Stale gain: recompute and re-insert. Submodularity guarantees
            // the fresh gain is ≤ the stale one, so the heap order stays
            // admissible.
            let fresh = gain_of(top.question, &not_covered);
            heap.push(Entry { gain: fresh, question: top.question, round });
            continue;
        }
        // Fresh top entry: select it.
        let pq = priors[top.question.index()];
        for &(p, _) in inferred.inferred(top.question) {
            if eligible[p.index()] {
                not_covered[p.index()] *= 1.0 - pq;
            }
        }
        selected.push(top.question);
        round += 1;
    }
    selected
}

/// Reference (non-lazy) greedy — same output as [`select_questions`],
/// used for property tests and the selection ablation bench.
pub fn select_questions_naive(
    candidates: &[PairId],
    inferred: &InferredSets,
    priors: &[f64],
    eligible: &[bool],
    mu: usize,
) -> Vec<PairId> {
    let n = eligible.len();
    let mut not_covered = vec![1.0f64; n];
    let mut remaining: Vec<PairId> = candidates.to_vec();
    let mut selected = Vec::new();
    while selected.len() < mu && !remaining.is_empty() {
        let (best_idx, best_gain) = remaining
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let pq = priors[q.index()];
                let g = pq
                    * inferred
                        .inferred(q)
                        .iter()
                        .filter(|&&(p, _)| eligible[p.index()])
                        .map(|&(p, _)| not_covered[p.index()])
                        .sum::<f64>();
                (i, g)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(Ordering::Equal)
                    // Tie-break identical gains toward the smaller pair id,
                    // matching the heap's deterministic order.
                    .then_with(|| remaining[b.0].cmp(&remaining[a.0]))
            })
            .expect("non-empty remaining");
        if best_gain <= 1e-12 {
            break;
        }
        let q = remaining.swap_remove(best_idx);
        let pq = priors[q.index()];
        for &(p, _) in inferred.inferred(q) {
            if eligible[p.index()] {
                not_covered[p.index()] *= 1.0 - pq;
            }
        }
        selected.push(q);
    }
    selected
}

/// MaxInf baseline (§VIII-B): the `mu` questions with the largest inferred
/// sets, ignoring match probability.
pub fn max_inf_questions(
    candidates: &[PairId],
    inferred: &InferredSets,
    eligible: &[bool],
    mu: usize,
    par: &Parallelism,
) -> Vec<PairId> {
    let mut scored: Vec<(usize, PairId)> = par.par_map(candidates, |&q| {
        let size = inferred.inferred(q).iter().filter(|&&(p, _)| eligible[p.index()]).count();
        (size, q)
    });
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.into_iter().take(mu).map(|(_, q)| q).collect()
}

/// MaxPr baseline (§VIII-B): the `mu` questions with the highest prior
/// match probability, ignoring inference power.
pub fn max_pr_questions(candidates: &[PairId], priors: &[f64], mu: usize) -> Vec<PairId> {
    let mut scored: Vec<(f64, PairId)> =
        candidates.iter().map(|&q| (priors[q.index()], q)).collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
    });
    scored.into_iter().take(mu).map(|(_, q)| q).collect()
}

// ---- component-sharded selection --------------------------------------
//
// Inferred sets never leave a connected component of the ER graph, so
// the benefit function decomposes: the marginal gain of a question only
// depends on the questions already selected *in its own component*. Each
// component can therefore be scored independently — its greedy sequence
// (with pick-time scores) is exactly the restriction of the global greedy
// to that component — and the global batch is a k-way merge of the
// sequences by (score, id). The incremental pipeline leans on this to
// rescore only the components an answered batch actually touched, instead
// of materialising global `eligible` / `priors` / `question_cands`
// vectors every loop.

/// One entry of a component's selection sequence: a question with its
/// pick-time score (the marginal gain for [`BatchStrategy::Benefit`], the
/// static score for the two heuristics). Scores are non-increasing along
/// a sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredQuestion {
    /// The candidate question.
    pub question: PairId,
    /// Its score at pick time.
    pub score: f64,
}

/// Scores one component's eligible members under `strategy`, producing at
/// most `cap` entries — the component's share of the global selection.
///
/// `scratch` must hold one `1.0` per retained pair (global indexing); it
/// is restored before returning, so one buffer serves many components.
/// Merging the per-component sequences with [`merge_sequences`] yields
/// output bit-identical to [`select_batch`] over the union of members.
pub fn component_sequence(
    strategy: BatchStrategy,
    members: &[PairId],
    inferred: &InferredSets,
    priors: &[f64],
    eligible: &[bool],
    cap: usize,
    scratch: &mut [f64],
) -> Vec<ScoredQuestion> {
    let cands: Vec<PairId> = members.iter().copied().filter(|&q| eligible[q.index()]).collect();
    match strategy {
        BatchStrategy::Benefit => {
            let gain_of = |q: PairId, not_covered: &[f64]| -> f64 {
                let pq = priors[q.index()];
                pq * inferred
                    .inferred(q)
                    .iter()
                    .filter(|&&(p, _)| eligible[p.index()])
                    .map(|&(p, _)| not_covered[p.index()])
                    .sum::<f64>()
            };
            let mut heap: BinaryHeap<Entry> = cands
                .iter()
                .map(|&q| Entry { gain: gain_of(q, scratch), question: q, round: 0 })
                .collect();
            let mut touched: Vec<usize> = Vec::new();
            let mut sequence = Vec::with_capacity(cap.min(cands.len()));
            let mut round = 0usize;
            while sequence.len() < cap {
                let Some(top) = heap.pop() else { break };
                if top.gain <= 1e-12 {
                    break; // mirrors `select_questions` (Alg. 3 line 9)
                }
                if top.round < round {
                    let fresh = gain_of(top.question, scratch);
                    heap.push(Entry { gain: fresh, question: top.question, round });
                    continue;
                }
                let pq = priors[top.question.index()];
                for &(p, _) in inferred.inferred(top.question) {
                    if eligible[p.index()] {
                        scratch[p.index()] *= 1.0 - pq;
                        touched.push(p.index());
                    }
                }
                sequence.push(ScoredQuestion { question: top.question, score: top.gain });
                round += 1;
            }
            for t in touched {
                scratch[t] = 1.0;
            }
            sequence
        }
        BatchStrategy::MaxInf => {
            let mut scored: Vec<(usize, PairId)> = cands
                .iter()
                .map(|&q| {
                    let size =
                        inferred.inferred(q).iter().filter(|&&(p, _)| eligible[p.index()]).count();
                    (size, q)
                })
                .collect();
            scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            scored
                .into_iter()
                .take(cap)
                .map(|(size, q)| ScoredQuestion { question: q, score: size as f64 })
                .collect()
        }
        BatchStrategy::MaxPr => {
            let mut scored: Vec<(f64, PairId)> =
                cands.iter().map(|&q| (priors[q.index()], q)).collect();
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
            });
            scored
                .into_iter()
                .take(cap)
                .map(|(score, q)| ScoredQuestion { question: q, score })
                .collect()
        }
    }
}

/// Head of one sequence during the k-way merge, ordered like the greedy
/// heap: larger score first, ties toward the smaller question id.
struct MergeHead {
    score: f64,
    question: PairId,
    sequence: usize,
    next: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.question == other.question
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.question.cmp(&self.question))
    }
}

/// Merges per-component selection sequences into the global batch of at
/// most `mu` questions — the same order [`select_batch`] produces over
/// the union of the components' members.
pub fn merge_sequences<'a>(
    sequences: impl IntoIterator<Item = &'a [ScoredQuestion]>,
    mu: usize,
) -> Vec<PairId> {
    let mut heap: BinaryHeap<MergeHead> = BinaryHeap::new();
    let sequences: Vec<&[ScoredQuestion]> = sequences.into_iter().collect();
    for (i, seq) in sequences.iter().enumerate() {
        if let Some(head) = seq.first() {
            heap.push(MergeHead {
                score: head.score,
                question: head.question,
                sequence: i,
                next: 1,
            });
        }
    }
    let mut selected = Vec::with_capacity(mu.min(sequences.iter().map(|s| s.len()).sum()));
    while selected.len() < mu {
        let Some(top) = heap.pop() else { break };
        selected.push(top.question);
        if let Some(entry) = sequences[top.sequence].get(top.next) {
            heap.push(MergeHead {
                score: entry.score,
                question: entry.question,
                sequence: top.sequence,
                next: top.next + 1,
            });
        }
    }
    selected
}

/// Per-component selection cache: sequences and reachability flags are
/// recomputed only for components explicitly invalidated (because an
/// answered batch touched them), everything else is reused loop to loop.
#[derive(Clone, Debug)]
pub struct ComponentSelector {
    cap: usize,
    sequences: Vec<Vec<ScoredQuestion>>,
    reachable: Vec<bool>,
    valid: Vec<bool>,
}

impl ComponentSelector {
    /// A selector over `num_components` components caching sequences of
    /// up to `cap` questions (the configured µ — a batch can never take
    /// more than µ questions from one component).
    pub fn new(num_components: usize, cap: usize) -> ComponentSelector {
        ComponentSelector {
            cap,
            sequences: vec![Vec::new(); num_components],
            reachable: vec![false; num_components],
            valid: vec![false; num_components],
        }
    }

    /// Marks one component's cache stale.
    pub fn invalidate(&mut self, component: usize) {
        self.valid[component] = false;
    }

    /// Marks every component stale (full rebuilds, strategy changes).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Rescores every stale component (in parallel under `par`; retired
    /// components get empty sequences without being scanned).
    #[allow(clippy::too_many_arguments)]
    pub fn refresh(
        &mut self,
        strategy: BatchStrategy,
        components: &ComponentIndex,
        inferred: &InferredSets,
        priors: &[f64],
        eligible: &[bool],
        retired: &[bool],
        par: &Parallelism,
    ) {
        let stale: Vec<usize> = (0..self.valid.len()).filter(|&c| !self.valid[c]).collect();
        let results: Vec<(Vec<ScoredQuestion>, bool)> = par.par_map_with(
            &stale,
            || vec![1.0f64; eligible.len()],
            |scratch, &c| {
                if retired[c] {
                    return (Vec::new(), false);
                }
                let members = components.members(c);
                let reachable = members.iter().any(|&q| {
                    eligible[q.index()]
                        && inferred.inferred(q).iter().any(|&(p, _)| p != q && eligible[p.index()])
                });
                let sequence = component_sequence(
                    strategy, members, inferred, priors, eligible, self.cap, scratch,
                );
                (sequence, reachable)
            },
        );
        for (&c, (sequence, reachable)) in stale.iter().zip(results) {
            self.sequences[c] = sequence;
            self.reachable[c] = reachable;
            self.valid[c] = true;
        }
    }

    /// The paper's stopping rule, component-sharded: `true` while some
    /// unresolved pair is propagation-reachable from another.
    pub fn any_reachable(&self) -> bool {
        debug_assert!(self.valid.iter().all(|&v| v), "refresh before querying");
        self.reachable.iter().any(|&r| r)
    }

    /// The next batch: the k-way merge of all cached sequences.
    pub fn select(&self, mu: usize) -> Vec<PairId> {
        debug_assert!(self.valid.iter().all(|&v| v), "refresh before selecting");
        merge_sequences(self.sequences.iter().map(Vec::as_slice), mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use remp_propagation::{inferred_sets_dijkstra, ProbErGraph};

    const SEQ: &Parallelism = &Parallelism::Sequential;
    const POOL: &Parallelism = &Parallelism::Fixed(3);

    /// Builds inferred sets from explicit probabilistic edges.
    fn sets(n: usize, edges: &[(u32, u32, f64)], tau: f64) -> InferredSets {
        let g =
            ProbErGraph::from_edges(n, edges.iter().map(|&(v, w, p)| (PairId(v), PairId(w), p)));
        inferred_sets_dijkstra(&g, tau, SEQ)
    }

    #[test]
    fn benefit_of_empty_set_is_zero() {
        let inf = sets(3, &[], 0.9);
        assert_eq!(benefit(&[], &inf, &[0.5; 3], &[true; 3]), 0.0);
    }

    #[test]
    fn benefit_counts_expected_inferences() {
        // q=0 infers {0,1,2} with prior 0.5 → benefit = 3 × 0.5.
        let inf = sets(3, &[(0, 1, 0.95), (0, 2, 0.95)], 0.9);
        let b = benefit(&[PairId(0)], &inf, &[0.5; 3], &[true; 3]);
        assert!((b - 1.5).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn overlapping_questions_do_not_double_count() {
        // Both questions infer pair 2; prior 1.0 → benefit saturates at 3.
        let inf = sets(3, &[(0, 2, 0.95), (1, 2, 0.95)], 0.9);
        let b = benefit(&[PairId(0), PairId(1)], &inf, &[1.0; 3], &[true; 3]);
        assert!((b - 3.0).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn resolved_pairs_do_not_count() {
        let inf = sets(3, &[(0, 1, 0.95), (0, 2, 0.95)], 0.9);
        let b = benefit(&[PairId(0)], &inf, &[0.5; 3], &[true, false, true]);
        assert!((b - 1.0).abs() < 1e-9, "only 2 eligible pairs count, got {b}");
    }

    #[test]
    fn greedy_prefers_high_coverage_high_probability() {
        // q0: infers 3 extra pairs, prior 0.9. q4: infers itself, prior 0.95.
        let inf = sets(5, &[(0, 1, 0.95), (0, 2, 0.95), (0, 3, 0.95)], 0.9);
        let priors = [0.9, 0.5, 0.5, 0.5, 0.95];
        let q = select_questions(&[PairId(0), PairId(4)], &inf, &priors, &[true; 5], 1, SEQ);
        assert_eq!(q, vec![PairId(0)]);
    }

    #[test]
    fn greedy_stops_on_zero_gain() {
        let inf = sets(2, &[], 0.9);
        let q = select_questions(&[PairId(0), PairId(1)], &inf, &[0.0, 0.0], &[true; 2], 5, SEQ);
        assert!(q.is_empty(), "zero-prior questions have zero gain");
    }

    #[test]
    fn greedy_scatters_over_components() {
        // Two disjoint 2-clusters: µ=2 should pick one question per cluster
        // rather than two from the same cluster.
        let inf = sets(4, &[(0, 1, 0.95), (2, 3, 0.95)], 0.9);
        let all = [PairId(0), PairId(1), PairId(2), PairId(3)];
        let q = select_questions(&all, &inf, &[0.8; 4], &[true; 4], 2, SEQ);
        assert_eq!(q.len(), 2);
        let comp = |p: PairId| p.index() / 2;
        assert_ne!(comp(q[0]), comp(q[1]), "questions should scatter: {q:?}");
    }

    #[test]
    fn max_inf_picks_biggest_set() {
        let inf = sets(4, &[(0, 1, 0.95), (0, 2, 0.95)], 0.9);
        let q = max_inf_questions(&[PairId(0), PairId(3)], &inf, &[true; 4], 1, SEQ);
        assert_eq!(q, vec![PairId(0)]);
    }

    #[test]
    fn max_pr_picks_highest_prior() {
        let q = max_pr_questions(&[PairId(0), PairId(1)], &[0.2, 0.9], 1);
        assert_eq!(q, vec![PairId(1)]);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [BatchStrategy::Benefit, BatchStrategy::MaxInf, BatchStrategy::MaxPr] {
            assert_eq!(BatchStrategy::from_name(s.name()), Some(s));
        }
        assert_eq!(BatchStrategy::from_name("bogus"), None);
        assert_eq!(BatchStrategy::default(), BatchStrategy::Benefit);
    }

    #[test]
    fn select_batch_dispatches_per_strategy() {
        // q0 has big inference power, q4 the highest prior.
        let inf = sets(5, &[(0, 1, 0.95), (0, 2, 0.95), (0, 3, 0.95)], 0.9);
        let priors = [0.6, 0.5, 0.5, 0.5, 0.95];
        let cands = [PairId(0), PairId(4)];
        let eligible = [true; 5];
        assert_eq!(
            select_batch(BatchStrategy::MaxInf, &cands, &inf, &priors, &eligible, 1, SEQ),
            vec![PairId(0)]
        );
        assert_eq!(
            select_batch(BatchStrategy::MaxPr, &cands, &inf, &priors, &eligible, 1, SEQ),
            vec![PairId(4)]
        );
        assert_eq!(
            select_batch(BatchStrategy::Benefit, &cands, &inf, &priors, &eligible, 1, SEQ),
            select_questions(&cands, &inf, &priors, &eligible, 1, SEQ)
        );
    }

    /// Union-find components of an undirected edge list — the coarsest
    /// partition inferred sets can interact across.
    fn components_of(n: usize, edges: &[(u32, u32, f64)]) -> ComponentIndex {
        let mut parent: Vec<usize> = (0..n).collect();
        fn root(parent: &mut [usize], mut v: usize) -> usize {
            while parent[v] != v {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            v
        }
        for &(a, b, _) in edges {
            let (ra, rb) = (root(&mut parent, a as usize), root(&mut parent, b as usize));
            parent[ra.max(rb)] = ra.min(rb);
        }
        let assignments: Vec<usize> = (0..n).map(|v| root(&mut parent, v)).collect();
        ComponentIndex::from_assignments(&assignments)
    }

    #[test]
    fn component_selection_matches_global_on_fixture() {
        // Two disjoint clusters plus a loner; every strategy must merge
        // back to exactly the global selection.
        let edges = [(0, 1, 0.95), (1, 2, 0.92), (3, 4, 0.97)];
        let inf = sets(6, &edges, 0.9);
        let index = components_of(6, &edges);
        let priors = [0.8, 0.3, 0.55, 0.9, 0.2, 0.7];
        let eligible = [true, true, false, true, true, true];
        let cands: Vec<PairId> = (0..6).map(PairId).filter(|&p| eligible[p.index()]).collect();
        for strategy in [BatchStrategy::Benefit, BatchStrategy::MaxInf, BatchStrategy::MaxPr] {
            for mu in 1..=4 {
                let global = select_batch(strategy, &cands, &inf, &priors, &eligible, mu, SEQ);
                let mut selector = ComponentSelector::new(index.len(), 4);
                selector.refresh(
                    strategy,
                    &index,
                    &inf,
                    &priors,
                    &eligible,
                    &vec![false; index.len()],
                    POOL,
                );
                assert_eq!(selector.select(mu), global, "{strategy:?} µ={mu}");
            }
        }
    }

    #[test]
    fn selector_caches_survive_unrelated_invalidation() {
        let edges = [(0, 1, 0.95), (2, 3, 0.95)];
        let inf = sets(4, &edges, 0.9);
        let index = components_of(4, &edges);
        let priors = [0.8; 4];
        let mut eligible = vec![true; 4];
        let retired = vec![false; index.len()];
        let mut selector = ComponentSelector::new(index.len(), 2);
        selector.refresh(BatchStrategy::Benefit, &index, &inf, &priors, &eligible, &retired, SEQ);
        assert!(selector.any_reachable());
        let before = selector.select(4);

        // Resolving pair 2 only invalidates its own component; the other
        // component's cached sequence must still be used and the merged
        // batch must equal a fully recomputed selection.
        eligible[2] = false;
        selector.invalidate(index.component_of(PairId(2)));
        selector.refresh(BatchStrategy::Benefit, &index, &inf, &priors, &eligible, &retired, SEQ);
        let after = selector.select(4);
        let cands: Vec<PairId> = (0..4).map(PairId).filter(|&p| eligible[p.index()]).collect();
        assert_eq!(
            after,
            select_batch(BatchStrategy::Benefit, &cands, &inf, &priors, &eligible, 4, SEQ)
        );
        assert_ne!(before, after);
    }

    #[test]
    fn retired_components_are_skipped() {
        let edges = [(0, 1, 0.95), (2, 3, 0.95)];
        let inf = sets(4, &edges, 0.9);
        let index = components_of(4, &edges);
        let eligible = [true, true, false, false];
        let mut retired = vec![false; index.len()];
        retired[index.component_of(PairId(2))] = true;
        let mut selector = ComponentSelector::new(index.len(), 2);
        selector.refresh(BatchStrategy::Benefit, &index, &inf, &[0.8; 4], &eligible, &retired, SEQ);
        let selected = selector.select(4);
        assert!(
            selected.iter().all(|&q| q.index() < 2),
            "retired pairs never selected: {selected:?}"
        );
        assert!(selector.any_reachable());
    }

    #[test]
    fn merge_sequences_respects_order_and_ties() {
        let seq = |entries: &[(u32, f64)]| -> Vec<ScoredQuestion> {
            entries.iter().map(|&(q, s)| ScoredQuestion { question: PairId(q), score: s }).collect()
        };
        let a = seq(&[(4, 3.0), (0, 1.0)]);
        let b = seq(&[(2, 3.0), (5, 2.0)]);
        // Equal top scores: the smaller question id goes first.
        let merged = merge_sequences([a.as_slice(), b.as_slice()], 10);
        assert_eq!(merged, vec![PairId(2), PairId(4), PairId(5), PairId(0)]);
        assert_eq!(merge_sequences([a.as_slice(), b.as_slice()], 2).len(), 2);
        assert!(merge_sequences(std::iter::empty(), 3).is_empty());
    }

    fn arb_instance() -> impl Strategy<Value = (InferredSets, Vec<f64>, Vec<PairId>)> {
        let edges = proptest::collection::vec((0u32..6, 0u32..6, 0.85f64..1.0), 0..18);
        let priors = proptest::collection::vec(0.0f64..1.0, 6);
        (edges, priors).prop_map(|(edges, priors)| {
            let inf = sets(6, &edges, 0.8);
            let cands: Vec<PairId> = (0..6).map(PairId).collect();
            (inf, priors, cands)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Monotonicity: adding a question never lowers the benefit.
        #[test]
        fn benefit_is_monotone((inf, priors, cands) in arb_instance(), extra in 0usize..6) {
            let eligible = vec![true; 6];
            let some: Vec<PairId> = cands.iter().copied().take(3).collect();
            let b1 = benefit(&some, &inf, &priors, &eligible);
            let mut more = some.clone();
            more.push(cands[extra]);
            let b2 = benefit(&more, &inf, &priors, &eligible);
            prop_assert!(b2 >= b1 - 1e-9);
        }

        /// Submodularity: marginal gains shrink as the set grows.
        #[test]
        fn benefit_is_submodular((inf, priors, cands) in arb_instance(), q in 0usize..6) {
            let eligible = vec![true; 6];
            let small: Vec<PairId> = cands.iter().copied().take(2).collect();
            let large: Vec<PairId> = cands.iter().copied().take(4).collect();
            let q = cands[q];
            if large.contains(&q) {
                return Ok(());
            }
            let gain_small = benefit(&[small.clone(), vec![q]].concat(), &inf, &priors, &eligible)
                - benefit(&small, &inf, &priors, &eligible);
            let gain_large = benefit(&[large.clone(), vec![q]].concat(), &inf, &priors, &eligible)
                - benefit(&large, &inf, &priors, &eligible);
            prop_assert!(gain_small >= gain_large - 1e-9);
        }

        /// The lazy greedy and the naive greedy select identical sets.
        #[test]
        fn lazy_equals_naive((inf, priors, cands) in arb_instance(), mu in 1usize..5) {
            let eligible = vec![true; 6];
            let lazy = select_questions(&cands, &inf, &priors, &eligible, mu, POOL);
            let naive = select_questions_naive(&cands, &inf, &priors, &eligible, mu);
            prop_assert_eq!(lazy, naive);
        }

        /// Component-sharded selection merges back to exactly the global
        /// selection — order included — for every strategy, any µ, any
        /// eligibility pattern. This is the decomposition the incremental
        /// pipeline rests on.
        #[test]
        fn component_merge_equals_global(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.82f64..1.0), 0..24),
            priors in proptest::collection::vec(0.0f64..1.0, 8),
            eligible in proptest::collection::vec(proptest::bool::ANY, 8),
            mu in 1usize..6,
            strategy_pick in 0usize..3,
        ) {
            let strategy =
                [BatchStrategy::Benefit, BatchStrategy::MaxInf, BatchStrategy::MaxPr][strategy_pick];
            let inf = sets(8, &edges, 0.8);
            let index = components_of(8, &edges);
            let cands: Vec<PairId> = (0..8).map(PairId).filter(|&p| eligible[p.index()]).collect();
            let global = select_batch(strategy, &cands, &inf, &priors, &eligible, mu, SEQ);
            let mut selector = ComponentSelector::new(index.len(), mu);
            selector.refresh(strategy, &index, &inf, &priors, &eligible, &vec![false; index.len()], POOL);
            prop_assert_eq!(selector.select(mu), global);
        }

        /// Greedy achieves ≥ (1 − 1/e) of the brute-force optimum.
        #[test]
        fn greedy_approximation_bound((inf, priors, cands) in arb_instance(), mu in 1usize..4) {
            let eligible = vec![true; 6];
            let greedy = select_questions(&cands, &inf, &priors, &eligible, mu, SEQ);
            let greedy_benefit = benefit(&greedy, &inf, &priors, &eligible);
            // Brute force over all subsets of size ≤ mu.
            let mut best = 0.0f64;
            let m = cands.len();
            for mask in 0u32..(1 << m) {
                if (mask.count_ones() as usize) > mu {
                    continue;
                }
                let subset: Vec<PairId> =
                    (0..m).filter(|i| mask & (1 << i) != 0).map(|i| cands[i]).collect();
                best = best.max(benefit(&subset, &inf, &priors, &eligible));
            }
            prop_assert!(greedy_benefit >= (1.0 - 1.0 / std::f64::consts::E) * best - 1e-9,
                "greedy {} vs opt {}", greedy_benefit, best);
        }
    }
}
