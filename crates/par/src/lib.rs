//! Dependency-free structured parallelism for the Remp pipeline.
//!
//! The hot pipeline stages — candidate generation, similarity-vector
//! computation, partial-order pruning, per-source propagation and batch
//! scoring — are all *embarrassingly parallel*: independent per-item
//! computations over a slice whose results are only combined at the end.
//! This crate gives them one shared execution primitive built purely on
//! [`std::thread::scope`] (the build environment has no crates.io access,
//! so no rayon):
//!
//! * [`Parallelism`] — the execution policy. [`Parallelism::Sequential`]
//!   runs everything inline (reproducibility tests, debugging),
//!   [`Parallelism::Fixed`] pins a worker count, and the default
//!   [`Parallelism::Auto`] resolves `REMP_THREADS` from the environment,
//!   falling back to [`std::thread::available_parallelism`].
//! * [`Parallelism::par_map`] / [`Parallelism::par_map_with`] /
//!   [`Parallelism::par_for_each`] — chunked fork-join maps with
//!   **deterministic result ordering**: the output is always
//!   element-for-element identical to the sequential map, regardless of
//!   thread count or scheduling. The pipeline leans on this hard — the
//!   parallel and sequential pipelines must produce *bit-identical*
//!   matches, metrics and question order (`tests/parallel_equivalence.rs`
//!   asserts it on every dataset preset).
//!
//! Worker panics propagate to the caller with their original payload;
//! nested use (a `par_map` inside a `par_map` worker) is safe because
//! every call owns its scope and its workers.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable consulted by [`Parallelism::Auto`]: a positive
/// integer worker count (`1` forces sequential execution).
pub const THREADS_ENV: &str = "REMP_THREADS";

/// Target number of chunks handed to each worker thread. More than one
/// chunk per worker keeps the pool balanced when per-item cost is skewed
/// (e.g. high-degree entities during candidate generation); the work
/// queue is a single atomic counter, so extra chunks are nearly free.
const CHUNKS_PER_THREAD: usize = 4;

/// Execution policy for the pipeline's data-parallel stages.
///
/// The policy only controls *how* work is scheduled, never *what* is
/// computed: every mode produces identical results. It lives in
/// `RempConfig` (as `parallelism`) and is deliberately excluded from
/// anything semantic — checkpoints written under `Sequential` resume
/// cleanly under `Fixed(8)` and vice versa.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Run everything inline on the calling thread. The reference mode
    /// for reproducibility tests and the fallback on single-core hosts.
    Sequential,
    /// Use exactly this many worker threads (values `0` and `1` behave
    /// like [`Parallelism::Sequential`]).
    Fixed(usize),
    /// Resolve the worker count at call time: [`THREADS_ENV`] if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    #[default]
    Auto,
}

impl Parallelism {
    /// The worker count this policy resolves to right now (≥ 1).
    ///
    /// `Auto` re-reads the environment on every call, so a test harness
    /// can flip [`THREADS_ENV`] between cases without rebuilding configs.
    pub fn threads(&self) -> usize {
        match *self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
        }
    }

    /// `true` when the policy currently resolves to inline execution.
    pub fn is_sequential(&self) -> bool {
        self.threads() <= 1
    }

    /// Stable label for configs and checkpoints: `"sequential"`,
    /// `"auto"`, or `"fixed:N"`.
    pub fn label(&self) -> String {
        match *self {
            Parallelism::Sequential => "sequential".to_owned(),
            Parallelism::Auto => "auto".to_owned(),
            Parallelism::Fixed(n) => format!("fixed:{n}"),
        }
    }

    /// Inverse of [`Parallelism::label`]. Also accepts a bare positive
    /// integer (`"4"` ≡ `"fixed:4"`) for CLI convenience.
    pub fn from_label(label: &str) -> Option<Parallelism> {
        match label {
            "sequential" => Some(Parallelism::Sequential),
            "auto" => Some(Parallelism::Auto),
            other => {
                let raw = other.strip_prefix("fixed:").unwrap_or(other);
                let n: usize = raw.parse().ok()?;
                Some(if n <= 1 { Parallelism::Sequential } else { Parallelism::Fixed(n) })
            }
        }
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Work is split into contiguous chunks (see [`chunk_size`]) pulled
    /// from an atomic queue by a scoped worker pool. A panic in `f`
    /// resumes on the caller with its original payload.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_with(items, || (), |(), item| f(item))
    }

    /// [`Parallelism::par_map`] with per-worker scratch state: `init`
    /// runs once per worker thread and `f` receives the scratch mutably.
    ///
    /// The pipeline uses this for reusable buffers (a Dijkstra distance
    /// array, token scratch) whose *contents* must not change results —
    /// the scratch is an allocation cache, not a communication channel.
    pub fn par_map_with<T, U, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> U + Sync,
    {
        let threads = self.threads();
        if threads <= 1 || items.len() <= 1 {
            let mut scratch = init();
            return items.iter().map(|item| f(&mut scratch, item)).collect();
        }

        let chunk = chunk_size(items.len(), threads);
        let num_chunks = items.len().div_ceil(chunk);
        let workers = threads.min(num_chunks);
        let next = AtomicUsize::new(0);

        let mut parts: Vec<(usize, Vec<U>)> = Vec::with_capacity(num_chunks);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= num_chunks {
                                break;
                            }
                            let start = index * chunk;
                            let end = (start + chunk).min(items.len());
                            let out: Vec<U> = items[start..end]
                                .iter()
                                .map(|item| f(&mut scratch, item))
                                .collect();
                            local.push((index, out));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(mut local) => parts.append(&mut local),
                    // Re-raise the worker's panic with its own payload
                    // (thread::scope alone would replace it with a
                    // generic "a scoped thread panicked").
                    Err(payload) => resume_unwind(payload),
                }
            }
        });

        parts.sort_unstable_by_key(|&(index, _)| index);
        debug_assert_eq!(parts.len(), num_chunks, "every chunk is computed exactly once");
        parts.into_iter().flat_map(|(_, out)| out).collect()
    }

    /// Runs `f` on every item for its side effects (e.g. filling
    /// thread-safe per-item slots). Panics propagate like `par_map`.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        let _ = self.par_map(items, f);
    }
}

/// The chunk length `par_map` uses for `len` items on `threads` workers:
/// `len / (threads × 4)` rounded up, floored at 1 — about four chunks per
/// worker for balance without scheduling overhead.
pub fn chunk_size(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1) * CHUNKS_PER_THREAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_input_yields_empty_output() {
        for par in [Parallelism::Sequential, Parallelism::Fixed(4), Parallelism::Auto] {
            let out: Vec<u64> = par.par_map(&[] as &[u64], |&x| x * 2);
            assert!(out.is_empty(), "{par:?}");
        }
    }

    #[test]
    fn singleton_runs_inline() {
        let out = Parallelism::Fixed(8).par_map(&[21u64], |&x| x * 2);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn ordering_matches_sequential_map() {
        let items: Vec<u64> = (0..1013).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for threads in [2, 3, 4, 7, 64] {
            let got = Parallelism::Fixed(threads).par_map(&items, |&x| x.wrapping_mul(2654435761));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_sizing_covers_all_items_without_excess() {
        assert_eq!(chunk_size(0, 4), 1, "empty input still gets a positive chunk");
        assert_eq!(chunk_size(1, 4), 1);
        assert_eq!(chunk_size(16, 4), 1, "16 items on 4 workers → 16 single-item chunks");
        assert_eq!(chunk_size(1600, 4), 100);
        assert_eq!(chunk_size(1601, 4), 101, "remainders round the chunk up");
        assert_eq!(chunk_size(10, 0), 3, "a zero thread count is treated as one worker");
        // The invariant the pool relies on: chunks of this size tile the
        // whole input.
        for (len, threads) in [(1, 1), (5, 2), (1000, 3), (1024, 16), (7, 64)] {
            let c = chunk_size(len, threads);
            assert!(c * len.div_ceil(c) >= len, "len {len}, threads {threads}");
        }
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<u32> = (0..256).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Parallelism::Fixed(4).par_map(&items, |&x| {
                assert!(x != 97, "poisoned item 97");
                x
            })
        }));
        let payload = result.expect_err("panic must cross the pool boundary");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(message.contains("poisoned item 97"), "original payload kept: {message:?}");
    }

    #[test]
    fn nested_par_map_is_safe_and_ordered() {
        let outer: Vec<u64> = (0..24).collect();
        let got = Parallelism::Fixed(3).par_map(&outer, |&x| {
            let inner: Vec<u64> = (0..16).collect();
            Parallelism::Fixed(2).par_map(&inner, |&y| x * 100 + y).iter().sum::<u64>()
        });
        let expected: Vec<u64> =
            outer.iter().map(|&x| (0..16).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn scratch_is_per_worker_and_results_stay_ordered() {
        let items: Vec<usize> = (0..500).collect();
        let inits = AtomicUsize::new(0);
        let got = Parallelism::Fixed(4).par_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, &x| {
                scratch.push(x); // scratch grows, results must not care
                x * 3
            },
        );
        assert_eq!(got, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 4, "one scratch per worker at most");
    }

    #[test]
    fn par_for_each_visits_every_item() {
        let items: Vec<usize> = (0..300).collect();
        let sum = AtomicUsize::new(0);
        Parallelism::Fixed(4).par_for_each(&items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 300 * 299 / 2);
    }

    #[test]
    fn labels_round_trip() {
        for par in [Parallelism::Sequential, Parallelism::Auto, Parallelism::Fixed(6)] {
            assert_eq!(Parallelism::from_label(&par.label()), Some(par));
        }
        assert_eq!(Parallelism::from_label("4"), Some(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::from_label("1"), Some(Parallelism::Sequential));
        assert_eq!(Parallelism::from_label("fixed:0"), Some(Parallelism::Sequential));
        assert_eq!(Parallelism::from_label("bogus"), None);
        assert_eq!(Parallelism::from_label("fixed:x"), None);
    }

    #[test]
    fn thread_counts_resolve() {
        assert_eq!(Parallelism::Sequential.threads(), 1);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::Fixed(5).threads(), 5);
        assert!(Parallelism::Auto.threads() >= 1);
        assert!(Parallelism::Sequential.is_sequential());
        assert!(!Parallelism::Fixed(8).is_sequential());
    }
}
