//! Canonical and pretty JSON writers.

use std::fmt::{self, Write};

use crate::Json;

pub(crate) fn write_value<W: Write>(value: &Json, f: &mut W) -> fmt::Result {
    match value {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        Json::UInt(n) => write!(f, "{n}"),
        Json::Int(n) => write!(f, "{n}"),
        Json::Num(x) => write_f64(*x, f),
        Json::Str(s) => write_string(s, f),
        Json::Arr(items) => {
            f.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_value(item, f)?;
            }
            f.write_char(']')
        }
        Json::Obj(members) => {
            f.write_char('{')?;
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_string(key, f)?;
                f.write_char(':')?;
                write_value(val, f)?;
            }
            f.write_char('}')
        }
    }
}

/// Indented writer behind [`Json::to_pretty_string`]: 2-space indent,
/// one member per line, `": "` after keys. Parses back to the same value
/// as the canonical form — only inter-token whitespace differs.
pub(crate) fn write_pretty<W: Write>(value: &Json, f: &mut W, depth: usize) -> fmt::Result {
    match value {
        Json::Arr(items) if !items.is_empty() => {
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",\n")?;
                }
                write_indent(f, depth + 1)?;
                write_pretty(item, f, depth + 1)?;
            }
            f.write_char('\n')?;
            write_indent(f, depth)?;
            f.write_char(']')
        }
        Json::Obj(members) if !members.is_empty() => {
            f.write_str("{\n")?;
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    f.write_str(",\n")?;
                }
                write_indent(f, depth + 1)?;
                write_string(key, f)?;
                f.write_str(": ")?;
                write_pretty(val, f, depth + 1)?;
            }
            f.write_char('\n')?;
            write_indent(f, depth)?;
            f.write_char('}')
        }
        other => write_value(other, f),
    }
}

fn write_indent<W: Write>(f: &mut W, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_f64<W: Write>(x: f64, f: &mut W) -> fmt::Result {
    if !x.is_finite() {
        // JSON has no NaN/Inf; checkpoints never contain them, but fail
        // loudly rather than emit an unparseable token.
        panic!("cannot serialise non-finite number {x}");
    }
    // `{:?}` is Rust's shortest round-trip float formatting; ensure the
    // token stays a float (e.g. 1.0 rather than 1) so types survive.
    let text = format!("{x:?}");
    if text.contains(['.', 'e', 'E']) {
        f.write_str(&text)
    } else {
        write!(f, "{text}.0")
    }
}

fn write_string<W: Write>(s: &str, f: &mut W) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}
