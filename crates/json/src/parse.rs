//! Strict recursive-descent JSON parser.

use crate::Json;

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by exactly one low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always the start of a valid sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        if int_len == 0 {
            return Err(self.err("expected digits"));
        }
        if int_len > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}
