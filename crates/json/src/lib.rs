//! A small, dependency-free JSON library backing Remp's session
//! checkpoints.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! cannot be used; this crate provides the minimal machinery checkpointing
//! needs: a [`Json`] value tree, a strict recursive-descent [`Json::parse`]
//! and a canonical writer `Json::to_string` (via the `Display` impl).
//! Numbers round-trip exactly: integers are kept as `u64`/`i64` and floats
//! are written with Rust's shortest-round-trip formatting.

mod parse;
mod write;

pub use parse::JsonError;

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        parse::parse(src)
    }

    /// Renders the value with 2-space indentation, one member per line —
    /// the operator-friendly form used for checkpoint files on disk and
    /// `?pretty=1` HTTP responses. Parses back to the same value as the
    /// canonical single-line `to_string` form.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, &mut out, 0).expect("writing to a String cannot fail");
        out
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as an `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write::write_value(self, f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        if n >= 0 {
            Json::UInt(n as u64)
        } else {
            Json::Int(n)
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_values() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::UInt(1)),
            ("pi".into(), Json::Num(std::f64::consts::PI)),
            ("neg".into(), Json::Int(-42)),
            ("big".into(), Json::UInt(u64::MAX)),
            ("name".into(), Json::Str("quote \" slash \\ nl \n".into())),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1e-300, 123456.789, f64::MIN_POSITIVE, 0.30000000000000004] {
            let text = Json::Num(x).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, 2.5, "s", false], "b": {"c": 7}}"#).unwrap();
        let items = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("s"));
        assert_eq!(items[3].as_bool(), Some(false));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_usize(), Some(7));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "01", "\"\\x\"", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_broken_surrogate_pairs() {
        // Lone high surrogate, high followed by a non-low escape, and a
        // lone low surrogate must all fail rather than mangle output.
        for bad in [r#""\ud800""#, r#""\ud800\u0041""#, r#""\udc00""#, r#""\ud800x""#] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
        // A valid pair still decodes.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn pretty_form_round_trips_and_indents() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::UInt(1)),
            ("items".into(), Json::Arr(vec![Json::UInt(1), Json::Str("two".into())])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("nested".into(), Json::Obj(vec![("pi".into(), Json::Num(3.5))])),
        ]);
        let pretty = doc.to_pretty_string();
        // Same value back, different surface form.
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert_ne!(pretty, doc.to_string());
        // Operators get one member per line and visible indentation.
        assert!(pretty.contains("\n  \"version\": 1,\n"), "{pretty}");
        assert!(pretty.contains("\"empty_arr\": []"), "empty containers stay inline: {pretty}");
        assert!(pretty.contains("\n    \"pi\": 3.5\n"), "{pretty}");
        assert!(pretty.ends_with('}'), "{pretty}");
    }

    #[test]
    fn pretty_scalars_match_canonical() {
        for doc in [Json::Null, Json::Bool(true), Json::UInt(7), Json::Str("s".into())] {
            assert_eq!(doc.to_pretty_string(), doc.to_string());
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""line\n tab\t quote\" u\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("line\n tab\t quote\" ué"));
    }
}
