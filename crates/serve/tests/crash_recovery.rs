//! Crash-durability tests: `rempd` is SIGKILLed mid-campaign — no
//! graceful shutdown, no final checkpoint — and a fresh process on the
//! same `--state-dir` must replay the answer WAL over the last
//! checkpoint and finish the campaign **bit-identical** to an
//! uninterrupted in-process run. A variant hand-writes a torn final
//! WAL record (the shape a crash mid-`write` leaves behind) and proves
//! recovery truncates it and keeps appending.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use remp_core::RempConfig;
use remp_datasets::{generate, tiny};
use remp_json::Json;
use remp_serve::{
    drive, drive_n, outcome_matches, reference_outcome, CrowdParams, CrowdPolicy, ServeClient,
    WireCrowd,
};

/// A `rempd` child process on a free port; the bound address is parsed
/// from its startup banner. Killed (not shut down) on drop so a failed
/// assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rempd"))
            .args(["--addr", "127.0.0.1:0", "--state-dir"])
            .arg(state_dir)
            .args(["--threads", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rempd");
        let stdout = child.stdout.take().expect("rempd stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines.next().expect("rempd exited before binding").expect("rempd stdout");
            if let Some(rest) = line.strip_prefix("rempd listening on http://") {
                break rest.trim().to_owned();
            }
        };
        // Keep draining the banner lines so the child never blocks on a
        // full pipe; rempd logs nothing per-request.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Daemon { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::new(self.addr.clone())
    }

    /// SIGKILL — the point of the test: no signal handler runs, no
    /// checkpoint is written, the WAL is all that survives.
    fn kill(mut self) {
        self.child.kill().expect("kill rempd");
        self.child.wait().expect("reap rempd");
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remp-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create_campaign(client: &ServeClient, per_question: usize, name: &str) -> String {
    let created = client
        .post(
            "/campaigns",
            &Json::Obj(vec![
                ("name".into(), Json::from(name)),
                ("preset".into(), Json::from("TINY")),
                ("per_question".into(), Json::from(per_question)),
            ]),
        )
        .expect("create campaign");
    created.get("id").and_then(Json::as_str).expect("campaign id").to_owned()
}

/// Drives `partial` questions, SIGKILLs the daemon, optionally mangles
/// the WAL tail, restarts, finishes the campaign with the *same* crowd
/// RNG, and asserts the outcome bit-identical to the in-process
/// reference. Returns nothing — every guarantee is an assertion.
fn crash_and_recover(tag: &str, mangle_tail: bool) {
    let d = generate(&tiny(1.0));
    let truth = |a, b| d.is_match(a, b);
    let params = CrowdParams { per_question: 3, ..CrowdParams::paper_default(41) };
    let state_dir = tmp_dir(tag);

    // Phase 1: a real rempd process, killed -9 after four questions.
    let daemon = Daemon::spawn(&state_dir);
    let client = daemon.client();
    let id = create_campaign(&client, 3, tag);
    let mut crowd = WireCrowd::new(&params);
    let first = drive_n(&client, &id, &mut crowd, &truth, Some(4)).expect("partial drive");
    assert_eq!(first.len(), 4);
    daemon.kill();

    let wal_path = state_dir.join(format!("{id}.wal"));
    let wal_before = std::fs::metadata(&wal_path).expect("WAL exists after kill -9").len();
    assert!(wal_before > 0, "accepted answers must be in the WAL before the 2xx");

    if mangle_tail {
        // A crash mid-append leaves a frame whose length prefix promises
        // more bytes than were flushed. Recovery must truncate exactly
        // this tail and keep every complete frame before it.
        let mut wal = std::fs::OpenOptions::new().append(true).open(&wal_path).expect("open WAL");
        wal.write_all(&200u32.to_le_bytes()).expect("torn length prefix");
        wal.write_all(&[0xAB; 11]).expect("torn partial payload");
        wal.sync_all().expect("sync torn tail");
    }

    // Phase 2: a fresh process on the same state dir replays the WAL.
    let daemon = Daemon::spawn(&state_dir);
    let client = daemon.client();
    let status = client.get(&format!("/campaigns/{id}")).expect("recovered campaign status");
    assert_eq!(
        status.get("questions_asked").and_then(Json::as_usize),
        Some(4),
        "WAL replay must restore every answered question"
    );
    if mangle_tail {
        let replayed = std::fs::metadata(&wal_path).expect("WAL after recovery").len();
        assert!(replayed <= wal_before, "recovery must truncate the torn tail, not keep it");
    }

    let rest = drive(&client, &id, &mut crowd, &truth).expect("drive to completion");
    assert!(!rest.is_empty(), "campaign still had open questions at the crash");
    let wire_outcome = client.get(&format!("/campaigns/{id}/outcome")).expect("outcome");
    daemon.kill();

    let policy = CrowdPolicy { per_question: 3, ..CrowdPolicy::default() };
    let (reference, log) =
        reference_outcome(&d.kb1, &d.kb2, &RempConfig::default(), &policy, &params, &truth)
            .expect("reference run");
    assert_eq!(first.len() + rest.len(), reference.questions_asked);
    outcome_matches(&wire_outcome, &reference, &log)
        .expect("campaign recovered from kill -9 must stay bit-identical to the in-process run");
    std::fs::remove_dir_all(&state_dir).unwrap();
}

#[test]
fn kill_dash_nine_mid_campaign_recovers_bit_identical() {
    crash_and_recover("kill9", false);
}

#[test]
fn torn_final_wal_record_is_truncated_and_the_campaign_still_recovers() {
    crash_and_recover("torn", true);
}
