//! Injectable time for the lease engine.
//!
//! [`CampaignEngine`](crate::engine::CampaignEngine) is clock-free by
//! design — every method takes `now_ms` — but something has to produce
//! those readings. The HTTP layer used to call [`SystemTime`] directly,
//! which forced every lease-expiry test to actually sleep. [`Clock`]
//! breaks that dependency: the [`Registry`](crate::registry::Registry)
//! owns one `Arc<dyn Clock>` and stamps every request with it, so a
//! server under test (or the `remp-sim` simulator) can run a campaign
//! on purely virtual time with [`ManualClock`], while production
//! `rempd` keeps [`SystemClock`].
//!
//! Readings are milliseconds on an arbitrary but fixed origin; leases
//! only ever compare readings from the same clock, never across
//! processes, so the origin does not matter — monotonicity does.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of millisecond readings for lease deadlines.
///
/// Implementations must be monotone non-decreasing: leases never
/// persist across processes, but a clock that jumps backwards would
/// resurrect expired leases mid-run.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current reading, in milliseconds.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time (milliseconds since the Unix epoch) — the production
/// clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
    }
}

/// A hand-cranked clock for tests and simulation: time only moves when
/// [`advance`](ManualClock::advance) or [`set`](ManualClock::set) is
/// called. Readings are shared through the `Arc` the registry holds, so
/// a test can advance time from outside while the server routes requests
/// against it.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A manual clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> ManualClock {
        ManualClock(AtomicU64::new(start_ms))
    }

    /// Moves time forward by `ms`; returns the new reading.
    pub fn advance(&self, ms: u64) -> u64 {
        self.0.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// Jumps to an absolute reading. Clamped to never move backwards —
    /// the [`Clock`] contract is monotone.
    pub fn set(&self, ms: u64) {
        self.0.fetch_max(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_forward() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_ms(), 100);
        assert_eq!(clock.advance(50), 150);
        clock.set(120); // backwards jump is ignored
        assert_eq!(clock.now_ms(), 150);
        clock.set(400);
        assert_eq!(clock.now_ms(), 400);
    }

    #[test]
    fn system_clock_is_monotone_enough() {
        let clock = SystemClock;
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(a > 1_500_000_000_000, "epoch-based reading should be in the 21st century");
    }
}
