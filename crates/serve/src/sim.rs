//! `SimulatedCrowd` over the wire: named simulated workers, the
//! in-process reference run, and the HTTP drive loop.
//!
//! The point of this module is the **end-to-end equivalence proof**: a
//! campaign driven entirely over HTTP by [`drive`] with a seeded
//! [`WireCrowd`] produces bit-identical resolutions, question order and
//! submission log to [`reference_outcome`] — the same worker stream fed
//! straight into a [`RempSession`] with the same online quality
//! estimator, no server anywhere. `rempctl drive --verify` and the
//! integration tests both assert it.
//!
//! [`WireCrowd`] is [`SimulatedCrowd`](remp_crowd::SimulatedCrowd) with
//! identities: qualities are drawn the same way, but each label is
//! attributed to a *named* worker (`w0`, `w1`, ...) so the server can
//! enforce per-question distinctness and estimate per-worker quality —
//! exactly what an MTurk deployment sees (worker ids, no oracle
//! qualities).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remp_core::{QuestionId, Remp, RempConfig, RempError, RempOutcome, RempSession};
use remp_crowd::{Label, Verdict, WorkerQualityEstimator};
use remp_json::Json;
use remp_kb::{EntityId, Kb};

use crate::client::{ClientError, ServeClient};
use crate::engine::CrowdPolicy;
use crate::wire::SubmittedRecord;

/// Worker-pool shape for a simulated wire crowd.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrowdParams {
    /// Pool size.
    pub workers: usize,
    /// Lower quality bound.
    pub min_quality: f64,
    /// Upper quality bound.
    pub max_quality: f64,
    /// Distinct workers answering each question.
    pub per_question: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CrowdParams {
    /// The paper-style default pool (100 workers, qualities in
    /// [0.8, 0.99], 5 answers per question).
    pub fn paper_default(seed: u64) -> CrowdParams {
        CrowdParams { workers: 100, min_quality: 0.8, max_quality: 0.99, per_question: 5, seed }
    }
}

/// A pool of named simulated workers answering by their hidden true
/// quality. Deterministic under its seed.
#[derive(Clone, Debug)]
pub struct WireCrowd {
    qualities: Vec<f64>,
    per_question: usize,
    rng: StdRng,
}

impl WireCrowd {
    /// Creates the pool.
    ///
    /// # Panics
    ///
    /// On the same degenerate inputs `SimulatedCrowd` rejects, plus
    /// `workers < per_question` (distinct workers must exist).
    pub fn new(params: &CrowdParams) -> WireCrowd {
        assert!(params.workers > 0, "a crowd needs at least one worker");
        assert!(params.per_question > 0, "each question needs at least one answer");
        assert!(
            params.workers >= params.per_question,
            "{} workers cannot give {} distinct answers per question",
            params.workers,
            params.per_question
        );
        assert!(
            (0.0..=1.0).contains(&params.min_quality)
                && (0.0..=1.0).contains(&params.max_quality)
                && params.min_quality <= params.max_quality,
            "worker qualities are probabilities; got [{}, {}]",
            params.min_quality,
            params.max_quality
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let qualities = (0..params.workers)
            .map(|_| rng.gen_range(params.min_quality..=params.max_quality))
            .collect();
        WireCrowd { qualities, per_question: params.per_question, rng }
    }

    /// Draws the answers for one question with hidden truth `truth`:
    /// `per_question` distinct workers, each answering correctly with
    /// their hidden quality.
    pub fn answers(&mut self, truth: bool) -> Vec<(String, bool)> {
        let mut chosen: Vec<usize> = Vec::with_capacity(self.per_question);
        let mut out = Vec::with_capacity(self.per_question);
        while out.len() < self.per_question {
            let idx = self.rng.gen_range(0..self.qualities.len());
            if chosen.contains(&idx) {
                continue;
            }
            chosen.push(idx);
            let correct = self.rng.gen_bool(self.qualities[idx]);
            out.push((format!("w{idx}"), if correct { truth } else { !truth }));
        }
        out
    }
}

/// Runs a campaign **in process** — no server, no HTTP — feeding the
/// exact worker stream a [`drive`] run would feed through the wire:
/// answers in crowd order, labels carrying the online quality estimates,
/// workers re-scored against each decisive verdict.
///
/// This is the ground truth the server is measured against.
pub fn reference_outcome(
    kb1: &Kb,
    kb2: &Kb,
    config: &RempConfig,
    policy: &CrowdPolicy,
    params: &CrowdParams,
    truth: &dyn Fn(EntityId, EntityId) -> bool,
) -> Result<(RempOutcome, Vec<SubmittedRecord>), RempError> {
    assert_eq!(
        policy.per_question, params.per_question,
        "policy and crowd must agree on answers per question"
    );
    let mut crowd = WireCrowd::new(params);
    let mut estimator = WorkerQualityEstimator::new(policy.qualification, policy.quality_weight);
    let mut session: RempSession<'_> = Remp::new(config.clone()).begin(kb1, kb2)?;
    let mut log = Vec::new();
    while let Some(batch) = session.next_batch()? {
        for q in &batch.questions {
            let answers = crowd.answers(truth(q.pair.0, q.pair.1));
            let labels: Vec<Label> =
                answers.iter().map(|(w, says)| Label::new(estimator.estimate(w), *says)).collect();
            let outcome = session.submit(q.id, labels)?;
            if outcome.verdict != Verdict::Inconsistent {
                let verdict_truth = outcome.verdict == Verdict::Match;
                for (w, says) in &answers {
                    estimator.score(w, *says == verdict_truth);
                }
            }
            log.push(SubmittedRecord { question: q.id.0, pair: q.pair, verdict: outcome.verdict });
        }
    }
    Ok((session.finish(), log))
}

/// One fully labeled question, as reported by [`drive_n`].
#[derive(Clone, Debug, PartialEq)]
pub struct DrivenQuestion {
    /// The question id.
    pub question: QuestionId,
    /// Verdict the server inferred.
    pub verdict: String,
}

/// Drives a campaign over HTTP until it completes or `limit` more
/// questions have been submitted. Returns the questions submitted by
/// this call, in order.
///
/// The crowd keeps its RNG state across calls, so a partial drive, a
/// server restart and a second drive call together replay exactly the
/// stream one uninterrupted run would have produced.
pub fn drive_n(
    client: &ServeClient,
    campaign: &str,
    crowd: &mut WireCrowd,
    truth: &dyn Fn(EntityId, EntityId) -> bool,
    limit: Option<usize>,
) -> Result<Vec<DrivenQuestion>, ClientError> {
    let proto = |msg: String| ClientError::Protocol(msg);
    let status = client.get(&format!("/campaigns/{campaign}"))?;
    let per_question = status
        .get("per_question")
        .and_then(Json::as_usize)
        .ok_or_else(|| proto("status without per_question".into()))?;
    if per_question != crowd.per_question {
        return Err(proto(format!(
            "campaign wants {per_question} answers per question but the crowd draws {}",
            crowd.per_question
        )));
    }

    let mut driven = Vec::new();
    loop {
        if limit.is_some_and(|n| driven.len() >= n) {
            return Ok(driven);
        }
        let open = client.get(&format!("/campaigns/{campaign}/questions"))?;
        let questions = open
            .get("questions")
            .and_then(Json::as_array)
            .ok_or_else(|| proto("questions response without array".into()))?;
        let Some(next_doc) = questions.first() else {
            let status = client.get(&format!("/campaigns/{campaign}"))?;
            if status.get("complete").and_then(Json::as_bool) == Some(true) {
                return Ok(driven);
            }
            return Err(proto("campaign is not complete but has no open questions".into()));
        };
        let field_u32 = |doc: &Json, key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| proto(format!("question without numeric '{key}'")))
        };
        let expected_id = next_doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| proto("question without id".into()))?
            .to_owned();
        let pair = (EntityId(field_u32(next_doc, "u1")?), EntityId(field_u32(next_doc, "u2")?));

        let mut verdict = None;
        for (worker, says_match) in crowd.answers(truth(pair.0, pair.1)) {
            let assignment = client.get(&format!("/campaigns/{campaign}/next?worker={worker}"))?;
            let assigned = assignment
                .get("assignment")
                .filter(|a| !matches!(a, Json::Null))
                .and_then(|a| a.get("id"))
                .and_then(Json::as_str)
                .ok_or_else(|| proto(format!("no assignment for worker {worker}")))?;
            if assigned != expected_id {
                return Err(proto(format!(
                    "server assigned {assigned} to {worker}, expected {expected_id}"
                )));
            }
            let ack = client.post(
                &format!("/campaigns/{campaign}/answers"),
                &Json::Obj(vec![
                    ("worker".into(), Json::from(worker.as_str())),
                    ("question".into(), Json::from(expected_id.as_str())),
                    ("says_match".into(), Json::from(says_match)),
                ]),
            )?;
            if let Some(submitted) = ack.get("submitted").filter(|s| !matches!(s, Json::Null)) {
                verdict = submitted.get("verdict").and_then(Json::as_str).map(str::to_owned);
            }
        }
        let verdict =
            verdict.ok_or_else(|| proto(format!("{expected_id} never reached redundancy")))?;
        let question = expected_id
            .parse::<QuestionId>()
            .map_err(|e| proto(format!("bad question id on the wire: {e}")))?;
        driven.push(DrivenQuestion { question, verdict });
    }
}

/// Drives a campaign over HTTP to completion.
pub fn drive(
    client: &ServeClient,
    campaign: &str,
    crowd: &mut WireCrowd,
    truth: &dyn Fn(EntityId, EntityId) -> bool,
) -> Result<Vec<DrivenQuestion>, ClientError> {
    drive_n(client, campaign, crowd, truth, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_datasets::{generate, tiny};

    #[test]
    fn wire_crowd_is_deterministic_and_distinct() {
        let params = CrowdParams { workers: 6, per_question: 4, ..CrowdParams::paper_default(9) };
        let run = |seed| {
            let mut crowd = WireCrowd::new(&CrowdParams { seed, ..params });
            (0..20).flat_map(|i| crowd.answers(i % 2 == 0)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        let mut crowd = WireCrowd::new(&params);
        for i in 0..50 {
            let answers = crowd.answers(i % 3 == 0);
            let mut names: Vec<&String> = answers.iter().map(|(w, _)| w).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), 4, "workers must be distinct per question");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pool_smaller_than_redundancy_is_rejected() {
        let _ = WireCrowd::new(&CrowdParams {
            workers: 3,
            per_question: 5,
            ..CrowdParams::paper_default(0)
        });
    }

    #[test]
    fn reference_outcome_is_reproducible() {
        let d = generate(&tiny(1.0));
        let params = CrowdParams { per_question: 3, ..CrowdParams::paper_default(7) };
        let policy = CrowdPolicy { per_question: 3, ..CrowdPolicy::default() };
        let config = RempConfig::default();
        let run = || {
            reference_outcome(&d.kb1, &d.kb2, &config, &policy, &params, &|a, b| d.is_match(a, b))
                .unwrap()
        };
        let (o1, log1) = run();
        let (o2, log2) = run();
        assert_eq!(o1, o2);
        assert_eq!(log1, log2);
        assert!(o1.questions_asked > 0);
        assert_eq!(log1.len(), o1.questions_asked);
    }
}
