//! `remp-serve` — the dependency-free crowd-labeling HTTP server.
//!
//! The paper's deployment posts pairwise questions to MTurk and folds
//! the answers back through truth inference (Eq. 17) and relational
//! match propagation (Eq. 11). [`RempSession`](remp_core::RempSession)
//! already inverts the loop for exactly this; `remp-serve` puts a
//! network in the middle: the `rempd` binary hosts **multiple
//! concurrent campaigns**, hands questions to registered workers under
//! expiring leases, aggregates redundant labels, estimates worker
//! quality online, and survives restarts through durable per-campaign
//! state files — the HIT-management layer of crowdsourced ER (CrowdER,
//! Wang et al. 2012/2013), rebuilt on the session API.
//!
//! Layers, bottom to top:
//!
//! * [`clock`] — injectable lease time: [`clock::SystemClock`] in
//!   production, [`clock::ManualClock`] for tests and the `remp-sim`
//!   simulator.
//! * [`http`] — a strict, panic-free HTTP/1.1 subset on `std` sockets.
//! * [`wire`] — the JSON protocol: typed [`wire::ServeError`]s (every
//!   malformed input is a 4xx, duplicate submits are 409), request
//!   accessors and response encoders. Documented in `PROTOCOL.md`.
//! * [`engine`] — per-campaign assignment/aggregation:
//!   [`engine::CampaignEngine`] leases each open question to
//!   `per_question` distinct workers, expires and re-issues abandoned
//!   leases, and submits to the session with online quality estimates
//!   ([`remp_crowd::WorkerQualityEstimator`]).
//! * [`registry`] — one actor thread per campaign (the session borrows
//!   its KBs, so the actor owns both), plus durable
//!   `{id}.campaign.json` state files and the per-campaign answer
//!   [`wal`] (every accepted answer is fsynced before its 2xx; restart
//!   replays the WAL over the last checkpoint).
//! * [`router`] — the route table: method + path template → handler,
//!   declared as data.
//! * [`scale`] — the `/scale` routes: `rempd` as the coordinator of a
//!   sharded [`remp_scale`] campaign (lease-based shard assignment to
//!   `rempctl shard-worker` processes, result merge).
//! * [`server`] — the `poll`-based keep-alive readiness loop, the
//!   long-poll dispatcher and the handler pool (sized by
//!   [`remp_par::Parallelism`]).
//! * [`client`] / [`sim`] — the HTTP client, the named-worker
//!   [`sim::WireCrowd`], the in-process [`sim::reference_outcome`] and
//!   the [`sim::drive`] loop that proves an HTTP campaign bit-identical
//!   to the in-process session run.
//!
//! ```no_run
//! use std::sync::atomic::AtomicBool;
//! use remp_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig::default())?;
//! println!("rempd listening on {}", server.local_addr());
//! static STOP: AtomicBool = AtomicBool::new(false);
//! server.run(&STOP)?; // blocks; checkpoints campaigns on stop
//! # Ok::<(), remp_serve::ServeError>(())
//! ```

pub mod client;
pub mod clock;
pub mod engine;
pub mod http;
pub mod registry;
pub mod router;
pub mod scale;
pub mod server;
pub mod sim;
pub mod wal;
pub mod wire;

pub use client::{ClientError, ServeClient};
pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{Assignment, CampaignEngine, CrowdPolicy, LeaseCounters, LeaseStats};
pub use registry::{CampaignNotifier, CampaignRequest, CampaignSource, CampaignSpec, Registry};
pub use scale::ScaleJobs;
pub use server::{install_signal_handlers, signal_stop_flag, Server, ServerConfig};
pub use sim::{drive, drive_n, reference_outcome, CrowdParams, WireCrowd};
pub use wire::{outcome_matches, ServeError, SubmittedRecord};
