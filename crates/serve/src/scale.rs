//! The `/scale` routes: `rempd` as the coordinator of a sharded
//! campaign (see `crates/scale/SHARDING.md`).
//!
//! A *scale job* wraps one [`Coordinator`] — a pure lease state machine
//! over a campaign directory written by
//! [`remp_scale::write_campaign`]. The server contributes exactly what
//! the state machine abstracts away: a clock (the registry's injected
//! [`crate::clock::Clock`], so lease expiry is testable on virtual
//! time) and the HTTP surface `rempctl shard-worker` polls. All shard
//! *data* stays on the filesystem — workers read `.rshard` files
//! directly and ship only the small [`ShardResult`] JSON back, so the
//! coordinator's memory stays O(shards) no matter how many entities the
//! campaign covers.
//!
//! | route | body | answer |
//! |---|---|---|
//! | `POST /scale/jobs` | `{dir, lease_ms?}` | `201` job status |
//! | `GET /scale/jobs` | — | all job statuses |
//! | `GET /scale/jobs/{job}` | — | job status |
//! | `POST /scale/jobs/{job}/next` | `{worker}` | `{shard, path}` or `{shard: null, done}` |
//! | `POST /scale/jobs/{job}/heartbeat` | `{worker, shard}` | `{ok}` |
//! | `POST /scale/jobs/{job}/result` | a `ShardResult` | `{accepted, done}` |
//! | `GET /scale/jobs/{job}/outcome` | — | merged outcome, `409` until done |

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use remp_json::Json;
use remp_scale::{Coordinator, ShardResult, DEFAULT_LEASE_MS};

use crate::wire::ServeError;

/// The server's open scale jobs, keyed by job id (`s0`, `s1`, ...).
#[derive(Default)]
pub struct ScaleJobs {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    jobs: BTreeMap<String, Coordinator>,
}

/// One job's status document.
fn job_doc(id: &str, coordinator: &Coordinator) -> Json {
    let s = coordinator.status();
    Json::Obj(vec![
        ("job".into(), Json::from(id)),
        ("campaign".into(), Json::from(coordinator.campaign())),
        ("dir".into(), Json::from(coordinator.dir().display().to_string())),
        ("pending".into(), Json::from(s.pending)),
        ("leased".into(), Json::from(s.leased)),
        ("done".into(), Json::from(s.done)),
        ("total".into(), Json::from(s.total)),
        ("complete".into(), Json::from(coordinator.done())),
    ])
}

impl ScaleJobs {
    /// Opens the campaign in `dir` as a new job. `lease_ms = None`
    /// takes [`DEFAULT_LEASE_MS`].
    pub fn create(&self, dir: &str, lease_ms: Option<u64>) -> Result<(u16, Json), ServeError> {
        let coordinator = Coordinator::open(Path::new(dir), lease_ms.unwrap_or(DEFAULT_LEASE_MS))
            .map_err(|e| ServeError::bad_request("bad_campaign", e.to_string()))?;
        let mut inner = self.inner.lock().expect("scale jobs poisoned");
        let id = format!("s{}", inner.next_id);
        inner.next_id += 1;
        let doc = job_doc(&id, &coordinator);
        inner.jobs.insert(id, coordinator);
        Ok((201, doc))
    }

    /// Status documents of every open job.
    pub fn list(&self) -> (u16, Json) {
        let inner = self.inner.lock().expect("scale jobs poisoned");
        let jobs = inner.jobs.iter().map(|(id, c)| job_doc(id, c)).collect();
        (200, Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]))
    }

    /// One job's status.
    pub fn status(&self, job: &str) -> Result<(u16, Json), ServeError> {
        let inner = self.inner.lock().expect("scale jobs poisoned");
        let coordinator = get(&inner, job)?;
        Ok((200, job_doc(job, coordinator)))
    }

    /// Leases the next pending shard to `worker`. `shard` is null when
    /// nothing is pending; `done` then distinguishes "campaign
    /// finished" from "wait and poll again".
    pub fn next(&self, job: &str, worker: &str, now_ms: u64) -> Result<(u16, Json), ServeError> {
        let mut inner = self.inner.lock().expect("scale jobs poisoned");
        let coordinator = get_mut(&mut inner, job)?;
        let doc = match coordinator.next(worker, now_ms) {
            Some((shard, path)) => Json::Obj(vec![
                ("shard".into(), Json::from(u64::from(shard))),
                ("path".into(), Json::from(path.display().to_string())),
                ("done".into(), Json::from(false)),
            ]),
            None => Json::Obj(vec![
                ("shard".into(), Json::Null),
                ("done".into(), Json::from(coordinator.done())),
            ]),
        };
        Ok((200, doc))
    }

    /// Extends `worker`'s lease on `shard`; `ok: false` means the lease
    /// was lost (expired and possibly reassigned).
    pub fn heartbeat(
        &self,
        job: &str,
        worker: &str,
        shard: u32,
        now_ms: u64,
    ) -> Result<(u16, Json), ServeError> {
        let mut inner = self.inner.lock().expect("scale jobs poisoned");
        let coordinator = get_mut(&mut inner, job)?;
        let ok = coordinator.heartbeat(worker, shard, now_ms);
        Ok((200, Json::Obj(vec![("ok".into(), Json::from(ok))])))
    }

    /// Accepts a [`ShardResult`] document. Duplicates are acknowledged
    /// with `accepted: false` (accept-first — see the coordinator docs).
    pub fn result(&self, job: &str, doc: &Json) -> Result<(u16, Json), ServeError> {
        let result =
            ShardResult::from_json(doc).map_err(|e| ServeError::bad_request("bad_result", e))?;
        let mut inner = self.inner.lock().expect("scale jobs poisoned");
        let coordinator = get_mut(&mut inner, job)?;
        let accepted =
            coordinator.submit(result).map_err(|e| ServeError::bad_request("bad_result", e))?;
        Ok((
            200,
            Json::Obj(vec![
                ("accepted".into(), Json::from(accepted)),
                ("done".into(), Json::from(coordinator.done())),
            ]),
        ))
    }

    /// The merged campaign outcome; `409` while shards are outstanding.
    pub fn outcome(&self, job: &str) -> Result<(u16, Json), ServeError> {
        let inner = self.inner.lock().expect("scale jobs poisoned");
        let coordinator = get(&inner, job)?;
        match coordinator.merged() {
            Some(merged) => Ok((200, merged.to_json())),
            None => Err(ServeError::conflict(
                "not_done",
                format!("job {job:?} still has unfinished shards"),
            )),
        }
    }
}

fn get<'a>(inner: &'a Inner, job: &str) -> Result<&'a Coordinator, ServeError> {
    inner
        .jobs
        .get(job)
        .ok_or_else(|| ServeError::not_found("unknown_job", format!("no scale job {job:?}")))
}

fn get_mut<'a>(inner: &'a mut Inner, job: &str) -> Result<&'a mut Coordinator, ServeError> {
    inner
        .jobs
        .get_mut(job)
        .ok_or_else(|| ServeError::not_found("unknown_job", format!("no scale job {job:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::RempConfig;
    use remp_datasets::{generate, tiny};
    use remp_ingest::LoadedKb;
    use remp_scale::{run_sharded_local, write_campaign, CrowdSpec, MergedOutcome, PlanMode};

    fn campaign_dir(tag: &str) -> std::path::PathBuf {
        let d = generate(&tiny(1.0));
        let dir = std::env::temp_dir().join(format!("remp-serve-scale-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let kb1 = LoadedKb {
            kb: d.kb1.clone(),
            external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
        };
        let kb2 = LoadedKb {
            kb: d.kb2.clone(),
            external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
        };
        write_campaign(
            &dir,
            tag,
            &kb1,
            &kb2,
            &d.gold,
            &RempConfig::default(),
            &CrowdSpec::Oracle,
            7,
            &PlanMode::Full,
            2,
        )
        .unwrap();
        dir
    }

    #[test]
    fn a_job_runs_to_the_same_outcome_as_the_local_runner() {
        let dir = campaign_dir("job");
        let reference = run_sharded_local(&dir).unwrap();

        let jobs = ScaleJobs::default();
        let (status, doc) = jobs.create(&dir.display().to_string(), None).unwrap();
        assert_eq!(status, 201);
        let job = doc.get("job").and_then(Json::as_str).unwrap().to_owned();
        let total = doc.get("total").and_then(Json::as_usize).unwrap();
        assert!(total >= 2);

        // Outcome before completion is a conflict, not an answer.
        assert_eq!(jobs.outcome(&job).unwrap_err().status, 409);

        loop {
            let (_, next) = jobs.next(&job, "w1", 0).unwrap();
            let Some(shard) = next.get("shard").and_then(Json::as_u64) else {
                assert!(next.get("done").and_then(Json::as_bool).unwrap());
                break;
            };
            let path = next.get("path").and_then(Json::as_str).unwrap();
            assert!(jobs.heartbeat(&job, "w1", shard as u32, 1).unwrap().1.get("ok").is_some());
            let result = remp_scale::process_shard(Path::new(path)).unwrap();
            let (_, ack) = jobs.result(&job, &result.to_json()).unwrap();
            assert!(ack.get("accepted").and_then(Json::as_bool).unwrap());
            // A duplicate is acknowledged, not an error.
            let (_, dup) = jobs.result(&job, &result.to_json()).unwrap();
            assert!(!dup.get("accepted").and_then(Json::as_bool).unwrap());
        }

        let (_, outcome) = jobs.outcome(&job).unwrap();
        let merged = MergedOutcome::from_json(&outcome).unwrap();
        assert_eq!(merged, reference, "coordinator path must equal run_sharded_local");
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let jobs = ScaleJobs::default();
        assert_eq!(jobs.create("/nonexistent/campaign", None).unwrap_err().status, 400);
        assert_eq!(jobs.status("s0").unwrap_err().status, 404);
        assert_eq!(jobs.next("s0", "w", 0).unwrap_err().status, 404);
        let dir = campaign_dir("bad");
        let (_, doc) = jobs.create(&dir.display().to_string(), Some(1000)).unwrap();
        let job = doc.get("job").and_then(Json::as_str).unwrap().to_owned();
        assert_eq!(jobs.result(&job, &Json::Obj(vec![])).unwrap_err().status, 400);
    }
}
