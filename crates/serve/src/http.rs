//! A minimal, strict HTTP/1.1 layer on `std::io` — just enough protocol
//! for the campaign API, with hard limits instead of panics.
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive): a
//! request carries a [`Request::close`] flag decoded from its
//! `Connection` header (and the HTTP/1.0 default), and the response
//! writer echoes the matching `connection:` header so both sides agree
//! on reuse. Requests are parsed defensively — an oversized line, a
//! missing `Content-Length`, a stray control byte all become a typed
//! [`HttpError`] that the server maps to a 4xx response; nothing in this
//! module can panic on wire input.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most header lines accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (campaign creation bodies are
/// a few hundred bytes; this is pure headroom).
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be parsed (maps to a 4xx).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The connection died mid-request.
    Io(String),
    /// The request violates the supported HTTP subset.
    Malformed(String),
    /// A line or the body exceeds the fixed limits.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(msg) => write!(f, "i/o error: {msg}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(msg) => write!(f, "request too large: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request: method, decoded path segments and query pairs, and
/// the raw body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// The path, percent-decoded, always starting with `/`.
    pub path: String,
    /// Decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection must close after this request
    /// (`Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether the caller asked for indented JSON (`?pretty=1`).
    pub fn wants_pretty(&self) -> bool {
        matches!(self.query_value("pretty"), Some("1") | Some("true"))
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// the connection cleanly before sending anything.
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Option<Request>, HttpError> {
    let line = match read_line(stream)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }

    let mut content_length: usize = 0;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut close = version == "HTTP/1.0";
    for _ in 0..MAX_HEADERS {
        let header = read_line(stream)?
            .ok_or_else(|| HttpError::Io("connection closed inside headers".into()))?;
        if header.is_empty() {
            let body = read_body(stream, content_length)?;
            return parse_target(method, target, body, close).map(Some);
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("header without colon: {header:?}")));
        };
        if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        }
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
            if n > MAX_BODY {
                return Err(HttpError::TooLarge(format!("body of {n} bytes (max {MAX_BODY})")));
            }
            content_length = n;
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("chunked bodies are not supported".into()));
        }
    }
    Err(HttpError::TooLarge(format!("more than {MAX_HEADERS} header lines")))
}

fn read_body<R: BufRead>(stream: &mut R, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    if len > 0 {
        io::Read::read_exact(stream, &mut body)
            .map_err(|e| HttpError::Io(format!("reading body: {e}")))?;
    }
    Ok(body)
}

/// Reads one CRLF- (or LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(stream: &mut R) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1];
    loop {
        match io::Read::read(stream, &mut chunk) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Io("connection closed mid-line".into()));
            }
            Ok(_) => {
                if chunk[0] == b'\n' {
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    let text = String::from_utf8(raw)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))?;
                    return Ok(Some(text));
                }
                raw.push(chunk[0]);
                if raw.len() > MAX_LINE {
                    return Err(HttpError::TooLarge(format!("line beyond {MAX_LINE} bytes")));
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

fn parse_target(
    method: &str,
    target: &str,
    body: Vec<u8>,
    close: bool,
) -> Result<Request, HttpError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(HttpError::Malformed(format!("path {raw_path:?} must start with '/'")));
    }
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok(Request { method: method.to_owned(), path, query, body, close })
}

/// Decodes `%XX` escapes and `+`-as-space; rejects truncated escapes and
/// embedded NULs rather than guessing.
fn percent_decode(raw: &str) -> Result<String, HttpError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| {
                        HttpError::Malformed(format!("bad percent escape in {raw:?}"))
                    })?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    if out.contains(&0) {
        return Err(HttpError::Malformed("NUL byte in request target".into()));
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::Malformed(format!("non-UTF-8 request target {raw:?}")))
}

/// Standard reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. `keep_alive` decides
/// the `connection:` header — echo the request's [`Request::close`]
/// negation so both sides agree on reuse.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — `/metrics`
/// answers Prometheus text exposition, not JSON.
pub fn write_response_typed<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /campaigns/c0/next?worker=w%201&pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/campaigns/c0/next");
        assert_eq!(req.query_value("worker"), Some("w 1"));
        assert!(req.wants_pretty());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /campaigns HTTP/1.1\r\nContent-Length: 7\r\nHost: x\r\n\r\n{\"a\":1}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (raw, what) in [
            ("BLAH\r\n\r\n", "one-token request line"),
            ("GET /x HTTP/2.0\r\n\r\n", "unsupported version"),
            ("GET x HTTP/1.1\r\n\r\n", "relative path"),
            ("GET /x HTTP/1.1\r\nbadheader\r\n\r\n", "colonless header"),
            ("GET /%zz HTTP/1.1\r\n\r\n", "bad escape"),
            ("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n", "non-numeric length"),
            ("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "chunked"),
        ] {
            assert!(parse(raw).is_err(), "{what}: {raw:?} should fail to parse");
        }
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(matches!(parse(&long), Err(HttpError::TooLarge(_))));
        let big = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(&big), Err(HttpError::TooLarge(_))));
        let many = format!("GET /x HTTP/1.1\r\n{}\r\n", "h: v\r\n".repeat(MAX_HEADERS + 1));
        assert!(matches!(parse(&many), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::Io(_))));
    }

    #[test]
    fn responses_have_the_right_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 409, "{\"error\":{}}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 409 Conflict\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"error\":{}}"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn connection_reuse_follows_version_and_header() {
        for (raw, close, what) in [
            ("GET /x HTTP/1.1\r\n\r\n", false, "1.1 defaults to keep-alive"),
            ("GET /x HTTP/1.0\r\n\r\n", true, "1.0 defaults to close"),
            ("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", true, "explicit close"),
            ("GET /x HTTP/1.1\r\nCONNECTION: Close\r\n\r\n", true, "case-insensitive close"),
            ("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", false, "1.0 opt-in"),
        ] {
            let req = parse(raw).unwrap().unwrap();
            assert_eq!(req.close, close, "{what}: {raw:?}");
        }
    }

    #[test]
    fn requests_on_one_connection_parse_back_to_back() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut stream = BufReader::new(raw.as_bytes());
        let a = read_request(&mut stream).unwrap().unwrap();
        let b = read_request(&mut stream).unwrap().unwrap();
        let c = read_request(&mut stream).unwrap().unwrap();
        assert_eq!((a.path.as_str(), a.close), ("/a", false));
        assert_eq!((b.path.as_str(), b.body.as_slice()), ("/b", &b"hi"[..]));
        assert_eq!((c.path.as_str(), c.close), ("/c", true));
        assert_eq!(read_request(&mut stream).unwrap(), None);
    }
}
