//! The `rempd` HTTP server: a readiness-driven keep-alive engine
//! feeding a fixed handler pool (sized by [`Parallelism`]), routing
//! onto the campaign [`Registry`] through the declarative
//! [`crate::router`] table.
//!
//! Connections are HTTP/1.1 keep-alive by default and live in three
//! places, never more than one at a time:
//!
//! * **parked** — idle sockets wait in the readiness backend: on Linux
//!   a shared level-triggered `EPOLLONESHOT` set the handler threads
//!   `epoll_wait` on directly (a readable socket wakes exactly one
//!   handler, with no dispatch thread on the hot path); on other Unixes
//!   a `poll(2)` loop that feeds a handler queue. Either way a silent
//!   client costs one fd, never a handler thread, and sockets idle
//!   beyond [`ServerConfig::keepalive_timeout`] are reaped.
//! * **a handler** — reads exactly one request (bounded by
//!   [`ServerConfig::read_timeout`]), answers it, drains any pipelined
//!   requests already buffered, and re-parks the socket.
//! * **the long-poll dispatcher** — `GET /campaigns/{id}/next` with
//!   `wait_ms` parks here when no question is assignable; the campaign
//!   actors bump a [`crate::registry::CampaignNotifier`] epoch on every
//!   accepted answer, pause and resume, and the dispatcher re-polls the
//!   parked workers until a question frees up or the wait expires.
//!
//! The thread that called [`Server::run`] owns the listener: it
//! accepts, tunes and parks new sockets (into the idle set, not a
//! handler — only a *readable* socket may cost a handler thread) and
//! runs the idle reaper.
//!
//! Every handler is panic-isolated per connection by construction: all
//! wire input flows through the typed parsers in [`crate::http`] and
//! [`crate::wire`], so a malformed request becomes a 4xx response, and
//! campaign work happens on actor threads that only ever see typed
//! requests. Shutdown is cooperative — flip the stop flag (SIGTERM does
//! this in `rempd`), and [`Server::run`] drains the pool, answers the
//! parked long-polls, checkpoints every campaign to the state directory
//! and joins the actors before returning.
//!
//! Off Unix there is no readiness binding; a fallback accept loop
//! serves keep-alive connections directly on the handler threads (an
//! idle client then holds a handler for up to the read timeout).

#[cfg(not(target_os = "linux"))]
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
#[cfg(not(target_os = "linux"))]
use std::sync::Condvar;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use remp_json::Json;
use remp_par::Parallelism;

use crate::clock::{Clock, SystemClock};
use crate::http::{read_request, write_response, write_response_typed, HttpError};
use crate::registry::{CampaignNotifier, CampaignRequest, Registry};
use crate::router::{self, Action, Ctx, Resolution};
use crate::wire::ServeError;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Durable campaign state directory; `None` disables durability.
    pub state_dir: Option<PathBuf>,
    /// Handler-pool sizing policy.
    pub parallelism: Parallelism,
    /// Lease clock; the default [`SystemClock`] is right for production,
    /// a [`crate::clock::ManualClock`] lets tests and the simulator
    /// drive lease expiry on virtual time.
    pub clock: Arc<dyn Clock>,
    /// How long an idle keep-alive connection may sit in the readiness
    /// loop before it is closed.
    pub keepalive_timeout: Duration,
    /// How long a handler will wait on a socket mid-request before
    /// giving up on the client.
    pub read_timeout: Duration,
    /// Most sockets held open at once; the listener stops accepting
    /// (backpressure, not errors) while at the cap.
    pub max_connections: usize,
    /// Upper bound on the `wait_ms` a long-poll may request.
    pub max_wait_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            state_dir: None,
            parallelism: Parallelism::Auto,
            clock: Arc::new(SystemClock),
            keepalive_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            max_connections: 4096,
            max_wait_ms: 30_000,
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    pool_size: usize,
    stats: ServeStats,
    keepalive_timeout: Duration,
    read_timeout: Duration,
    max_connections: usize,
    max_wait_ms: u64,
}

impl Server {
    /// Binds the listener and opens the registry (resuming any
    /// campaigns checkpointed in the state directory).
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let registry = Arc::new(Registry::open_with_clock(
            config.state_dir.clone(),
            Arc::clone(&config.clock),
        )?);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::internal("bind", format!("{}: {e}", config.addr)))?;
        // std listens with a backlog of 128; a connection storm (a
        // worker fleet arriving at once, or one-shot clients) overflows
        // that and every dropped SYN costs the client a ~1 s
        // retransmit. Re-listen with a queue sized to the connection
        // cap — legal on an already-listening socket; the kernel still
        // clamps to net.core.somaxconn.
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            extern "C" {
                fn listen(fd: i32, backlog: i32) -> i32;
            }
            let backlog = i32::try_from(config.max_connections).unwrap_or(i32::MAX).max(128);
            let _ = unsafe { listen(listener.as_raw_fd(), backlog) };
        }
        // At least two handlers so one slow campaign request can never
        // starve /healthz.
        let pool_size = config.parallelism.threads().max(2);
        Ok(Server {
            listener,
            registry,
            pool_size,
            // Registered at bind so a scrape sees every serving family
            // before the first request arrives.
            stats: ServeStats::new(),
            keepalive_timeout: config.keepalive_timeout,
            read_timeout: config.read_timeout,
            max_connections: config.max_connections.max(8),
            max_wait_ms: config.max_wait_ms,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The campaign registry (for in-process setup in tests/examples).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serves until `stop` becomes true, then drains the pool, answers
    /// the parked long-polls, checkpoints every campaign and joins the
    /// actors. Returns the number of campaigns checkpointed.
    pub fn run(self, stop: &AtomicBool) -> Result<usize, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::internal("bind", e.to_string()))?;
        #[cfg(not(target_os = "linux"))]
        let queue: JobQueue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let done = Arc::new(AtomicBool::new(false));
        let dispatcher = Arc::new(Dispatcher::new(self.registry.notifier()));

        // Where handlers and the dispatcher put a keep-alive socket once
        // they are finished with it. On Linux the socket re-arms itself
        // in the shared epoll set with one `epoll_ctl` — no readiness-
        // loop round-trip on the hot path.
        #[cfg(target_os = "linux")]
        let (sink, table): (ConnSink, Arc<IdleTable>) = {
            let table = Arc::new(
                IdleTable::new()
                    .map_err(|e| ServeError::internal("spawn", format!("epoll: {e}")))?,
            );
            let give_back = Arc::clone(&table);
            let stats = self.stats.clone();
            let sink: ConnSink = Arc::new(move |conn| {
                if !give_back.park(conn) {
                    stats.conn_closed();
                }
            });
            (sink, table)
        };
        #[cfg(all(unix, not(target_os = "linux")))]
        let (sink, returned, wake_rx): (ConnSink, Arc<Mutex<Vec<Conn>>>, _) = {
            let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair()
                .map_err(|e| ServeError::internal("spawn", format!("wake pipe: {e}")))?;
            wake_rx
                .set_nonblocking(true)
                .map_err(|e| ServeError::internal("spawn", format!("wake pipe: {e}")))?;
            wake_tx
                .set_nonblocking(true)
                .map_err(|e| ServeError::internal("spawn", format!("wake pipe: {e}")))?;
            let returned: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
            let give_back = Arc::clone(&returned);
            let sink: ConnSink = Arc::new(move |conn| {
                give_back.lock().expect("returned connections poisoned").push(conn);
                // A full pipe already means a wake-up is pending.
                use std::io::Write;
                let _ = (&wake_tx).write(&[1]);
            });
            (sink, returned, wake_rx)
        };
        #[cfg(not(unix))]
        let sink: ConnSink = {
            let queue = Arc::clone(&queue);
            Arc::new(move |conn| {
                let (lock, cvar) = &*queue;
                lock.lock().expect("queue poisoned").push_back(conn);
                cvar.notify_one();
            })
        };

        let mut workers = Vec::with_capacity(self.pool_size);
        for i in 0..self.pool_size {
            #[cfg(target_os = "linux")]
            let source = Arc::clone(&table);
            #[cfg(not(target_os = "linux"))]
            let source = Arc::clone(&queue);
            let done = Arc::clone(&done);
            let registry = Arc::clone(&self.registry);
            let dispatcher = Arc::clone(&dispatcher);
            let stats = self.stats.clone();
            let sink = Arc::clone(&sink);
            let max_wait_ms = self.max_wait_ms;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rempd-handler-{i}"))
                    .spawn(move || {
                        handler_worker(
                            &source,
                            &done,
                            &registry,
                            &dispatcher,
                            &stats,
                            &sink,
                            max_wait_ms,
                        )
                    })
                    .map_err(|e| ServeError::internal("spawn", e.to_string()))?,
            );
        }
        let dispatcher_join = {
            let dispatcher = Arc::clone(&dispatcher);
            let registry = Arc::clone(&self.registry);
            let stats = self.stats.clone();
            let sink = Arc::clone(&sink);
            std::thread::Builder::new()
                .name("rempd-longpoll".into())
                .spawn(move || dispatcher_loop(&dispatcher, &registry, &stats, &sink))
                .map_err(|e| ServeError::internal("spawn", e.to_string()))?
        };

        #[cfg(target_os = "linux")]
        let loop_result = self.readiness_loop_epoll(stop, &table);
        #[cfg(all(unix, not(target_os = "linux")))]
        let loop_result = self.readiness_loop(stop, &queue, &returned, &wake_rx);
        #[cfg(not(unix))]
        let loop_result = self.accept_loop_basic(stop, &queue);

        // Graceful drain: no new connections, finish the queued ones,
        // answer the parked long-polls, then persist and stop every
        // campaign.
        done.store(true, Ordering::SeqCst);
        #[cfg(not(target_os = "linux"))]
        queue.1.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        dispatcher.stop.store(true, Ordering::SeqCst);
        self.registry.notifier().notify();
        let _ = dispatcher_join.join();
        // Handlers may have parked sockets after the loop exited; close
        // the stragglers with the books balanced.
        #[cfg(target_os = "linux")]
        for _ in 0..table.drain() {
            self.stats.conn_closed();
        }
        loop_result?;
        self.registry.shutdown()
    }

    /// The Linux accept-and-reap loop. The hot path does not pass
    /// through here at all: handlers `epoll_wait` on the shared
    /// [`IdleTable`] oneshot set directly, so a readable socket wakes
    /// exactly one handler, and a finished handler re-arms the socket
    /// with one `epoll_ctl`. This thread only accepts new connections
    /// (parking them into the idle set — only a *readable* socket may
    /// cost a handler thread) and reaps sockets idle past the
    /// keep-alive timeout.
    #[cfg(target_os = "linux")]
    fn readiness_loop_epoll(&self, stop: &AtomicBool, table: &IdleTable) -> Result<(), ServeError> {
        use std::os::fd::AsRawFd;
        let epoll_err = |e: std::io::Error| ServeError::internal("accept", format!("epoll: {e}"));
        // A private epoll set for the listener: the shared one would
        // wake handler threads for it.
        let accept_ep = epoll_ffi::Epoll::new().map_err(epoll_err)?;
        let listener_fd = self.listener.as_raw_fd();
        accept_ep.add(listener_fd).map_err(epoll_err)?;
        let mut listener_armed = true;
        let mut events = [epoll_ffi::Event::zeroed(); 4];
        // Reap on a timer: scanning the idle table is O(connections).
        let reap_tick =
            (self.keepalive_timeout / 4).clamp(Duration::from_millis(25), Duration::from_secs(1));
        let mut next_reap = Instant::now() + reap_tick;
        while !stop.load(Ordering::SeqCst) {
            let accepting = self.stats.open_count() < self.max_connections;
            if accepting != listener_armed {
                if accepting { accept_ep.add(listener_fd) } else { accept_ep.del(listener_fd) }
                    .map_err(epoll_err)?;
                listener_armed = accepting;
            }
            // 50 ms bounds both stop-flag latency and reap granularity;
            // a pending connection returns immediately.
            accept_ep.wait(&mut events, 50).map_err(epoll_err)?;
            if listener_armed {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            self.setup_stream(&stream);
                            self.stats.conn_opened();
                            if !table.park(Conn { stream, served: 0 }) {
                                self.stats.conn_closed();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ServeError::internal("accept", e.to_string())),
                    }
                }
            }
            let now = Instant::now();
            if now >= next_reap {
                for _ in 0..table.reap(self.keepalive_timeout) {
                    self.stats.conn_closed();
                }
                next_reap = now + reap_tick;
            }
        }
        Ok(())
    }

    /// The portable Unix serving loop: `poll` over the listener, the
    /// wake pipe and every idle keep-alive socket; readable sockets
    /// move to the handler queue, idle ones past the keep-alive
    /// timeout are reaped. Linux uses [`Self::readiness_loop_epoll`]
    /// instead, which scales past a few hundred parked sockets.
    #[cfg(all(unix, not(target_os = "linux")))]
    fn readiness_loop(
        &self,
        stop: &AtomicBool,
        queue: &JobQueue,
        returned: &Mutex<Vec<Conn>>,
        wake_rx: &std::os::unix::net::UnixStream,
    ) -> Result<(), ServeError> {
        use std::os::fd::AsRawFd;
        let mut idle: Vec<IdleConn> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            idle.retain(|conn| {
                if now.duration_since(conn.last) > self.keepalive_timeout {
                    self.stats.conn_closed();
                    false
                } else {
                    true
                }
            });

            let accepting = self.stats.open_count() < self.max_connections;
            let mut fds = Vec::with_capacity(2 + idle.len());
            fds.push(poll_ffi::PollFd::readable(wake_rx.as_raw_fd()));
            if accepting {
                fds.push(poll_ffi::PollFd::readable(self.listener.as_raw_fd()));
            }
            let base = fds.len();
            for conn in &idle {
                fds.push(poll_ffi::PollFd::readable(conn.stream.as_raw_fd()));
            }
            // 50 ms bounds both stop-flag latency and idle-reap
            // granularity; readable sockets return immediately.
            poll_ffi::wait(&mut fds, 50)
                .map_err(|e| ServeError::internal("accept", format!("poll: {e}")))?;

            // Ready idle sockets first, while indices still line up with
            // the fd array.
            let mut kept = Vec::with_capacity(idle.len());
            for (i, conn) in idle.drain(..).enumerate() {
                if fds[base + i].revents != 0 {
                    let (lock, cvar) = &**queue;
                    lock.lock().expect("queue poisoned").push_back(conn.into_job());
                    cvar.notify_one();
                } else {
                    kept.push(conn);
                }
            }
            idle = kept;

            if fds[0].revents != 0 {
                use std::io::Read;
                let mut sponge = [0u8; 64];
                while matches!((&*wake_rx).read(&mut sponge), Ok(n) if n > 0) {}
                let mut back = returned.lock().expect("returned connections poisoned");
                for conn in back.drain(..) {
                    idle.push(IdleConn {
                        stream: conn.stream,
                        served: conn.served,
                        last: Instant::now(),
                    });
                }
            }

            if accepting && fds[1].revents != 0 {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            self.setup_stream(&stream);
                            self.stats.conn_opened();
                            // Into the idle set, not straight to a
                            // handler: only a *readable* socket may cost
                            // a handler thread.
                            idle.push(IdleConn { stream, served: 0, last: Instant::now() });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ServeError::internal("accept", e.to_string())),
                    }
                }
            }
        }
        for _ in &idle {
            self.stats.conn_closed();
        }
        Ok(())
    }

    /// The non-Unix fallback: a plain accept loop; keep-alive sockets
    /// cycle through the handler queue and block a handler while idle
    /// (bounded by the read timeout).
    #[cfg(not(unix))]
    fn accept_loop_basic(&self, stop: &AtomicBool, queue: &JobQueue) -> Result<(), ServeError> {
        while !stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.setup_stream(&stream);
                    self.stats.conn_opened();
                    let (lock, cvar) = &**queue;
                    lock.lock().expect("queue poisoned").push_back(Conn { stream, served: 0 });
                    cvar.notify_one();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::internal("accept", e.to_string())),
            }
        }
        Ok(())
    }

    fn setup_stream(&self, stream: &TcpStream) {
        // Accepted sockets may inherit the listener's non-blocking flag;
        // handlers read with a timeout instead.
        let _ = stream.set_nonblocking(false);
        // A peer that stalls mid-request should not pin a handler
        // forever.
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        // Responses are written in two small chunks; don't let Nagle
        // hold the second one hostage to a delayed ACK.
        let _ = stream.set_nodelay(true);
    }
}

/// The raw `poll(2)` binding — libc is already linked by `std`, the
/// same trick `install_signal_handlers` uses for `signal`.
#[cfg(all(unix, not(target_os = "linux")))]
mod poll_ffi {
    use std::io;

    type NfdsT = std::os::raw::c_uint;

    /// `struct pollfd` — identical layout on every supported Unix.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// `POLLIN` — 0x001 on Linux, the BSDs and macOS alike.
    pub const POLLIN: i16 = 0x001;

    impl PollFd {
        pub fn readable(fd: i32) -> PollFd {
            PollFd { fd, events: POLLIN, revents: 0 }
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// Waits for readiness on `fds`, retrying on `EINTR`. `revents` is
    /// filled in place; any non-zero value (readable, hung up, error)
    /// means the fd deserves attention.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Minimal `epoll` FFI — libc is already linked by `std`, the same
/// trick `poll_ffi` and `install_signal_handlers` use.
#[cfg(target_os = "linux")]
mod epoll_ffi {
    use std::io;

    /// `struct epoll_event`; packed on x86-64 (kernel ABI quirk),
    /// naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct Event {
        events: u32,
        data: u64,
    }

    impl Event {
        pub fn zeroed() -> Event {
            Event { events: 0, data: 0 }
        }

        /// The fd this event fired for (we store fds in `data`).
        pub fn fd(&self) -> i32 {
            self.data as i32
        }
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLLONESHOT: u32 = 1 << 30;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An owned epoll instance: level-triggered, readable-interest
    /// only. `epoll_ctl` is thread-safe, which is the whole point —
    /// handler threads re-arm finished sockets without waking the
    /// readiness loop.
    pub struct Epoll {
        epfd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        pub fn add(&self, fd: i32) -> io::Result<()> {
            let mut event = Event { events: EPOLLIN, data: fd as u32 as u64 };
            self.ctl(EPOLL_CTL_ADD, fd, &mut event)
        }

        /// Registers `fd` for one readable wakeup delivered to exactly
        /// one waiter — how parked keep-alive sockets are shared by the
        /// whole handler pool without double dispatch.
        pub fn add_oneshot(&self, fd: i32) -> io::Result<()> {
            let mut event = Event { events: EPOLLIN | EPOLLONESHOT, data: fd as u32 as u64 };
            self.ctl(EPOLL_CTL_ADD, fd, &mut event)
        }

        pub fn del(&self, fd: i32) -> io::Result<()> {
            // DEL ignores the event argument but pre-2.6.9 kernels
            // required it non-null.
            let mut event = Event::zeroed();
            self.ctl(EPOLL_CTL_DEL, fd, &mut event)
        }

        fn ctl(&self, op: i32, fd: i32, event: *mut Event) -> io::Result<()> {
            if unsafe { epoll_ctl(self.epfd, op, fd, event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits for ready fds, retrying on `EINTR`.
        pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

/// The parked-socket table at the heart of the Linux serving path: a
/// shared oneshot epoll set plus the owned sockets it watches. The
/// accept loop parks fresh connections, handlers wait on the set and
/// claim what turns readable, and a finished handler re-parks the
/// socket — one `epoll_ctl` each way, no dispatch thread in between.
#[cfg(target_os = "linux")]
struct IdleTable {
    ep: epoll_ffi::Epoll,
    idle: Mutex<std::collections::HashMap<i32, IdleConn>>,
}

#[cfg(target_os = "linux")]
impl IdleTable {
    fn new() -> std::io::Result<IdleTable> {
        Ok(IdleTable {
            ep: epoll_ffi::Epoll::new()?,
            idle: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// Parks a socket: the table owns it and the epoll set watches it.
    /// Returns false — dropping the socket — if the kernel refuses.
    fn park(&self, conn: Conn) -> bool {
        use std::os::fd::AsRawFd;
        let fd = conn.stream.as_raw_fd();
        let mut idle = self.idle.lock().expect("idle table poisoned");
        idle.insert(
            fd,
            IdleConn { stream: conn.stream, served: conn.served, last: Instant::now() },
        );
        if self.ep.add_oneshot(fd).is_err() {
            idle.remove(&fd);
            return false;
        }
        true
    }

    /// Claims a readable socket for a handler. `None` when a stale
    /// event races a socket the reaper already closed.
    fn take(&self, fd: i32) -> Option<Conn> {
        let conn = self.idle.lock().expect("idle table poisoned").remove(&fd)?;
        let _ = self.ep.del(fd);
        Some(conn.into_job())
    }

    /// Closes every socket parked longer than `timeout`; returns how
    /// many were reaped.
    fn reap(&self, timeout: Duration) -> usize {
        let now = Instant::now();
        let mut idle = self.idle.lock().expect("idle table poisoned");
        let before = idle.len();
        idle.retain(|fd, conn| {
            if now.duration_since(conn.last) > timeout {
                let _ = self.ep.del(*fd);
                false
            } else {
                true
            }
        });
        before - idle.len()
    }

    /// Closes everything still parked; returns how many there were.
    fn drain(&self) -> usize {
        let mut idle = self.idle.lock().expect("idle table poisoned");
        let drained = idle.len();
        for (fd, _conn) in idle.drain() {
            let _ = self.ep.del(fd);
        }
        drained
    }
}

/// Process-wide stop flag used by [`install_signal_handlers`].
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// The stop flag [`install_signal_handlers`] trips — pass it to
/// [`Server::run`] for a daemon that shuts down cleanly on SIGTERM.
pub fn signal_stop_flag() -> &'static AtomicBool {
    &SIGNAL_STOP
}

/// Installs SIGTERM/SIGINT handlers that trip [`signal_stop_flag`]
/// (no-op off Unix). Both `rempd` and `rempctl serve` use this.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn request_stop(_signum: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    // libc is already linked by std; SIGTERM = 15, SIGINT = 2 on every
    // Unix this builds for.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, request_stop);
        signal(2, request_stop);
    }
}

/// No-op off Unix.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// `Content-Type` of the Prometheus text exposition format `/metrics`
/// answers with.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Help text for `remp_http_connections_open` — shared with the
/// `/healthz` handler, which reads the gauge back.
pub(crate) const CONNECTIONS_OPEN_HELP: &str =
    "Open HTTP connections (accepted and not yet closed).";
/// Help text for `remp_longpoll_waiters`.
pub(crate) const LONGPOLL_WAITERS_HELP: &str =
    "Long-poll /next requests currently parked server-side.";

/// The serving-layer instruments, registered once at bind.
#[derive(Clone)]
struct ServeStats {
    open: Arc<AtomicI64>,
    connections_open: remp_obs::Gauge,
    keepalive_reuse: remp_obs::Counter,
    longpoll_waiters: remp_obs::Gauge,
}

impl ServeStats {
    fn new() -> ServeStats {
        let reg = remp_obs::global();
        ServeStats {
            open: Arc::new(AtomicI64::new(0)),
            connections_open: reg.gauge(
                remp_obs::names::HTTP_CONNECTIONS_OPEN,
                CONNECTIONS_OPEN_HELP,
                &[],
            ),
            keepalive_reuse: reg.counter(
                remp_obs::names::HTTP_KEEPALIVE_REUSE_TOTAL,
                "Requests served on an already-used keep-alive connection.",
                &[],
            ),
            longpoll_waiters: reg.gauge(
                remp_obs::names::LONGPOLL_WAITERS,
                LONGPOLL_WAITERS_HELP,
                &[],
            ),
        }
    }

    fn conn_opened(&self) {
        let n = self.open.fetch_add(1, Ordering::SeqCst) + 1;
        self.connections_open.set(n as f64);
    }

    fn conn_closed(&self) {
        let n = self.open.fetch_sub(1, Ordering::SeqCst) - 1;
        self.connections_open.set(n.max(0) as f64);
    }

    fn open_count(&self) -> usize {
        self.open.load(Ordering::SeqCst).max(0) as usize
    }

    fn waiters_set(&self, n: usize) {
        self.longpoll_waiters.set(n as f64);
    }
}

/// A socket plus how many requests it has served (for the keep-alive
/// reuse counter).
struct Conn {
    stream: TcpStream,
    served: u64,
}

/// An idle keep-alive socket owned by the readiness loop.
#[cfg(unix)]
struct IdleConn {
    stream: TcpStream,
    served: u64,
    last: Instant,
}

#[cfg(unix)]
impl IdleConn {
    fn into_job(self) -> Conn {
        Conn { stream: self.stream, served: self.served }
    }
}

#[cfg(not(target_os = "linux"))]
type JobQueue = Arc<(Mutex<VecDeque<Conn>>, Condvar)>;
type ConnSink = Arc<dyn Fn(Conn) + Send + Sync>;

/// What a handler decided to do with the socket when it finished.
enum Disposition {
    /// Closed (by request, error, or protocol).
    Close,
    /// Healthy keep-alive socket, ready for the next request.
    KeepAlive(Conn),
    /// Handed to the long-poll dispatcher; the response is still owed.
    Parked,
}

/// The Linux handler loop: wait on the shared oneshot epoll set — a
/// readable parked socket wakes exactly one handler, which claims it
/// from the table, serves it, and re-arms it via the sink. No dispatch
/// thread, no queue: the hot path is epoll_wait → read → respond →
/// epoll_ctl.
#[cfg(target_os = "linux")]
fn handler_worker(
    table: &IdleTable,
    done: &AtomicBool,
    registry: &Registry,
    dispatcher: &Dispatcher,
    stats: &ServeStats,
    sink: &ConnSink,
    max_wait_ms: u64,
) {
    let mut events = [epoll_ffi::Event::zeroed(); 16];
    while !done.load(Ordering::SeqCst) {
        // 50 ms bounds stop-flag latency; ready sockets return at once.
        let Ok(ready) = table.ep.wait(&mut events, 50) else {
            return;
        };
        for event in &events[..ready] {
            // A stale event can race a socket the reaper already took.
            let Some(conn) = table.take(event.fd()) else {
                continue;
            };
            match service_conn(conn, registry, dispatcher, stats, max_wait_ms) {
                Disposition::Close => stats.conn_closed(),
                Disposition::KeepAlive(conn) => sink(conn),
                Disposition::Parked => {}
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn handler_worker(
    queue: &JobQueue,
    done: &AtomicBool,
    registry: &Registry,
    dispatcher: &Dispatcher,
    stats: &ServeStats,
    sink: &ConnSink,
    max_wait_ms: u64,
) {
    let (lock, cvar) = &**queue;
    loop {
        let conn = {
            let mut q = lock.lock().expect("queue poisoned");
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if done.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) =
                    cvar.wait_timeout(q, Duration::from_millis(100)).expect("queue poisoned");
                q = guard;
            }
        };
        let Some(conn) = conn else {
            return;
        };
        match service_conn(conn, registry, dispatcher, stats, max_wait_ms) {
            Disposition::Close => stats.conn_closed(),
            Disposition::KeepAlive(conn) => sink(conn),
            Disposition::Parked => {}
        }
    }
}

/// Serves requests from one readable socket: at least one, plus any
/// already pipelined behind it, then yields the socket back.
fn service_conn(
    conn: Conn,
    registry: &Registry,
    dispatcher: &Dispatcher,
    stats: &ServeStats,
    max_wait_ms: u64,
) -> Disposition {
    let Conn { stream, mut served } = conn;
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return Disposition::Close,
    };
    let mut writer = stream;
    loop {
        let started = Instant::now();
        let request = match read_request(&mut reader) {
            Ok(None) => return Disposition::Close, // peer left between requests
            Ok(Some(request)) => request,
            Err(e) => {
                let status = match e {
                    HttpError::TooLarge(_) => 413,
                    _ => 400,
                };
                let err = ServeError { status, code: "bad_request", message: e.to_string() };
                let _ = write_response(&mut writer, status, &err.to_json().to_string(), false);
                record_request("", "malformed", status, None, started);
                return Disposition::Close;
            }
        };
        if served > 0 {
            stats.keepalive_reuse.inc();
        }
        served += 1;
        let keep = !request.close;
        let method = request.method.clone();
        let label = router::route_label(&request.path);
        let campaign = router::campaign_in_path(&request.path).map(str::to_owned);
        let pretty = request.wants_pretty();

        let written = match router::resolve(&request.method, &request.path) {
            Resolution::Matched { route, params } => match route.action {
                Action::Metrics => {
                    // Text, not JSON — rendered here so the JSON writer
                    // never touches it. Scrape time is the natural
                    // checkpoint for process-level gauges.
                    remp_obs::sample_peak_rss();
                    let text = remp_obs::global().render();
                    let ok =
                        write_response_typed(&mut writer, 200, METRICS_CONTENT_TYPE, &text, keep)
                            .is_ok();
                    record_request(&method, label, 200, None, started);
                    ok
                }
                Action::Json(handler) | Action::LongPoll(handler) => {
                    let campaign_id = params.first().map(|&p| p.to_owned());
                    let wait_ms = request
                        .query_value("wait_ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                        .min(max_wait_ms);
                    let worker =
                        request.query_value("worker").map(str::to_owned).unwrap_or_default();
                    let ctx = Ctx { request: &request, params, registry };
                    let result = handler(&ctx);
                    // Nothing assignable and the caller offered to wait:
                    // park the socket on the dispatcher instead of
                    // answering (never with pipelined bytes pending —
                    // responses must stay in request order).
                    if matches!(route.action, Action::LongPoll(_))
                        && wait_ms > 0
                        && reader.buffer().is_empty()
                    {
                        if let Ok((200, doc)) = &result {
                            if assignment_is_pending(doc) {
                                dispatcher.park(
                                    Waiter {
                                        stream: writer,
                                        served,
                                        campaign: campaign_id.unwrap_or_default(),
                                        worker,
                                        pretty,
                                        keep,
                                        deadline: started + Duration::from_millis(wait_ms),
                                        started,
                                    },
                                    stats,
                                );
                                return Disposition::Parked;
                            }
                        }
                    }
                    let (status, doc) = match result {
                        Ok((status, doc)) => (status, doc),
                        Err(e) => (e.status, e.to_json()),
                    };
                    let body = if pretty { doc.to_pretty_string() } else { doc.to_string() };
                    let ok = write_response(&mut writer, status, &body, keep).is_ok();
                    record_request(&method, label, status, campaign.as_deref(), started);
                    ok
                }
            },
            Resolution::NotFound => {
                let err = ServeError::not_found(
                    "unknown_route",
                    format!("no route for {}", request.path),
                );
                let doc = err.to_json();
                let body = if pretty { doc.to_pretty_string() } else { doc.to_string() };
                let ok = write_response(&mut writer, err.status, &body, keep).is_ok();
                record_request(&method, label, err.status, campaign.as_deref(), started);
                ok
            }
            Resolution::MethodNotAllowed => {
                let err = ServeError {
                    status: 405,
                    code: "method_not_allowed",
                    message: format!("method {method} is not supported"),
                };
                let doc = err.to_json();
                let body = if pretty { doc.to_pretty_string() } else { doc.to_string() };
                let ok = write_response(&mut writer, err.status, &body, keep).is_ok();
                record_request(&method, label, err.status, campaign.as_deref(), started);
                ok
            }
        };
        if !written || !keep {
            return Disposition::Close;
        }
        if reader.buffer().is_empty() {
            return Disposition::KeepAlive(Conn { stream: writer, served });
        }
        // Pipelined request already buffered: serve it now, in order.
    }
}

/// `assignment` is null and the campaign is not complete — the long-poll
/// "keep waiting" shape of a `/next` response.
fn assignment_is_pending(doc: &Json) -> bool {
    matches!(doc.get("assignment"), Some(Json::Null))
        && doc.get("complete").and_then(Json::as_bool) == Some(false)
}

/// A parked long-poll: the socket still owes its `/next` response.
struct Waiter {
    stream: TcpStream,
    served: u64,
    campaign: String,
    worker: String,
    pretty: bool,
    keep: bool,
    deadline: Instant,
    started: Instant,
}

/// The long-poll dispatcher state: parked waiters plus the stop flag
/// the server trips during shutdown.
struct Dispatcher {
    queue: Mutex<Vec<Waiter>>,
    notifier: Arc<CampaignNotifier>,
    stop: AtomicBool,
}

impl Dispatcher {
    fn new(notifier: Arc<CampaignNotifier>) -> Dispatcher {
        Dispatcher { queue: Mutex::new(Vec::new()), notifier, stop: AtomicBool::new(false) }
    }

    fn park(&self, waiter: Waiter, stats: &ServeStats) {
        let count = {
            let mut q = self.queue.lock().expect("longpoll queue poisoned");
            q.push(waiter);
            q.len()
        };
        stats.waiters_set(count);
        // Wake the dispatcher so the new waiter's deadline bounds the
        // next wait.
        self.notifier.notify();
    }
}

/// The dispatcher thread: wakes on campaign events (accepted answers,
/// pause/resume — the actors bump the notifier) or a ≤100 ms tick
/// (lease expiry is lazy, someone must ask), re-polls every parked
/// worker and answers those with an assignment, a terminal condition or
/// an expired wait.
fn dispatcher_loop(
    dispatcher: &Dispatcher,
    registry: &Registry,
    stats: &ServeStats,
    sink: &ConnSink,
) {
    let mut seen = dispatcher.notifier.epoch();
    loop {
        let stopping = dispatcher.stop.load(Ordering::SeqCst);
        let waiters: Vec<Waiter> = {
            let mut q = dispatcher.queue.lock().expect("longpoll queue poisoned");
            q.drain(..).collect()
        };
        let mut still = Vec::new();
        for waiter in waiters {
            let now_ms = registry.now_ms();
            let result = registry.call(
                &waiter.campaign,
                CampaignRequest::Next { worker: waiter.worker.clone(), now_ms },
            );
            let resolved = match &result {
                Ok(doc) => !assignment_is_pending(doc),
                Err(_) => true, // paused, finished campaign, &c: the client should see it
            };
            if resolved || stopping || Instant::now() >= waiter.deadline {
                respond_waiter(waiter, result, stats, sink);
            } else {
                still.push(waiter);
            }
        }
        let (count, earliest) = {
            let mut q = dispatcher.queue.lock().expect("longpoll queue poisoned");
            // New arrivals may have parked during the pass; keep order.
            still.append(&mut q);
            *q = still;
            (q.len(), q.iter().map(|w| w.deadline).min())
        };
        stats.waiters_set(count);
        if stopping {
            if count == 0 {
                return;
            }
            continue; // answer the late arrivals on the next pass
        }
        let tick = Duration::from_millis(100);
        let timeout = match earliest {
            Some(deadline) => deadline
                .saturating_duration_since(Instant::now())
                .min(tick)
                .max(Duration::from_millis(1)),
            None => tick,
        };
        seen = dispatcher.notifier.wait_past(seen, timeout);
    }
}

/// Writes the response a parked long-poll was owed and routes the
/// socket onward (back to the readiness loop, or closed).
fn respond_waiter(
    waiter: Waiter,
    result: Result<Json, ServeError>,
    stats: &ServeStats,
    sink: &ConnSink,
) {
    let Waiter { mut stream, served, campaign, pretty, keep, started, .. } = waiter;
    let (status, doc) = match result {
        Ok(doc) => (200, doc),
        Err(e) => (e.status, e.to_json()),
    };
    let body = if pretty { doc.to_pretty_string() } else { doc.to_string() };
    let written = write_response(&mut stream, status, &body, keep).is_ok();
    record_request("GET", "/campaigns/{id}/next", status, Some(&campaign), started);
    if written && keep {
        sink(Conn { stream, served });
    } else {
        stats.conn_closed();
    }
}

/// Feeds one finished request into the metrics registry and the access
/// log: `remp_http_requests_total{method,route,status}`, the
/// `remp_http_request_seconds{route}` latency histogram, and a
/// debug-level event per request (visible on stderr with
/// `REMP_LOG=debug`, never crowding the event ring).
fn record_request(
    method: &str,
    route: &'static str,
    status: u16,
    campaign: Option<&str>,
    started: Instant,
) {
    if !remp_obs::enabled() {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let reg = remp_obs::global();
    let status_str = status.to_string();
    reg.counter(
        remp_obs::names::HTTP_REQUESTS_TOTAL,
        "HTTP requests served, by method, route template and status.",
        &[("method", method), ("route", route), ("status", &status_str)],
    )
    .inc();
    reg.histogram(
        remp_obs::names::HTTP_REQUEST_SECONDS,
        "HTTP request latency in seconds, by route template.",
        &[("route", route)],
        remp_obs::SECONDS_BUCKETS,
    )
    .observe(elapsed);
    remp_obs::event(remp_obs::Level::Debug, "http", campaign, || {
        (
            format!("{method} {route} -> {status}"),
            vec![
                ("method", Json::from(method)),
                ("route", Json::from(route)),
                ("status", Json::from(u64::from(status))),
                ("seconds", Json::from(elapsed)),
            ],
        )
    });
}
