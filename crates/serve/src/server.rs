//! The `rempd` HTTP server: a `TcpListener` accept loop feeding a fixed
//! handler pool (sized by [`Parallelism`]), routing onto the campaign
//! [`Registry`].
//!
//! Every handler is panic-isolated per connection by construction: all
//! wire input flows through the typed parsers in [`crate::http`] and
//! [`crate::wire`], so a malformed request becomes a 4xx response, and
//! campaign work happens on actor threads that only ever see typed
//! requests. Shutdown is cooperative — flip the stop flag (SIGTERM does
//! this in `rempd`), and [`Server::run`] drains the pool, checkpoints
//! every campaign to the state directory and joins the actors before
//! returning.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use remp_core::RempConfig;
use remp_json::Json;
use remp_par::Parallelism;

use crate::clock::{Clock, SystemClock};
use crate::engine::CrowdPolicy;
use crate::http::{read_request, write_response_typed, HttpError, Request};
use crate::registry::{CampaignRequest, CampaignSource, CampaignSpec, Registry};
use crate::wire::{
    body_bool, body_opt_f64, body_opt_str, body_opt_u64, body_str, body_u64, parse_body,
    parse_question_id, ServeError,
};

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Durable campaign state directory; `None` disables durability.
    pub state_dir: Option<PathBuf>,
    /// Handler-pool sizing policy.
    pub parallelism: Parallelism,
    /// Lease clock; the default [`SystemClock`] is right for production,
    /// a [`crate::clock::ManualClock`] lets tests and the simulator
    /// drive lease expiry on virtual time.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            state_dir: None,
            parallelism: Parallelism::Auto,
            clock: Arc::new(SystemClock),
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    pool_size: usize,
}

impl Server {
    /// Binds the listener and opens the registry (resuming any
    /// campaigns checkpointed in the state directory).
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let registry = Arc::new(Registry::open_with_clock(
            config.state_dir.clone(),
            Arc::clone(&config.clock),
        )?);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::internal("bind", format!("{}: {e}", config.addr)))?;
        // At least two handlers so one slow campaign request can never
        // starve /healthz.
        let pool_size = config.parallelism.threads().max(2);
        Ok(Server { listener, registry, pool_size })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The campaign registry (for in-process setup in tests/examples).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serves until `stop` becomes true, then drains the pool,
    /// checkpoints every campaign and joins the actors. Returns the
    /// number of campaigns checkpointed.
    pub fn run(self, stop: &AtomicBool) -> Result<usize, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::internal("bind", e.to_string()))?;
        let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
            Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let done = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::with_capacity(self.pool_size);
        for i in 0..self.pool_size {
            let queue = Arc::clone(&queue);
            let done = Arc::clone(&done);
            let registry = Arc::clone(&self.registry);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rempd-handler-{i}"))
                    .spawn(move || handler_worker(&queue, &done, &registry))
                    .map_err(|e| ServeError::internal("spawn", e.to_string()))?,
            );
        }

        while !stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let (lock, cvar) = &*queue;
                    lock.lock().expect("queue poisoned").push_back(stream);
                    cvar.notify_one();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::internal("accept", e.to_string())),
            }
        }

        // Graceful drain: no new connections, finish the queued ones,
        // then persist and stop every campaign.
        done.store(true, Ordering::SeqCst);
        queue.1.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        self.registry.shutdown()
    }
}

/// Process-wide stop flag used by [`install_signal_handlers`].
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// The stop flag [`install_signal_handlers`] trips — pass it to
/// [`Server::run`] for a daemon that shuts down cleanly on SIGTERM.
pub fn signal_stop_flag() -> &'static AtomicBool {
    &SIGNAL_STOP
}

/// Installs SIGTERM/SIGINT handlers that trip [`signal_stop_flag`]
/// (no-op off Unix). Both `rempd` and `rempctl serve` use this.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn request_stop(_signum: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    // libc is already linked by std; SIGTERM = 15, SIGINT = 2 on every
    // Unix this builds for.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, request_stop);
        signal(2, request_stop);
    }
}

/// No-op off Unix.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

fn handler_worker(
    queue: &(Mutex<VecDeque<TcpStream>>, Condvar),
    done: &AtomicBool,
    registry: &Registry,
) {
    let (lock, cvar) = queue;
    loop {
        let stream = {
            let mut q = lock.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = q.pop_front() {
                    break Some(stream);
                }
                if done.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) =
                    cvar.wait_timeout(q, Duration::from_millis(100)).expect("queue poisoned");
                q = guard;
            }
        };
        let Some(stream) = stream else {
            return;
        };
        handle_connection(stream, registry);
    }
}

/// `Content-Type` of the Prometheus text exposition format `/metrics`
/// answers with.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn handle_connection(stream: TcpStream, registry: &Registry) {
    // A peer that stalls mid-request should not pin a handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // Responses are written in two small chunks; don't let Nagle hold
    // the second one hostage to a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let started = Instant::now();
    let (status, content_type, body, method, route_tpl, campaign) = match read_request(&mut reader)
    {
        Ok(None) => return, // peer connected and left
        Ok(Some(request)) => {
            let method = request.method.clone();
            let route_tpl = route_label(&request.path);
            let campaign = campaign_in_path(&request.path).map(str::to_owned);
            if method == "GET" && request.path == "/metrics" {
                // Text, not JSON — rendered outside `route` so the
                // JSON writer never touches it. Scrape time is the
                // natural checkpoint for process-level gauges.
                remp_obs::sample_peak_rss();
                let text = remp_obs::global().render();
                (200, METRICS_CONTENT_TYPE, text, method, route_tpl, campaign)
            } else {
                let pretty = request.wants_pretty();
                let (status, doc) = match route(&request, registry) {
                    Ok((status, doc)) => (status, doc),
                    Err(e) => (e.status, e.to_json()),
                };
                let body = if pretty { doc.to_pretty_string() } else { doc.to_string() };
                (status, "application/json", body, method, route_tpl, campaign)
            }
        }
        Err(e) => {
            let status = match e {
                HttpError::TooLarge(_) => 413,
                _ => 400,
            };
            let err = ServeError { status, code: "bad_request", message: e.to_string() };
            let body = err.to_json().to_string();
            (status, "application/json", body, String::new(), "malformed", None)
        }
    };
    let _ = write_response_typed(&mut writer, status, content_type, &body);
    record_request(&method, route_tpl, status, campaign.as_deref(), started);
}

/// Feeds one finished request into the metrics registry and the access
/// log: `remp_http_requests_total{method,route,status}`, the
/// `remp_http_request_seconds{route}` latency histogram, and a
/// debug-level event per request (visible on stderr with
/// `REMP_LOG=debug`, never crowding the event ring).
fn record_request(
    method: &str,
    route: &'static str,
    status: u16,
    campaign: Option<&str>,
    started: Instant,
) {
    if !remp_obs::enabled() {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let reg = remp_obs::global();
    let status_str = status.to_string();
    reg.counter(
        remp_obs::names::HTTP_REQUESTS_TOTAL,
        "HTTP requests served, by method, route template and status.",
        &[("method", method), ("route", route), ("status", &status_str)],
    )
    .inc();
    reg.histogram(
        remp_obs::names::HTTP_REQUEST_SECONDS,
        "HTTP request latency in seconds, by route template.",
        &[("route", route)],
        remp_obs::SECONDS_BUCKETS,
    )
    .observe(elapsed);
    remp_obs::event(remp_obs::Level::Debug, "http", campaign, || {
        (
            format!("{method} {route} -> {status}"),
            vec![
                ("method", Json::from(method)),
                ("route", Json::from(route)),
                ("status", Json::from(u64::from(status))),
                ("seconds", Json::from(elapsed)),
            ],
        )
    });
}

/// The static route template a request path falls under — the low-
/// cardinality `route` label value (campaign ids never leak into label
/// values).
fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|segment| !segment.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["campaigns"] => "/campaigns",
        ["campaigns", _] => "/campaigns/{id}",
        ["campaigns", _, "questions"] => "/campaigns/{id}/questions",
        ["campaigns", _, "workers"] => "/campaigns/{id}/workers",
        ["campaigns", _, "events"] => "/campaigns/{id}/events",
        ["campaigns", _, "next"] => "/campaigns/{id}/next",
        ["campaigns", _, "answers"] => "/campaigns/{id}/answers",
        ["campaigns", _, "outcome"] => "/campaigns/{id}/outcome",
        ["campaigns", _, "pause"] => "/campaigns/{id}/pause",
        ["campaigns", _, "resume"] => "/campaigns/{id}/resume",
        ["scale", "jobs"] => "/scale/jobs",
        ["scale", "jobs", _] => "/scale/jobs/{id}",
        ["scale", "jobs", _, "next"] => "/scale/jobs/{id}/next",
        ["scale", "jobs", _, "heartbeat"] => "/scale/jobs/{id}/heartbeat",
        ["scale", "jobs", _, "result"] => "/scale/jobs/{id}/result",
        ["scale", "jobs", _, "outcome"] => "/scale/jobs/{id}/outcome",
        _ => "other",
    }
}

/// The campaign id a path addresses, if any — stamps the access-log
/// event so `/campaigns/{id}/events` includes the campaign's requests.
fn campaign_in_path(path: &str) -> Option<&str> {
    let mut segments = path.split('/').filter(|segment| !segment.is_empty());
    match (segments.next(), segments.next()) {
        (Some("campaigns"), Some(id)) => Some(id),
        _ => None,
    }
}

// ---- routing ----------------------------------------------------------

fn route(request: &Request, registry: &Registry) -> Result<(u16, Json), ServeError> {
    let segments: Vec<&str> =
        request.path.split('/').filter(|segment| !segment.is_empty()).collect();
    let method = request.method.as_str();
    // All lease arithmetic in one request uses a single reading of the
    // registry's injected clock.
    let now_ms = || registry.now_ms();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok((
            200,
            Json::Obj(vec![
                ("status".into(), Json::from("ok")),
                ("version".into(), Json::from(env!("CARGO_PKG_VERSION"))),
                ("uptime_s".into(), Json::from(registry.uptime_s())),
                ("campaigns".into(), Json::from(registry.list().len())),
                ("observability".into(), Json::from(remp_obs::enabled())),
                ("metric_series".into(), Json::from(remp_obs::global().series_count())),
            ]),
        )),
        ("GET", ["campaigns"]) => {
            let mut items = Vec::new();
            for (id, _name) in registry.list() {
                let mut status =
                    registry.call(&id, CampaignRequest::Status { now_ms: now_ms() })?;
                if let Json::Obj(fields) = &mut status {
                    fields.insert(0, ("id".into(), Json::from(id.as_str())));
                }
                items.push(status);
            }
            Ok((200, Json::Obj(vec![("campaigns".into(), Json::Arr(items))])))
        }
        ("POST", ["campaigns"]) => {
            let spec = campaign_spec_from_body(&request.body)?;
            let id = registry.create(spec)?;
            let mut status = registry.call(&id, CampaignRequest::Status { now_ms: now_ms() })?;
            if let Json::Obj(fields) = &mut status {
                fields.insert(0, ("id".into(), Json::from(id.as_str())));
            }
            Ok((201, status))
        }
        ("GET", ["campaigns", id]) => {
            Ok((200, registry.call(id, CampaignRequest::Status { now_ms: now_ms() })?))
        }
        ("GET", ["campaigns", id, "questions"]) => {
            Ok((200, registry.call(id, CampaignRequest::Questions { now_ms: now_ms() })?))
        }
        ("GET", ["campaigns", id, "workers"]) => {
            Ok((200, registry.call(id, CampaignRequest::Workers)?))
        }
        ("GET", ["campaigns", id, "events"]) => {
            if !registry.list().iter().any(|(cid, _)| cid == id) {
                return Err(ServeError::not_found(
                    "unknown_campaign",
                    format!("no campaign {id:?}"),
                ));
            }
            let limit = request
                .query_value("limit")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(100)
                .max(1);
            let events = remp_obs::events_snapshot(Some(id), limit);
            Ok((
                200,
                Json::Obj(vec![
                    ("campaign".into(), Json::from(*id)),
                    ("count".into(), Json::from(events.len())),
                    ("events".into(), Json::Arr(events.iter().map(|e| e.to_json()).collect())),
                ]),
            ))
        }
        ("GET", ["campaigns", id, "next"]) => {
            let worker = request
                .query_value("worker")
                .ok_or_else(|| {
                    ServeError::bad_request(
                        "missing_worker",
                        "query parameter 'worker' is required",
                    )
                })?
                .to_owned();
            Ok((200, registry.call(id, CampaignRequest::Next { worker, now_ms: now_ms() })?))
        }
        ("POST", ["campaigns", id, "answers"]) => {
            let doc = parse_body(&request.body)?;
            let worker = body_str(&doc, "worker")?.to_owned();
            let question = parse_question_id(body_str(&doc, "question")?)?;
            let says_match = body_bool(&doc, "says_match")?;
            Ok((
                200,
                registry.call(
                    id,
                    CampaignRequest::Answer { worker, question, says_match, now_ms: now_ms() },
                )?,
            ))
        }
        ("GET", ["campaigns", id, "outcome"]) => {
            Ok((200, registry.call(id, CampaignRequest::Outcome)?))
        }
        ("POST", ["campaigns", id, "pause"]) => {
            Ok((200, registry.call(id, CampaignRequest::Pause)?))
        }
        ("POST", ["campaigns", id, "resume"]) => {
            Ok((200, registry.call(id, CampaignRequest::Resume)?))
        }
        // Sharded-campaign coordination (crates/scale/SHARDING.md): the
        // registry's scale jobs run on the same injected lease clock as
        // the campaigns.
        ("POST", ["scale", "jobs"]) => {
            let doc = parse_body(&request.body)?;
            let dir = body_str(&doc, "dir")?;
            let lease_ms = body_opt_u64(&doc, "lease_ms")?;
            registry.scale_jobs().create(dir, lease_ms)
        }
        ("GET", ["scale", "jobs"]) => Ok(registry.scale_jobs().list()),
        ("GET", ["scale", "jobs", job]) => registry.scale_jobs().status(job),
        ("POST", ["scale", "jobs", job, "next"]) => {
            let doc = parse_body(&request.body)?;
            let worker = body_str(&doc, "worker")?;
            registry.scale_jobs().next(job, worker, now_ms())
        }
        ("POST", ["scale", "jobs", job, "heartbeat"]) => {
            let doc = parse_body(&request.body)?;
            let worker = body_str(&doc, "worker")?;
            let shard = body_u64(&doc, "shard")? as u32;
            registry.scale_jobs().heartbeat(job, worker, shard, now_ms())
        }
        ("POST", ["scale", "jobs", job, "result"]) => {
            let doc = parse_body(&request.body)?;
            registry.scale_jobs().result(job, &doc)
        }
        ("GET", ["scale", "jobs", job, "outcome"]) => registry.scale_jobs().outcome(job),
        ("GET" | "POST", _) => {
            Err(ServeError::not_found("unknown_route", format!("no route for {}", request.path)))
        }
        _ => Err(ServeError {
            status: 405,
            code: "method_not_allowed",
            message: format!("method {method} is not supported"),
        }),
    }
}

/// Decodes a `POST /campaigns` body into a spec.
///
/// ```json
/// {"name": "movies", "kb1": "a.rkb", "kb2": "b.rkb",
///  "mu": 10, "budget": 500, "threads": "auto",
///  "per_question": 5, "qualification": 0.85, "quality_weight": 5.0,
///  "lease_ms": 60000}
/// ```
///
/// Either `kb1`+`kb2` (server-side paths) or `preset` (+ optional
/// `scale`) selects the source.
fn campaign_spec_from_body(body: &[u8]) -> Result<CampaignSpec, ServeError> {
    let doc = parse_body(body)?;
    let source = match (body_opt_str(&doc, "preset")?, body_opt_str(&doc, "kb1")?) {
        (Some(preset), None) => CampaignSource::Preset {
            preset: preset.to_owned(),
            scale: body_opt_f64(&doc, "scale")?.unwrap_or(1.0),
        },
        (None, Some(kb1)) => CampaignSource::Files {
            kb1: PathBuf::from(kb1),
            kb2: PathBuf::from(body_str(&doc, "kb2")?),
        },
        (Some(_), Some(_)) => {
            return Err(ServeError::bad_request(
                "bad_source",
                "give either 'preset' or 'kb1'/'kb2', not both",
            ))
        }
        (None, None) => {
            return Err(ServeError::bad_request(
                "bad_source",
                "a campaign needs a 'preset' or a 'kb1'/'kb2' pair",
            ))
        }
    };
    let mut config = RempConfig::default();
    if let Some(mu) = body_opt_u64(&doc, "mu")? {
        config = config.with_mu(mu as usize);
    }
    if let Some(budget) = body_opt_u64(&doc, "budget")? {
        config = config.with_budget(budget as usize);
    }
    if let Some(threads) = body_opt_str(&doc, "threads")? {
        let parallelism = Parallelism::from_label(threads).ok_or_else(|| {
            ServeError::bad_request("bad_field", format!("unknown threads policy {threads:?}"))
        })?;
        config = config.with_parallelism(parallelism);
    }
    let default_policy = CrowdPolicy::default();
    let policy = CrowdPolicy {
        per_question: body_opt_u64(&doc, "per_question")?
            .map_or(default_policy.per_question, |n| n as usize),
        qualification: body_opt_f64(&doc, "qualification")?.unwrap_or(default_policy.qualification),
        quality_weight: body_opt_f64(&doc, "quality_weight")?
            .unwrap_or(default_policy.quality_weight),
        lease_ms: body_opt_u64(&doc, "lease_ms")?.unwrap_or(default_policy.lease_ms),
    };
    let name = body_opt_str(&doc, "name")?.unwrap_or("campaign").to_owned();
    Ok(CampaignSpec { name, source, config, policy })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_bodies_decode_and_reject() {
        let spec = campaign_spec_from_body(
            br#"{"preset":"TINY","per_question":3,"budget":40,"name":"t"}"#,
        )
        .unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.policy.per_question, 3);
        assert_eq!(spec.config.max_questions, Some(40));
        assert!(matches!(spec.source, CampaignSource::Preset { .. }));

        let spec = campaign_spec_from_body(br#"{"kb1":"a.rkb","kb2":"b.rkb"}"#).unwrap();
        assert!(matches!(spec.source, CampaignSource::Files { .. }));

        for bad in [
            &br#"{}"#[..],
            br#"{"preset":"TINY","kb1":"a"}"#,
            br#"{"kb1":"a.rkb"}"#,
            br#"{"preset":"TINY","threads":"warp"}"#,
            br#"not json"#,
        ] {
            assert_eq!(campaign_spec_from_body(bad).unwrap_err().status, 400, "{bad:?}");
        }
    }
}
