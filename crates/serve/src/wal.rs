//! Append-only answer write-ahead log — the O(answer) durability rung
//! under the JSON checkpoint.
//!
//! Every accepted answer is appended and `fdatasync`ed *before* the 2xx
//! goes back to the worker, so a `kill -9` loses at most answers the
//! server never acknowledged. On restart the registry replays the WAL
//! over the last checkpoint: records with `seq` at or below the
//! checkpoint's `answer_seq` are already folded in and skipped, the
//! rest are re-applied in order, which reproduces the engine state
//! bit-identically (answer application is deterministic in arrival
//! order).
//!
//! The on-disk format reuses the `.rkb` framing idiom
//! ([`remp_ingest::framing`]): an 8-byte header (magic `RWAL`,
//! `version: u32`), then one frame per record —
//! `payload length: u32`, `FNV-1a 64 checksum: u64`, payload. The
//! payload is `seq: u64, question: u64, worker: str, says_match: u8,
//! now_ms: u64`, all little-endian. A crash mid-append leaves a torn
//! final frame (short, or checksum mismatch); [`Wal::open`] truncates
//! it and reports how many bytes were dropped. Compaction is a
//! checkpoint followed by [`Wal::reset`] — safe in that order because a
//! crash in between merely leaves already-checkpointed records for the
//! replay to skip.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use remp_ingest::framing::{fnv1a64, put_str, put_u32, put_u64};

/// File magic for answer WALs.
pub const MAGIC: [u8; 4] = *b"RWAL";
/// Format version (bumped on incompatible payload changes).
pub const VERSION: u32 = 1;
/// Header bytes before the first record frame.
const HEADER_LEN: u64 = 8;
/// Largest plausible record payload; a length beyond this is garbage
/// (a worker id would have to be tens of KiB), so the scan treats it as
/// a torn tail instead of allocating it.
const MAX_RECORD: u32 = 64 * 1024;

/// One accepted answer, exactly as the engine needs it re-applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// 1-based count of accepted answers in this campaign — monotone,
    /// so replay can skip records a checkpoint already folded in.
    pub seq: u64,
    /// Question id the answer is for.
    pub question: u64,
    /// Worker who answered.
    pub worker: String,
    /// The verdict.
    pub says_match: bool,
    /// Engine clock at acceptance (drives lease bookkeeping on replay).
    pub now_ms: u64,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(29 + self.worker.len());
        put_u64(&mut b, self.seq);
        put_u64(&mut b, self.question);
        put_str(&mut b, &self.worker);
        b.push(self.says_match as u8);
        put_u64(&mut b, self.now_ms);
        b
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n)?;
            let out = payload.get(pos..end)?;
            pos = end;
            Some(out)
        };
        let seq = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let question = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let worker_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let worker = String::from_utf8(take(worker_len)?.to_vec()).ok()?;
        let says_match = match take(1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let now_ms = u64::from_le_bytes(take(8)?.try_into().ok()?);
        if pos != payload.len() {
            return None; // trailing garbage inside a checksummed frame
        }
        Some(WalRecord { seq, question, worker, says_match, now_ms })
    }
}

/// What [`Wal::open`] found in an existing log.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail that were truncated away, if any.
    pub truncated_tail: Option<u64>,
}

/// An open answer WAL, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
}

/// The WAL file path for campaign `id` under `state_dir`.
pub fn wal_path(state_dir: &Path, id: &str) -> PathBuf {
    state_dir.join(format!("{id}.wal"))
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, validates every
    /// record frame, truncates any torn tail, and returns the writer
    /// positioned at the end plus everything intact for replay.
    pub fn open(path: &Path) -> io::Result<(Wal, WalReplay)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let disk_len = file.metadata()?.len();
        if disk_len < HEADER_LEN {
            // Fresh file, or a crash tore the header itself: start over.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            let truncated_tail = (disk_len > 0).then_some(disk_len);
            let wal = Wal { file, path: path.to_path_buf(), bytes: HEADER_LEN };
            return Ok((wal, WalReplay { records: Vec::new(), truncated_tail }));
        }

        file.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: bad magic (not an answer WAL)", path.display()),
            ));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: unsupported WAL version {version} (this build reads {VERSION})",
                    path.display()
                ),
            ));
        }

        let mut body = Vec::with_capacity((disk_len - HEADER_LEN) as usize);
        file.read_to_end(&mut body)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        // Scan frames until the first short or corrupt one — everything
        // from there on is a torn tail from a crash mid-append.
        loop {
            let rest = body.len() - pos;
            if rest == 0 {
                break;
            }
            if rest < 12 {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap());
            if len > MAX_RECORD || (len as usize) > rest - 12 {
                break; // torn or garbage length
            }
            let sum = u64::from_le_bytes(body[pos + 4..pos + 12].try_into().unwrap());
            let payload = &body[pos + 12..pos + 12 + len as usize];
            if fnv1a64(payload) != sum {
                break; // torn payload
            }
            let Some(record) = WalRecord::decode(payload) else {
                break; // checksummed but undecodable — treat as torn
            };
            records.push(record);
            pos += 12 + len as usize;
        }

        let valid_end = HEADER_LEN + pos as u64;
        let truncated_tail = if valid_end < disk_len {
            file.set_len(valid_end)?;
            file.sync_data()?;
            Some(disk_len - valid_end)
        } else {
            None
        };
        file.seek(SeekFrom::Start(valid_end))?;
        let wal = Wal { file, path: path.to_path_buf(), bytes: valid_end };
        Ok((wal, WalReplay { records, truncated_tail }))
    }

    /// Appends one record and syncs it to disk. Returns the frame size
    /// in bytes. Only after this returns may the answer be acknowledged.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Current file size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Where this WAL lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drops every record, keeping the header — called right after a
    /// checkpoint has folded them in (compaction). Safe ordering:
    /// checkpoint first, then reset; a crash in between leaves records
    /// the next replay skips by `seq`.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_data()?;
        self.bytes = HEADER_LEN;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("remp-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("c0.wal")
    }

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            question: 40 + seq,
            worker: format!("w{seq}"),
            says_match: seq.is_multiple_of(2),
            now_ms: 1_000 * seq,
        }
    }

    #[test]
    fn appends_replay_in_order() {
        let path = tmp("roundtrip");
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_tail, None);
        for seq in 1..=5 {
            wal.append(&record(seq)).unwrap();
        }
        let bytes = wal.bytes();
        drop(wal);

        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, (1..=5).map(record).collect::<Vec<_>>());
        assert_eq!(replay.truncated_tail, None);
        assert_eq!(wal.bytes(), bytes, "reopen finds the same end");
    }

    #[test]
    fn torn_tails_are_truncated_at_every_cut_point() {
        let reference = {
            let path = tmp("torn-ref");
            let (mut wal, _) = Wal::open(&path).unwrap();
            for seq in 1..=3 {
                wal.append(&record(seq)).unwrap();
            }
            std::fs::read(&path).unwrap()
        };
        // Cut the file after every byte count past the first two full
        // records: replay must always recover exactly records 1 and 2.
        let second_end = {
            let payload = |r: &WalRecord| r.encode().len() + 12;
            HEADER_LEN as usize + payload(&record(1)) + payload(&record(2))
        };
        for cut in second_end..reference.len() - 1 {
            let path = tmp("torn-cut");
            std::fs::write(&path, &reference[..cut]).unwrap();
            let (wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            if cut > second_end {
                assert_eq!(replay.truncated_tail, Some((cut - second_end) as u64), "cut at {cut}");
            }
            assert_eq!(wal.bytes(), second_end as u64, "cut at {cut}");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), second_end as u64);
        }
    }

    #[test]
    fn corrupt_checksum_drops_the_record_and_its_tail() {
        let path = tmp("corrupt");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut first_end = HEADER_LEN;
        for seq in 1..=3 {
            let n = wal.append(&record(seq)).unwrap();
            if seq == 1 {
                first_end += n;
            }
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = first_end as usize + 20; // inside record 2's payload
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![record(1)], "record 2 is corrupt, 3 unreachable");
        assert!(replay.truncated_tail.is_some());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_end);
    }

    #[test]
    fn reset_keeps_the_header_and_accepts_new_records() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for seq in 1..=4 {
            wal.append(&record(seq)).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), HEADER_LEN);
        wal.append(&record(5)).unwrap();
        drop(wal);

        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![record(5)]);
    }

    #[test]
    fn foreign_files_are_rejected_not_clobbered() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a WAL, but long enough").unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // The file is untouched.
        assert!(std::fs::read(&path).unwrap().starts_with(b"definitely"));
    }

    #[test]
    fn torn_header_restarts_the_file() {
        let path = tmp("torn-header");
        std::fs::write(&path, &MAGIC[..3]).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.truncated_tail, Some(3));
        wal.append(&record(1)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![record(1)]);
    }
}
