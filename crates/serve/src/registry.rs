//! The campaign registry: one actor thread per campaign, durable state
//! files, and the request fan-in the HTTP layer talks to.
//!
//! [`RempSession`] borrows its knowledge bases, so each campaign runs on
//! a dedicated **actor thread** that owns the KBs, the session and the
//! [`CampaignEngine`] outright — no self-referential structs, no locks
//! around `&mut` session state. The HTTP handlers send typed
//! [`CampaignRequest`]s over a channel and block on the reply; the actor
//! processes them strictly in arrival order, which is also what makes
//! campaign behaviour deterministic for a deterministic client.
//!
//! Durability is two-tier. The base is one pretty-printed JSON state
//! file per campaign (`{id}.campaign.json`): the session checkpoint
//! plus the crowd-side state the session does not know about (collected
//! answers, worker records, the submission log), written at creation
//! (genesis), at every WAL compaction, and on graceful shutdown. On top
//! rides the per-campaign answer WAL (`{id}.wal`, [`crate::wal`]):
//! every accepted answer is fsynced into it *before* the 2xx reply, so
//! a `kill -9` loses nothing acknowledged. A new `rempd` process
//! pointed at the same directory resumes every campaign by loading the
//! checkpoint and replaying the WAL records past its `answer_seq` —
//! mid-batch, mid-question, even mid-record (torn tails are truncated).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use remp_core::{QuestionId, Remp, RempConfig, RempSession, SessionCheckpoint};
use remp_crowd::WorkerRecord;
use remp_datasets::{generate, preset_by_name};
use remp_ingest::load_kb;
use remp_json::Json;
use remp_kb::Kb;

use crate::clock::{Clock, SystemClock};
use crate::engine::{CampaignEngine, CrowdPolicy};
use crate::wal::{wal_path, Wal, WalRecord};
use crate::wire::{question_json, verdict_code, ServeError, SubmittedRecord};

/// The campaign's footprint on the global metrics registry: the
/// engine-owned lease counters exposed under a `campaign` label, plus
/// four gauges the actor refreshes after every message. Dropped (all
/// series removed) when the actor stops, so a dead campaign does not
/// linger on `/metrics`.
struct CampaignObs {
    id: String,
    open: remp_obs::Gauge,
    asked: remp_obs::Gauge,
    workers: remp_obs::Gauge,
    complete: remp_obs::Gauge,
}

impl CampaignObs {
    fn register(id: &str, engine: &CampaignEngine<'_>) -> CampaignObs {
        use remp_obs::names;
        let reg = remp_obs::global();
        let labels: &[(&str, &str)] = &[("campaign", id)];
        let lc = engine.lease_counters();
        reg.register_counter(
            names::LEASES_ISSUED_TOTAL,
            "Leases granted, including re-issues.",
            labels,
            &lc.issued,
        );
        reg.register_counter(
            names::LEASES_EXPIRED_TOTAL,
            "Leases that expired unanswered.",
            labels,
            &lc.expired,
        );
        reg.register_counter(
            names::LEASES_REISSUED_TOTAL,
            "Grants that replaced an expired lease on the same question.",
            labels,
            &lc.reissued,
        );
        let gauge = |name: &str, help: &str| {
            let g = remp_obs::Gauge::new();
            reg.register_gauge(name, help, labels, &g);
            g
        };
        let obs = CampaignObs {
            id: id.to_owned(),
            open: gauge(
                names::CAMPAIGN_OPEN_QUESTIONS,
                "Questions currently open (leasable or collecting answers).",
            ),
            asked: gauge(
                names::CAMPAIGN_QUESTIONS_ASKED,
                "Questions submitted to the session so far.",
            ),
            workers: gauge(names::CAMPAIGN_WORKERS, "Workers registered with the campaign."),
            complete: gauge(names::CAMPAIGN_COMPLETE, "1 once the campaign has drained, else 0."),
        };
        obs.refresh(engine);
        obs
    }

    fn refresh(&self, engine: &CampaignEngine<'_>) {
        let (open, asked, workers, complete) = engine.gauge_snapshot();
        self.open.set(open as f64);
        self.asked.set(asked as f64);
        self.workers.set(workers as f64);
        self.complete.set(if complete { 1.0 } else { 0.0 });
    }

    fn deregister(self) {
        remp_obs::global().remove_label_value("campaign", &self.id);
    }
}

/// Wakes the server's long-poll dispatcher whenever campaign state
/// changed in a way that could let a parked `/next` succeed: an
/// accepted answer (it may complete a question and open the next
/// batch), a pause/resume, or shutdown. A bare epoch + condvar —
/// waiters record the epoch they have seen and block until it moves
/// past.
#[derive(Debug, Default)]
pub struct CampaignNotifier {
    epoch: Mutex<u64>,
    cond: Condvar,
}

impl CampaignNotifier {
    /// The current epoch; pass to [`wait_past`](Self::wait_past).
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("notifier poisoned")
    }

    /// Bumps the epoch and wakes every waiter.
    pub fn notify(&self) {
        let mut epoch = self.epoch.lock().expect("notifier poisoned");
        *epoch += 1;
        drop(epoch);
        self.cond.notify_all();
    }

    /// Blocks until the epoch moves past `seen` or `timeout` elapses;
    /// returns the epoch at wake-up.
    pub fn wait_past(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut epoch = self.epoch.lock().expect("notifier poisoned");
        while *epoch <= seen {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self.cond.wait_timeout(epoch, left).expect("notifier poisoned");
            epoch = guard;
        }
        *epoch
    }
}

/// Process-global WAL instruments every campaign actor reports into:
/// counters for `/metrics` plus the live on-disk byte total `/healthz`
/// shows as serving pressure.
#[derive(Clone)]
struct WalObs {
    records: remp_obs::Counter,
    bytes: remp_obs::Counter,
    live_bytes: Arc<AtomicU64>,
}

impl WalObs {
    fn new() -> WalObs {
        use remp_obs::names;
        let reg = remp_obs::global();
        WalObs {
            records: reg.counter(
                names::WAL_RECORDS_TOTAL,
                "Answer records appended to campaign write-ahead logs.",
                &[],
            ),
            bytes: reg.counter(
                names::WAL_BYTES_TOTAL,
                "Bytes appended to campaign write-ahead logs.",
                &[],
            ),
            live_bytes: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Version tag of the campaign state-file format.
pub const STATE_VERSION: u64 = 1;

/// Where a campaign's knowledge bases come from.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignSource {
    /// A named synthetic preset (deterministic: the same preset+scale
    /// regenerates the same KBs on every host).
    Preset {
        /// Preset name (e.g. `TINY`, `IIMB`).
        preset: String,
        /// World-size multiplier.
        scale: f64,
    },
    /// Two server-side KB files (`.nt`, CSV directory, or `.rkb`).
    Files {
        /// First KB path.
        kb1: PathBuf,
        /// Second KB path.
        kb2: PathBuf,
    },
}

impl CampaignSource {
    fn to_json(&self) -> Json {
        match self {
            CampaignSource::Preset { preset, scale } => Json::Obj(vec![
                ("kind".into(), Json::from("preset")),
                ("preset".into(), Json::from(preset.as_str())),
                ("scale".into(), Json::from(*scale)),
            ]),
            CampaignSource::Files { kb1, kb2 } => Json::Obj(vec![
                ("kind".into(), Json::from("files")),
                ("kb1".into(), Json::from(kb1.display().to_string())),
                ("kb2".into(), Json::from(kb2.display().to_string())),
            ]),
        }
    }

    fn from_json(doc: &Json) -> Result<CampaignSource, ServeError> {
        let bad = |msg: &str| ServeError::internal("bad_state", format!("campaign source: {msg}"));
        match doc.get("kind").and_then(Json::as_str) {
            Some("preset") => Ok(CampaignSource::Preset {
                preset: doc
                    .get("preset")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing preset"))?
                    .to_owned(),
                scale: doc
                    .get("scale")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("missing scale"))?,
            }),
            Some("files") => Ok(CampaignSource::Files {
                kb1: PathBuf::from(
                    doc.get("kb1").and_then(Json::as_str).ok_or_else(|| bad("missing kb1"))?,
                ),
                kb2: PathBuf::from(
                    doc.get("kb2").and_then(Json::as_str).ok_or_else(|| bad("missing kb2"))?,
                ),
            }),
            _ => Err(bad("unknown kind")),
        }
    }

    fn load(&self) -> Result<(Kb, Kb), ServeError> {
        match self {
            CampaignSource::Preset { preset, scale } => {
                let spec = preset_by_name(preset, *scale).ok_or_else(|| {
                    ServeError::bad_request("unknown_preset", format!("no preset {preset:?}"))
                })?;
                let d = generate(&spec);
                Ok((d.kb1, d.kb2))
            }
            CampaignSource::Files { kb1, kb2 } => {
                let load = |path: &Path, name: &str| {
                    load_kb(path, name).map_err(|e| {
                        ServeError::bad_request("bad_kb", format!("{}: {e}", path.display()))
                    })
                };
                Ok((load(kb1, "kb1")?.kb, load(kb2, "kb2")?.kb))
            }
        }
    }
}

/// Everything needed to (re)start a campaign actor.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Operator-chosen display name.
    pub name: String,
    /// KB source.
    pub source: CampaignSource,
    /// Pipeline configuration.
    pub config: RempConfig,
    /// Crowd policy.
    pub policy: CrowdPolicy,
}

/// Saved crowd-side state restored on resume.
struct ResumeState {
    session: SessionCheckpoint,
    workers: Vec<(String, WorkerRecord)>,
    answers: Vec<(u64, String, bool)>,
    log: Vec<SubmittedRecord>,
    paused: bool,
    /// Count of accepted answers folded into this checkpoint — WAL
    /// records at or below it are already applied and skipped on
    /// replay. Absent in pre-WAL state files, which means 0.
    answer_seq: u64,
}

/// Operations the HTTP layer can ask of a campaign actor.
pub enum CampaignRequest {
    /// Lease the next question for a worker.
    Next {
        /// Requesting worker.
        worker: String,
        /// Clock reading in milliseconds.
        now_ms: u64,
    },
    /// Record one worker's answer.
    Answer {
        /// Answering worker.
        worker: String,
        /// The question being answered.
        question: QuestionId,
        /// The worker's label.
        says_match: bool,
        /// Clock reading in milliseconds.
        now_ms: u64,
    },
    /// Aggregate status.
    Status {
        /// Clock reading in milliseconds.
        now_ms: u64,
    },
    /// The open questions with progress counts.
    Questions {
        /// Clock reading in milliseconds.
        now_ms: u64,
    },
    /// Per-worker quality estimates and score records.
    Workers,
    /// The (provisional) outcome plus submission log.
    Outcome,
    /// Stop handing out or accepting work.
    Pause,
    /// Resume a paused campaign.
    Resume,
    /// Serialize the full campaign state (state-file body).
    Checkpoint,
    /// Terminate the actor thread.
    Stop,
}

struct Call {
    request: CampaignRequest,
    reply: Sender<Result<Json, ServeError>>,
}

/// Client handle to one campaign actor.
struct CampaignHandle {
    name: String,
    tx: Sender<Call>,
    join: Option<JoinHandle<()>>,
}

/// The set of live campaigns plus the durable state directory.
pub struct Registry {
    state_dir: Option<PathBuf>,
    clock: Arc<dyn Clock>,
    started: std::time::Instant,
    inner: Mutex<RegistryInner>,
    scale: crate::scale::ScaleJobs,
    notifier: Arc<CampaignNotifier>,
    wal_obs: WalObs,
}

struct RegistryInner {
    campaigns: BTreeMap<String, CampaignHandle>,
}

/// Fresh campaign ids (`c0`, `c1`, …) come from a process-global
/// counter: the metrics registry and event ring are process-global and
/// keyed by campaign id, so two registries in one process (test
/// binaries open many) must never host two live campaigns with the
/// same id.
static NEXT_CAMPAIGN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Milliseconds since the Unix epoch — the default lease clock.
///
/// Kept as a free function for callers that stamp requests themselves;
/// a registry reads its own injected [`Clock`] via
/// [`Registry::now_ms`].
pub fn now_ms() -> u64 {
    SystemClock.now_ms()
}

impl Registry {
    /// Creates a registry on the wall clock; with a state directory,
    /// campaigns checkpointed by a previous process are resumed
    /// immediately.
    pub fn open(state_dir: Option<PathBuf>) -> Result<Registry, ServeError> {
        Registry::open_with_clock(state_dir, Arc::new(SystemClock))
    }

    /// [`Registry::open`] with an injected lease clock — the hook the
    /// mock-clock tests and the `remp-sim` simulator use to run lease
    /// expiry on virtual time.
    pub fn open_with_clock(
        state_dir: Option<PathBuf>,
        clock: Arc<dyn Clock>,
    ) -> Result<Registry, ServeError> {
        let registry = Registry {
            state_dir,
            clock,
            started: std::time::Instant::now(),
            inner: Mutex::new(RegistryInner { campaigns: BTreeMap::new() }),
            scale: crate::scale::ScaleJobs::default(),
            notifier: Arc::new(CampaignNotifier::default()),
            wal_obs: WalObs::new(),
        };
        if let Some(dir) = registry.state_dir.clone() {
            fs::create_dir_all(&dir).map_err(|e| {
                ServeError::internal("state_dir", format!("{}: {e}", dir.display()))
            })?;
            let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
                .map_err(|e| ServeError::internal("state_dir", format!("{}: {e}", dir.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name().is_some_and(|n| n.to_string_lossy().ends_with(".campaign.json"))
                })
                .collect();
            entries.sort();
            for path in entries {
                // One unresumable file (moved KB source, truncated JSON
                // from a hard kill) must not take the healthy campaigns
                // down with it: skip it, leave it on disk for forensics,
                // and keep serving.
                if let Err(e) = registry.resume_from_file(&path) {
                    eprintln!("rempd: skipping unresumable state file {}: {e}", path.display());
                }
            }
        }
        Ok(registry)
    }

    /// The current reading of this registry's lease clock.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// The sharded-campaign coordinators behind the `/scale` routes.
    pub fn scale_jobs(&self) -> &crate::scale::ScaleJobs {
        &self.scale
    }

    /// The long-poll notifier — campaign actors bump it on every event
    /// that could unblock a parked `/next` (accepted answer, pause
    /// flip, shutdown), and the server's dispatcher waits on it.
    pub fn notifier(&self) -> Arc<CampaignNotifier> {
        Arc::clone(&self.notifier)
    }

    /// Total on-disk bytes across the live campaigns' answer WALs —
    /// the `/healthz` serving-pressure number.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_obs.live_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Wall-clock seconds since this registry was opened — the
    /// `/healthz` uptime.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Ids of the live campaigns, with their display names.
    pub fn list(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.campaigns.iter().map(|(id, h)| (id.clone(), h.name.clone())).collect()
    }

    /// Creates a campaign and waits until its actor loaded the KBs and
    /// opened the session (so creation errors surface synchronously).
    pub fn create(&self, spec: CampaignSpec) -> Result<String, ServeError> {
        spec.policy.validate()?;
        spec.config.validate().map_err(|e| ServeError::bad_request("bad_config", e.to_string()))?;
        let id =
            format!("c{}", NEXT_CAMPAIGN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        self.spawn(id.clone(), spec, None)?;
        if let Some(dir) = self.state_dir.clone() {
            // Genesis checkpoint: a crash before the first compaction
            // needs a base for WAL replay to land on.
            if let Err(e) = self.checkpoint_one(&dir, &id) {
                eprintln!("rempd: failed to write genesis checkpoint for {id}: {e}");
            }
        }
        Ok(id)
    }

    fn resume_from_file(&self, path: &Path) -> Result<(), ServeError> {
        let text = fs::read_to_string(path)
            .map_err(|e| ServeError::internal("state_file", format!("{}: {e}", path.display())))?;
        let (id, spec, resume) = decode_state_file(&text).map_err(|mut e| {
            e.message = format!("{}: {}", path.display(), e.message);
            e
        })?;
        {
            let inner = self.inner.lock().expect("registry poisoned");
            if inner.campaigns.contains_key(&id) {
                return Err(ServeError::internal(
                    "state_file",
                    format!("duplicate campaign id {id:?} in state directory"),
                ));
            }
            // Keep fresh ids clear of resumed ones.
            if let Some(n) = id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()) {
                NEXT_CAMPAIGN_ID.fetch_max(n + 1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        self.spawn(id, spec, Some(resume))
    }

    fn spawn(
        &self,
        id: String,
        spec: CampaignSpec,
        resume: Option<ResumeState>,
    ) -> Result<(), ServeError> {
        let (tx, rx) = mpsc::channel::<Call>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServeError>>();
        let actor_spec = spec.clone();
        let actor_id = id.clone();
        let shared = ActorShared {
            state_dir: self.state_dir.clone(),
            notifier: Arc::clone(&self.notifier),
            wal: self.wal_obs.clone(),
        };
        let join = std::thread::Builder::new()
            .name(format!("campaign-{id}"))
            .spawn(move || campaign_actor(&actor_id, actor_spec, resume, shared, ready_tx, rx))
            .map_err(|e| ServeError::internal("spawn", e.to_string()))?;
        match ready_rx.recv() {
            Ok(Ok(())) => {
                let mut inner = self.inner.lock().expect("registry poisoned");
                inner
                    .campaigns
                    .insert(id, CampaignHandle { name: spec.name, tx, join: Some(join) });
                Ok(())
            }
            Ok(Err(e)) => {
                let _ = join.join();
                Err(e)
            }
            Err(_) => {
                let _ = join.join();
                Err(ServeError::internal("spawn", "campaign actor died during startup"))
            }
        }
    }

    /// Sends one request to a campaign actor and waits for the reply.
    pub fn call(&self, id: &str, request: CampaignRequest) -> Result<Json, ServeError> {
        let tx = {
            let inner = self.inner.lock().expect("registry poisoned");
            let handle = inner.campaigns.get(id).ok_or_else(|| {
                ServeError::not_found("unknown_campaign", format!("no campaign {id:?}"))
            })?;
            handle.tx.clone()
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(Call { request, reply: reply_tx })
            .map_err(|_| ServeError::internal("campaign_dead", format!("campaign {id} stopped")))?;
        reply_rx
            .recv()
            .map_err(|_| ServeError::internal("campaign_dead", format!("campaign {id} stopped")))?
    }

    /// Writes every campaign's state file; returns how many were saved.
    /// A no-op without a state directory.
    ///
    /// Best-effort per campaign: one failing write (full disk,
    /// permissions) does not stop the others from being saved — the
    /// error reported is the first one encountered, after every
    /// campaign has been attempted. Each file lands atomically (temp
    /// file + rename), so a crash mid-write can never leave a truncated
    /// state file behind.
    pub fn checkpoint_all(&self) -> Result<usize, ServeError> {
        let Some(dir) = self.state_dir.clone() else {
            return Ok(0);
        };
        let ids: Vec<String> = self.list().into_iter().map(|(id, _)| id).collect();
        let mut saved = 0;
        let mut first_error: Option<ServeError> = None;
        for id in ids {
            match self.checkpoint_one(&dir, &id) {
                Ok(()) => saved += 1,
                Err(e) => {
                    eprintln!("rempd: failed to checkpoint campaign {id}: {e}");
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            None => Ok(saved),
            Some(e) => Err(e),
        }
    }

    fn checkpoint_one(&self, dir: &Path, id: &str) -> Result<(), ServeError> {
        let body = self.call(id, CampaignRequest::Checkpoint)?;
        write_state_file(dir, id, body)
    }

    /// Checkpoints (when durable) and stops every campaign actor.
    ///
    /// The actors are always stopped and joined, even when some
    /// checkpoints could not be written — a shutdown must not leave
    /// threads behind because a disk filled up.
    pub fn shutdown(&self) -> Result<usize, ServeError> {
        let checkpointed = self.checkpoint_all();
        let handles: Vec<CampaignHandle> = {
            let mut inner = self.inner.lock().expect("registry poisoned");
            std::mem::take(&mut inner.campaigns).into_values().collect()
        };
        for mut handle in handles {
            let (reply_tx, _reply_rx) = mpsc::channel();
            let _ = handle.tx.send(Call { request: CampaignRequest::Stop, reply: reply_tx });
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
        // Unblock any long-poll waiter still parked on a campaign.
        self.notifier.notify();
        checkpointed
    }
}

/// Atomically writes `{id}.campaign.json` (temp file + rename),
/// stamping the id into the body so the file is self-describing — the
/// actor does not know its registry id.
fn write_state_file(dir: &Path, id: &str, mut body: Json) -> Result<(), ServeError> {
    if let Json::Obj(fields) = &mut body {
        fields.insert(1, ("id".into(), Json::from(id)));
    }
    let path = dir.join(format!("{id}.campaign.json"));
    let staging = dir.join(format!(".{id}.campaign.json.tmp"));
    let io_err = |p: &Path, e: std::io::Error| {
        ServeError::internal("state_file", format!("{}: {e}", p.display()))
    };
    fs::write(&staging, body.to_pretty_string()).map_err(|e| io_err(&staging, e))?;
    fs::rename(&staging, &path).map_err(|e| io_err(&path, e))
}

// ---- the actor --------------------------------------------------------

/// Accepted answers between compactions before the actor folds the WAL
/// into a fresh checkpoint and truncates it. Keeps replay-on-restart
/// O(128 answers) per campaign regardless of campaign length.
const WAL_COMPACT_EVERY: u64 = 128;

/// Registry-owned resources every actor shares.
struct ActorShared {
    state_dir: Option<PathBuf>,
    notifier: Arc<CampaignNotifier>,
    wal: WalObs,
}

/// Per-actor durability state threaded through request handling.
struct ActorDurability {
    wal: Option<Wal>,
    /// Monotone count of accepted answers — the WAL record seq.
    answer_seq: u64,
    /// Appends since the last compaction.
    since_compact: u64,
    /// Bytes this actor last folded into the shared live-bytes total.
    reported_bytes: u64,
}

/// Reconciles this actor's WAL size into the shared live-bytes gauge.
fn sync_wal_bytes(shared: &WalObs, d: &mut ActorDurability) {
    use std::sync::atomic::Ordering;
    let now = d.wal.as_ref().map_or(0, Wal::bytes);
    match now.cmp(&d.reported_bytes) {
        std::cmp::Ordering::Greater => {
            shared.live_bytes.fetch_add(now - d.reported_bytes, Ordering::Relaxed);
        }
        std::cmp::Ordering::Less => {
            shared.live_bytes.fetch_sub(d.reported_bytes - now, Ordering::Relaxed);
        }
        std::cmp::Ordering::Equal => {}
    }
    d.reported_bytes = now;
}

/// Checkpoint-then-truncate compaction, every [`WAL_COMPACT_EVERY`]
/// accepted answers. Best-effort: a failed checkpoint write leaves the
/// WAL growing (still fully durable), never truncates unfolded records.
fn maybe_compact(
    id: &str,
    spec: &CampaignSpec,
    engine: &CampaignEngine<'_>,
    shared: &ActorShared,
    d: &mut ActorDurability,
) {
    if d.since_compact < WAL_COMPACT_EVERY {
        return;
    }
    let Some(dir) = &shared.state_dir else { return };
    if d.wal.is_none() {
        return;
    }
    match write_state_file(dir, id, encode_state(spec, engine, d.answer_seq)) {
        Ok(()) => {
            let wal = d.wal.as_mut().expect("checked above");
            if let Err(e) = wal.reset() {
                eprintln!("rempd: campaign {id}: failed to truncate compacted WAL: {e}");
            }
            d.since_compact = 0;
            sync_wal_bytes(&shared.wal, d);
        }
        Err(e) => {
            eprintln!("rempd: campaign {id}: compaction checkpoint failed, keeping WAL: {e}");
        }
    }
}

fn campaign_actor(
    id: &str,
    spec: CampaignSpec,
    resume: Option<ResumeState>,
    shared: ActorShared,
    ready: Sender<Result<(), ServeError>>,
    rx: Receiver<Call>,
) {
    // Load/own the KBs, then borrow them for the session — the entire
    // reason this runs on its own thread.
    let loaded = spec.source.load();
    let (kb1, kb2) = match loaded {
        Ok(kbs) => kbs,
        Err(e) => {
            let _ = ready.send(Err(e));
            return;
        }
    };
    let resumed = resume.is_some();
    let resume_answer_seq = resume.as_ref().map_or(0, |s| s.answer_seq);
    let engine = match resume {
        None => Remp::new(spec.config.clone())
            .begin(&kb1, &kb2)
            .map_err(|e| ServeError::bad_request("bad_config", e.to_string()))
            .map(|session| CampaignEngine::new(session, spec.policy.clone())),
        Some(state) => RempSession::resume(&kb1, &kb2, state.session)
            .map_err(|e| ServeError::internal("bad_state", e.to_string()))
            .and_then(|session| {
                CampaignEngine::resume(
                    session,
                    spec.policy.clone(),
                    state.workers,
                    state.answers,
                    state.log,
                    state.paused,
                )
            }),
    };
    let mut engine = match engine {
        Ok(engine) => engine,
        Err(e) => {
            let _ = ready.send(Err(e));
            return;
        }
    };

    // Open and replay the WAL before signalling ready, so resume errors
    // surface synchronously and no request can race the replay.
    let mut durability = ActorDurability {
        wal: None,
        answer_seq: resume_answer_seq,
        since_compact: 0,
        reported_bytes: 0,
    };
    if let Some(dir) = &shared.state_dir {
        let path = wal_path(dir, id);
        match Wal::open(&path) {
            Err(e) => {
                let _ = ready
                    .send(Err(ServeError::internal("wal", format!("{}: {e}", path.display()))));
                return;
            }
            Ok((mut wal, replay)) => {
                if let Some(dropped) = replay.truncated_tail {
                    eprintln!(
                        "rempd: campaign {id}: truncated {dropped} torn WAL byte(s) left by a crash"
                    );
                }
                if resumed {
                    let mut replayed = 0u64;
                    for record in replay.records {
                        if record.seq <= durability.answer_seq {
                            continue; // already folded into the checkpoint
                        }
                        if let Err(e) = engine.replay_answer(
                            &record.worker,
                            QuestionId(record.question),
                            record.says_match,
                            record.now_ms,
                        ) {
                            let _ = ready.send(Err(ServeError::internal(
                                "wal",
                                format!(
                                    "{}: replaying answer seq {}: {}",
                                    path.display(),
                                    record.seq,
                                    e.message
                                ),
                            )));
                            return;
                        }
                        durability.answer_seq = record.seq;
                        durability.since_compact += 1;
                        replayed += 1;
                    }
                    if replayed > 0 {
                        remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
                            (
                                "WAL answers replayed over checkpoint".to_owned(),
                                vec![("replayed", Json::from(replayed))],
                            )
                        });
                    }
                } else if !replay.records.is_empty() {
                    // A fresh campaign must not inherit a stale log left
                    // under the same id by an earlier process.
                    if let Err(e) = wal.reset() {
                        let _ = ready.send(Err(ServeError::internal(
                            "wal",
                            format!("{}: resetting stale WAL: {e}", path.display()),
                        )));
                        return;
                    }
                }
                durability.wal = Some(wal);
                sync_wal_bytes(&shared.wal, &mut durability);
            }
        }
    }

    if ready.send(Ok(())).is_err() {
        return;
    }
    // Observability is observation-only: registration and the per-message
    // gauge refresh never influence engine decisions.
    let obs = remp_obs::enabled().then(|| CampaignObs::register(id, &engine));
    remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
        (
            if resumed {
                "campaign resumed from checkpoint".to_owned()
            } else {
                "campaign started".to_owned()
            },
            vec![("name", Json::from(spec.name.as_str()))],
        )
    });

    while let Ok(Call { request, reply }) = rx.recv() {
        if matches!(request, CampaignRequest::Stop) {
            let _ = reply.send(Ok(Json::Null));
            remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
                ("campaign stopped".to_owned(), Vec::new())
            });
            if let Some(obs) = obs {
                obs.deregister();
            }
            durability.wal = None;
            sync_wal_bytes(&shared.wal, &mut durability);
            return;
        }
        // These can unblock a parked long-poll `/next` (or tell it to
        // fail fast); wake the dispatcher after a successful one.
        let wakes_waiters = matches!(
            request,
            CampaignRequest::Answer { .. } | CampaignRequest::Resume | CampaignRequest::Pause
        );
        let response = handle_request(id, &spec, &mut engine, request, &shared, &mut durability);
        let succeeded = response.is_ok();
        let _ = reply.send(response);
        if let Some(obs) = &obs {
            obs.refresh(&engine);
        }
        if succeeded && wakes_waiters {
            maybe_compact(id, &spec, &engine, &shared, &mut durability);
            shared.notifier.notify();
        }
    }
    durability.wal = None;
    sync_wal_bytes(&shared.wal, &mut durability);
    if let Some(obs) = obs {
        obs.deregister();
    }
}

fn handle_request(
    id: &str,
    spec: &CampaignSpec,
    engine: &mut CampaignEngine<'_>,
    request: CampaignRequest,
    shared: &ActorShared,
    durability: &mut ActorDurability,
) -> Result<Json, ServeError> {
    match request {
        CampaignRequest::Next { worker, now_ms } => {
            let assignment = engine.next_for(&worker, now_ms)?;
            let complete = engine.progress(now_ms)?.complete;
            // With nothing assignable right now, tell the caller (and
            // the long-poll dispatcher) when a lease expiry could
            // change that.
            let retry_at_ms = if assignment.is_none() && !complete {
                engine.earliest_lease_deadline()
            } else {
                None
            };
            Ok(Json::Obj(vec![
                (
                    "assignment".into(),
                    match &assignment {
                        None => Json::Null,
                        Some(a) => question_json(&a.question),
                    },
                ),
                (
                    "deadline_ms".into(),
                    assignment.as_ref().map_or(Json::Null, |a| Json::from(a.deadline_ms)),
                ),
                ("complete".into(), Json::from(complete)),
                ("retry_at_ms".into(), retry_at_ms.map_or(Json::Null, Json::from)),
            ]))
        }
        CampaignRequest::Answer { worker, question, says_match, now_ms } => {
            let ack = engine.answer(&worker, question, says_match, now_ms)?;
            // The answer is accepted: make it durable before anything
            // is acknowledged. A failed append is a 500 — the engine
            // holds the answer, but the client must not treat it as
            // safely recorded.
            durability.answer_seq += 1;
            if let Some(wal) = durability.wal.as_mut() {
                let record = WalRecord {
                    seq: durability.answer_seq,
                    question: question.0,
                    worker: worker.clone(),
                    says_match,
                    now_ms,
                };
                match wal.append(&record) {
                    Ok(appended) => {
                        shared.wal.records.inc();
                        shared.wal.bytes.add(appended);
                        durability.since_compact += 1;
                    }
                    Err(e) => {
                        let path = wal.path().display().to_string();
                        return Err(ServeError::internal(
                            "wal",
                            format!("{path}: appending answer record: {e}"),
                        ));
                    }
                }
                sync_wal_bytes(&shared.wal, durability);
            }
            if let Some(s) = &ack.submitted {
                remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
                    (
                        "question submitted".to_owned(),
                        vec![
                            ("question", Json::from(question.to_string())),
                            ("verdict", Json::from(verdict_code(s.verdict))),
                            ("posterior", Json::from(s.posterior)),
                            ("propagated", Json::from(s.propagated)),
                            ("batch_complete", Json::from(s.batch_complete)),
                        ],
                    )
                });
            }
            Ok(Json::Obj(vec![
                ("question".into(), Json::from(question.to_string())),
                ("collected".into(), Json::from(ack.collected)),
                ("required".into(), Json::from(ack.required)),
                (
                    "submitted".into(),
                    match ack.submitted {
                        None => Json::Null,
                        Some(s) => Json::Obj(vec![
                            ("verdict".into(), Json::from(verdict_code(s.verdict))),
                            ("posterior".into(), Json::from(s.posterior)),
                            ("propagated".into(), Json::from(s.propagated)),
                            ("batch_complete".into(), Json::from(s.batch_complete)),
                        ]),
                    },
                ),
            ]))
        }
        CampaignRequest::Status { now_ms } => {
            let p = engine.progress(now_ms)?;
            Ok(Json::Obj(vec![
                ("name".into(), Json::from(spec.name.as_str())),
                ("paused".into(), Json::from(p.paused)),
                ("complete".into(), Json::from(p.complete)),
                ("loops".into(), Json::from(p.loops)),
                ("questions_asked".into(), Json::from(p.questions_asked)),
                ("issued".into(), Json::from(p.issued)),
                ("open".into(), Json::from(p.open.len())),
                ("workers".into(), Json::from(p.workers)),
                ("per_question".into(), Json::from(engine.policy().per_question)),
                ("leases".into(), crate::engine::lease_stats_json(p.leases)),
                (
                    "worker_quality".into(),
                    crate::engine::worker_quality_json(&engine.worker_estimates()),
                ),
                ("loop_stats".into(), crate::engine::loop_stats_json(engine.loop_stats())),
            ]))
        }
        CampaignRequest::Questions { now_ms } => {
            let open = engine.open_questions(now_ms)?;
            Ok(Json::Obj(vec![(
                "questions".into(),
                Json::Arr(
                    open.into_iter()
                        .map(|(q, collected, leases)| {
                            let mut doc = question_json(&q);
                            if let Json::Obj(fields) = &mut doc {
                                fields.push(("collected".into(), Json::from(collected)));
                                fields.push(("leases".into(), Json::from(leases)));
                            }
                            doc
                        })
                        .collect(),
                ),
            )]))
        }
        CampaignRequest::Workers => {
            let workers = engine.worker_estimates();
            Ok(Json::Obj(vec![
                ("count".into(), Json::from(workers.len())),
                (
                    "workers".into(),
                    Json::Arr(
                        workers
                            .into_iter()
                            .map(|(name, estimate, r)| {
                                Json::Obj(vec![
                                    ("name".into(), Json::from(name)),
                                    ("estimate".into(), Json::from(estimate)),
                                    ("qualification".into(), Json::from(r.qualification)),
                                    ("scored".into(), Json::from(r.scored)),
                                    ("agreed".into(), Json::from(r.agreed)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        CampaignRequest::Outcome => {
            let outcome = engine.outcome();
            Ok(crate::wire::outcome_json(&outcome, engine.log()))
        }
        CampaignRequest::Pause => {
            engine.pause();
            remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
                ("campaign paused".to_owned(), Vec::new())
            });
            Ok(Json::Obj(vec![("paused".into(), Json::from(true))]))
        }
        CampaignRequest::Resume => {
            engine.unpause();
            remp_obs::event(remp_obs::Level::Info, "campaign", Some(id), || {
                ("campaign resumed".to_owned(), Vec::new())
            });
            Ok(Json::Obj(vec![("paused".into(), Json::from(false))]))
        }
        CampaignRequest::Checkpoint => Ok(encode_state(spec, engine, durability.answer_seq)),
        CampaignRequest::Stop => unreachable!("handled by the actor loop"),
    }
}

// ---- state files ------------------------------------------------------

fn encode_state(spec: &CampaignSpec, engine: &CampaignEngine<'_>, answer_seq: u64) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::UInt(STATE_VERSION)),
        ("name".into(), Json::from(spec.name.as_str())),
        ("source".into(), spec.source.to_json()),
        (
            "policy".into(),
            Json::Obj(vec![
                ("per_question".into(), Json::from(spec.policy.per_question)),
                ("qualification".into(), Json::from(spec.policy.qualification)),
                ("quality_weight".into(), Json::from(spec.policy.quality_weight)),
                ("lease_ms".into(), Json::from(spec.policy.lease_ms)),
            ]),
        ),
        ("paused".into(), Json::from(engine.paused())),
        ("answer_seq".into(), Json::UInt(answer_seq)),
        (
            "workers".into(),
            Json::Arr(
                engine
                    .worker_records()
                    .into_iter()
                    .map(|(name, r)| {
                        Json::Obj(vec![
                            ("name".into(), Json::from(name)),
                            ("qualification".into(), Json::from(r.qualification)),
                            ("scored".into(), Json::from(r.scored)),
                            ("agreed".into(), Json::from(r.agreed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "answers".into(),
            Json::Arr(
                engine
                    .open_answers()
                    .into_iter()
                    .map(|(q, w, says)| {
                        Json::Arr(vec![Json::from(q), Json::from(w), Json::from(says)])
                    })
                    .collect(),
            ),
        ),
        ("log".into(), Json::Arr(engine.log().iter().map(SubmittedRecord::to_json).collect())),
        ("session".into(), engine.session_checkpoint().to_json()),
    ])
}

/// Decodes a state file written next to an `{id}.campaign.json` name.
fn decode_state_file(text: &str) -> Result<(String, CampaignSpec, ResumeState), ServeError> {
    let bad = |msg: String| ServeError::internal("state_file", msg);
    let doc = Json::parse(text).map_err(|e| bad(format!("not JSON: {e}")))?;
    let version = doc.get("version").and_then(Json::as_u64);
    if version != Some(STATE_VERSION) {
        return Err(bad(format!("unsupported state version {version:?}")));
    }
    let id =
        doc.get("id").and_then(Json::as_str).ok_or_else(|| bad("missing id".into()))?.to_owned();
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing name".into()))?
        .to_owned();
    let source =
        CampaignSource::from_json(doc.get("source").ok_or_else(|| bad("missing source".into()))?)?;
    let policy_doc = doc.get("policy").ok_or_else(|| bad("missing policy".into()))?;
    let policy = CrowdPolicy {
        per_question: policy_doc
            .get("per_question")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing per_question".into()))?,
        qualification: policy_doc
            .get("qualification")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing qualification".into()))?,
        quality_weight: policy_doc
            .get("quality_weight")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing quality_weight".into()))?,
        lease_ms: policy_doc
            .get("lease_ms")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing lease_ms".into()))?,
    };
    policy.validate()?;
    let paused = doc.get("paused").and_then(Json::as_bool).unwrap_or(false);
    // Additive: pre-WAL state files have no answer_seq, meaning no WAL
    // record is folded in yet.
    let answer_seq = doc.get("answer_seq").and_then(Json::as_u64).unwrap_or(0);
    let workers = doc
        .get("workers")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing workers".into()))?
        .iter()
        .map(|w| {
            Ok((
                w.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("worker without name".into()))?
                    .to_owned(),
                WorkerRecord {
                    qualification: w
                        .get("qualification")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("worker without qualification".into()))?,
                    scored: w
                        .get("scored")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("worker without scored".into()))?,
                    agreed: w
                        .get("agreed")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("worker without agreed".into()))?,
                },
            ))
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    let answers = doc
        .get("answers")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing answers".into()))?
        .iter()
        .map(|entry| {
            let parts = entry.as_array().ok_or_else(|| bad("malformed answer entry".into()))?;
            match parts {
                [q, w, says] => Ok((
                    q.as_u64().ok_or_else(|| bad("bad answer question".into()))?,
                    w.as_str().ok_or_else(|| bad("bad answer worker".into()))?.to_owned(),
                    says.as_bool().ok_or_else(|| bad("bad answer label".into()))?,
                )),
                _ => Err(bad("answer entry is not a triple".into())),
            }
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    let log = doc
        .get("log")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing log".into()))?
        .iter()
        .map(SubmittedRecord::from_json)
        .collect::<Result<Vec<_>, ServeError>>()?;
    let session = SessionCheckpoint::from_json(
        doc.get("session").ok_or_else(|| bad("missing session".into()))?,
    )
    .map_err(|e| bad(e.to_string()))?;
    let spec = CampaignSpec { name, source, config: session.config.clone(), policy };
    Ok((id, spec, ResumeState { session, workers, answers, log, paused, answer_seq }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_datasets::{generate, tiny};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            source: CampaignSource::Preset { preset: "TINY".into(), scale: 1.0 },
            config: RempConfig::default(),
            policy: CrowdPolicy { per_question: 2, ..CrowdPolicy::default() },
        }
    }

    #[test]
    fn create_call_and_stop_round_trip() {
        let registry = Registry::open(None).unwrap();
        let id = registry.create(tiny_spec()).unwrap();
        assert_eq!(registry.list(), vec![(id.clone(), "tiny".to_owned())]);

        let status = registry.call(&id, CampaignRequest::Status { now_ms: 0 }).unwrap();
        assert_eq!(status.get("complete").and_then(Json::as_bool), Some(false));
        assert_eq!(status.get("per_question").and_then(Json::as_usize), Some(2));

        let next =
            registry.call(&id, CampaignRequest::Next { worker: "w0".into(), now_ms: 0 }).unwrap();
        assert!(next.get("assignment").unwrap().get("id").is_some());

        // Leasing the first question forced the first propagation pass;
        // the status now reports where that time went.
        let status = registry.call(&id, CampaignRequest::Status { now_ms: 0 }).unwrap();
        let stats = status.get("loop_stats").expect("loop stats in status");
        assert_eq!(stats.get("propagation_passes").and_then(Json::as_usize), Some(1));
        assert!(stats.get("last").and_then(|l| l.get("full_rebuild")).is_some());

        assert_eq!(
            registry.call("nope", CampaignRequest::Status { now_ms: 0 }).unwrap_err().status,
            404
        );
        registry.shutdown().unwrap();
    }

    #[test]
    fn bad_sources_fail_synchronously() {
        let registry = Registry::open(None).unwrap();
        let mut spec = tiny_spec();
        spec.source = CampaignSource::Preset { preset: "NOPE".into(), scale: 1.0 };
        assert_eq!(registry.create(spec).unwrap_err().code, "unknown_preset");
        let mut spec = tiny_spec();
        spec.source = CampaignSource::Files {
            kb1: PathBuf::from("/definitely/not/here.nt"),
            kb2: PathBuf::from("/definitely/not/here.nt"),
        };
        assert_eq!(registry.create(spec).unwrap_err().code, "bad_kb");
        registry.shutdown().unwrap();
    }

    #[test]
    fn state_files_survive_a_registry_restart() {
        let dir =
            std::env::temp_dir().join(format!("remp-serve-registry-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let d = generate(&tiny(1.0));
        let registry = Registry::open(Some(dir.clone())).unwrap();
        let id = registry.create(tiny_spec()).unwrap();
        // Take a lease and answer once so there is mid-question state.
        let next =
            registry.call(&id, CampaignRequest::Next { worker: "w0".into(), now_ms: 0 }).unwrap();
        let qid: QuestionId = next
            .get("assignment")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        let u1 = next.get("assignment").and_then(|a| a.get("u1")).and_then(Json::as_usize).unwrap();
        let u2 = next.get("assignment").and_then(|a| a.get("u2")).and_then(Json::as_usize).unwrap();
        let truth =
            d.is_match(remp_kb::EntityId::from_index(u1), remp_kb::EntityId::from_index(u2));
        registry
            .call(
                &id,
                CampaignRequest::Answer {
                    worker: "w0".into(),
                    question: qid,
                    says_match: truth,
                    now_ms: 0,
                },
            )
            .unwrap();
        assert_eq!(registry.shutdown().unwrap(), 1);

        // A fresh registry on the same directory resumes the campaign,
        // including the half-answered question.
        let registry = Registry::open(Some(dir.clone())).unwrap();
        assert_eq!(registry.list().len(), 1, "campaign resumed from its state file");
        let err = registry
            .call(
                &id,
                CampaignRequest::Answer {
                    worker: "w0".into(),
                    question: qid,
                    says_match: truth,
                    now_ms: 0,
                },
            )
            .unwrap_err();
        assert_eq!(err.code, "duplicate_answer", "w0's pre-restart answer was restored");
        registry.shutdown().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unresumable_state_files_are_skipped_not_fatal() {
        let dir =
            std::env::temp_dir().join(format!("remp-serve-badstate-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // One healthy campaign checkpointed…
        let registry = Registry::open(Some(dir.clone())).unwrap();
        let id = registry.create(tiny_spec()).unwrap();
        registry.shutdown().unwrap();
        // …plus a file truncated by a hard kill and one that is not JSON.
        fs::write(dir.join("c9.campaign.json"), "{\"version\": 1, \"id\": \"c9\"").unwrap();
        fs::write(dir.join("c8.campaign.json"), "not json at all").unwrap();

        // The healthy campaign must come back; the wrecked ones are
        // skipped (left on disk for forensics), not fatal.
        let registry = Registry::open(Some(dir.clone())).unwrap();
        assert_eq!(registry.list().len(), 1);
        assert_eq!(registry.list()[0].0, id);
        registry.shutdown().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_recovers_answers_the_checkpoint_never_saw() {
        let dir = std::env::temp_dir().join(format!("remp-serve-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let d = generate(&tiny(1.0));
        let registry = Registry::open(Some(dir.clone())).unwrap();
        let id = registry.create(tiny_spec()).unwrap();
        // create() wrote the genesis checkpoint; keep a copy so we can
        // roll the checkpoint back to before the answer, like a crash
        // that never reached a compaction would.
        let state_path = dir.join(format!("{id}.campaign.json"));
        let genesis = fs::read(&state_path).unwrap();
        assert!(registry.wal_bytes() > 0, "WAL header exists on disk");

        let next =
            registry.call(&id, CampaignRequest::Next { worker: "w0".into(), now_ms: 0 }).unwrap();
        let qid: QuestionId = next
            .get("assignment")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        let u1 = next.get("assignment").and_then(|a| a.get("u1")).and_then(Json::as_usize).unwrap();
        let u2 = next.get("assignment").and_then(|a| a.get("u2")).and_then(Json::as_usize).unwrap();
        let truth =
            d.is_match(remp_kb::EntityId::from_index(u1), remp_kb::EntityId::from_index(u2));
        registry
            .call(
                &id,
                CampaignRequest::Answer {
                    worker: "w0".into(),
                    question: qid,
                    says_match: truth,
                    now_ms: 0,
                },
            )
            .unwrap();
        let wal_after_answer = registry.wal_bytes();
        registry.shutdown().unwrap();

        // Roll the checkpoint back to genesis (answer_seq 0) and tack
        // torn garbage onto the WAL — the crash-recovery worst case.
        fs::write(&state_path, &genesis).unwrap();
        let wal_file = dir.join(format!("{id}.wal"));
        let mut wal_bytes = fs::read(&wal_file).unwrap();
        wal_bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        fs::write(&wal_file, &wal_bytes).unwrap();

        let registry = Registry::open(Some(dir.clone())).unwrap();
        assert_eq!(registry.list().len(), 1, "campaign resumed");
        assert_eq!(registry.wal_bytes(), wal_after_answer, "torn tail truncated, record kept");
        let err = registry
            .call(
                &id,
                CampaignRequest::Answer {
                    worker: "w0".into(),
                    question: qid,
                    says_match: truth,
                    now_ms: 0,
                },
            )
            .unwrap_err();
        assert_eq!(err.code, "duplicate_answer", "w0's WAL-only answer was replayed");
        registry.shutdown().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
