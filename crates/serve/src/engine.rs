//! The campaign engine: leases, answer aggregation and online worker
//! quality, wrapped around one [`RempSession`].
//!
//! This is the HIT-management layer of crowdsourced ER (CrowdER's and
//! Wang et al.'s operational core) rebuilt on the session API:
//!
//! * **Assignment.** Every open question is leased to up to
//!   `per_question` *distinct* workers at a time. A lease expires after
//!   `lease_ms`; expired leases re-enter the pool, so a vanished worker
//!   can never stall a campaign — the question is simply re-issued to
//!   the next worker who asks.
//! * **Aggregation.** Answers accumulate per question; the moment the
//!   `per_question`-th distinct worker answers, the labels are built
//!   from the workers' *current estimated qualities* and submitted to
//!   the session (Eq. 17 + Eq. 11 run inside `submit`).
//! * **Quality.** Workers start at the campaign's qualification quality
//!   and are re-scored online against each inferred verdict
//!   ([`WorkerQualityEstimator`]) — the live replacement for
//!   `SimulatedCrowd`'s oracle qualities.
//!
//! The engine is deliberately free of I/O and clocks: `now_ms` is an
//! argument, which makes lease expiry exactly testable and keeps every
//! outcome-visible decision deterministic given the request sequence.

use remp_core::{Question, QuestionId, RempOutcome, RempSession};
use remp_crowd::{Label, Verdict, WorkerQualityEstimator, WorkerRecord};
use remp_obs::Counter;

use crate::wire::{ServeError, SubmittedRecord};

/// Crowd-facing policy of one campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CrowdPolicy {
    /// Distinct workers (and labels) required per question — the
    /// paper's 5 MTurk assignments per HIT.
    pub per_question: usize,
    /// Qualification quality new workers start at.
    pub qualification: f64,
    /// Pseudo-count weight of the qualification in the online estimate.
    pub quality_weight: f64,
    /// Lease lifetime in milliseconds; an unanswered lease expires and
    /// the slot is re-issued.
    pub lease_ms: u64,
}

impl Default for CrowdPolicy {
    fn default() -> CrowdPolicy {
        CrowdPolicy { per_question: 5, qualification: 0.85, quality_weight: 5.0, lease_ms: 60_000 }
    }
}

impl CrowdPolicy {
    /// Validates the policy at campaign creation.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.per_question == 0 {
            return Err(ServeError::bad_request("bad_policy", "per_question must be at least 1"));
        }
        if !(self.qualification > 0.0 && self.qualification < 1.0) {
            return Err(ServeError::bad_request(
                "bad_policy",
                format!("qualification {} must lie in (0, 1)", self.qualification),
            ));
        }
        if !(self.quality_weight.is_finite() && self.quality_weight > 0.0) {
            return Err(ServeError::bad_request(
                "bad_policy",
                format!("quality_weight {} must be positive", self.quality_weight),
            ));
        }
        Ok(())
    }
}

/// A question handed to a worker, with its lease deadline.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// The question to put before the worker.
    pub question: Question,
    /// Absolute lease expiry (same clock as `now_ms`).
    pub deadline_ms: u64,
}

/// What an accepted answer did.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerAck {
    /// Answers collected for the question so far (including this one).
    pub collected: usize,
    /// Required answers.
    pub required: usize,
    /// Present once this answer completed the redundancy and the
    /// question was submitted to the session.
    pub submitted: Option<SubmittedAnswer>,
}

/// Details of a completed submission.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmittedAnswer {
    /// The Eq. 17 verdict.
    pub verdict: Verdict,
    /// The Eq. 17 posterior.
    pub posterior: f64,
    /// Pairs resolved through relational propagation by this verdict.
    pub propagated: usize,
    /// Whether this closed the whole batch.
    pub batch_complete: bool,
}

/// One open question: collected answers plus outstanding leases.
#[derive(Clone, Debug)]
struct OpenSlot {
    question: Question,
    /// `(worker, says_match)` in arrival order.
    answers: Vec<(String, bool)>,
    /// `(worker, expiry_ms)` of live leases.
    leases: Vec<(String, u64)>,
    /// Leases on this question that expired unanswered.
    expired: u64,
    /// Expired leases already covered by a replacement lease.
    reissued: u64,
}

impl OpenSlot {
    fn new(question: Question) -> OpenSlot {
        OpenSlot { question, answers: Vec::new(), leases: Vec::new(), expired: 0, reissued: 0 }
    }
}

/// Process-lifetime lease counters (see [`CampaignEngine::lease_stats`]).
///
/// Deliberately **not** persisted in campaign state files: they are
/// observability for the running process, and the state-file format
/// stays closed under the strict decoder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Leases granted, including re-issues.
    pub issued: u64,
    /// Leases that expired unanswered.
    pub expired: u64,
    /// Grants that replaced an expired lease on the same question.
    pub reissued: u64,
}

/// The engine's live lease instruments: the *same cells* back both the
/// `leases` block of `/campaigns/{id}` status JSON (via
/// [`CampaignEngine::lease_stats`]) and the `remp_leases_*_total` series
/// on `/metrics` (the campaign actor registers clones of these handles
/// under its `campaign` label). One source of truth, two read paths.
#[derive(Clone, Debug, Default)]
pub struct LeaseCounters {
    /// Leases granted, including re-issues.
    pub issued: Counter,
    /// Leases that expired unanswered.
    pub expired: Counter,
    /// Grants that replaced an expired lease on the same question.
    pub reissued: Counter,
}

impl LeaseCounters {
    /// Point-in-time copy of the three counters.
    pub fn snapshot(&self) -> LeaseStats {
        LeaseStats {
            issued: self.issued.get(),
            expired: self.expired.get(),
            reissued: self.reissued.get(),
        }
    }
}

/// Aggregate progress snapshot (see [`CampaignEngine::progress`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Progress {
    /// Whether the campaign accepts work right now.
    pub paused: bool,
    /// Whether the loop has terminated and every question is submitted.
    pub complete: bool,
    /// Completed loops.
    pub loops: usize,
    /// Questions submitted to the session.
    pub questions_asked: usize,
    /// Question ids issued so far.
    pub issued: u64,
    /// Per open question: `(id, collected answers, live leases)`.
    pub open: Vec<(QuestionId, usize, usize)>,
    /// Registered workers.
    pub workers: usize,
    /// Lease counters since the engine was constructed.
    pub leases: LeaseStats,
}

/// Lease-based assignment + aggregation around one session.
///
/// All methods take `&mut self`; the registry serializes access by
/// running one engine per campaign actor thread.
pub struct CampaignEngine<'a> {
    session: RempSession<'a>,
    policy: CrowdPolicy,
    estimator: WorkerQualityEstimator,
    open: Vec<OpenSlot>,
    log: Vec<SubmittedRecord>,
    leases: LeaseCounters,
    paused: bool,
    /// Memoized [`outcome`](Self::outcome); invalidated by each
    /// submitted answer so polling `/outcome` between answers is free.
    outcome_cache: Option<RempOutcome>,
}

impl<'a> CampaignEngine<'a> {
    /// Wraps a fresh session.
    pub fn new(session: RempSession<'a>, policy: CrowdPolicy) -> CampaignEngine<'a> {
        let estimator = WorkerQualityEstimator::new(policy.qualification, policy.quality_weight);
        CampaignEngine {
            session,
            policy,
            estimator,
            open: Vec::new(),
            log: Vec::new(),
            leases: LeaseCounters::default(),
            paused: false,
            outcome_cache: None,
        }
    }

    /// Rebuilds an engine around a resumed session: the open batch comes
    /// back from the session itself, saved answers are re-applied (their
    /// leases are gone — the questions simply re-enter the pool for the
    /// missing slots), and worker records are restored.
    pub fn resume(
        session: RempSession<'a>,
        policy: CrowdPolicy,
        workers: Vec<(String, WorkerRecord)>,
        answers: Vec<(u64, String, bool)>,
        log: Vec<SubmittedRecord>,
        paused: bool,
    ) -> Result<CampaignEngine<'a>, ServeError> {
        let mut engine = CampaignEngine::new(session, policy);
        engine.paused = paused;
        engine.log = log;
        for (name, record) in workers {
            engine.estimator.restore(&name, record);
        }
        engine.open =
            engine.session.open_question_details().into_iter().map(OpenSlot::new).collect();
        for (question, worker, says_match) in answers {
            let Some(slot) = engine.open.iter_mut().find(|s| s.question.id.0 == question) else {
                return Err(ServeError::internal(
                    "bad_state",
                    format!("saved answer references unknown open question q{question}"),
                ));
            };
            if slot.answers.iter().any(|(w, _)| *w == worker) {
                return Err(ServeError::internal(
                    "bad_state",
                    format!("saved answers contain a duplicate for q{question} by {worker:?}"),
                ));
            }
            if slot.answers.len() + 1 >= engine.policy.per_question {
                // A full answer set would have been submitted before the
                // checkpoint was written; reaching it here means the
                // state file was tampered with.
                return Err(ServeError::internal(
                    "bad_state",
                    format!("saved answers over-fill open question q{question}"),
                ));
            }
            slot.answers.push((worker, says_match));
        }
        Ok(engine)
    }

    /// The crowd policy.
    pub fn policy(&self) -> &CrowdPolicy {
        &self.policy
    }

    /// Whether the campaign is paused.
    pub fn paused(&self) -> bool {
        self.paused
    }

    /// Pauses assignment and answering (existing leases keep expiring).
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Resumes a paused campaign.
    pub fn unpause(&mut self) {
        self.paused = false;
    }

    fn ensure_active(&self) -> Result<(), ServeError> {
        if self.paused {
            return Err(ServeError::conflict("paused", "the campaign is paused"));
        }
        Ok(())
    }

    /// Pulls the next batch out of the session when the open pool is
    /// exhausted. Cheap when there is nothing to do.
    fn refill(&mut self) -> Result<(), ServeError> {
        if !self.open.is_empty() || self.paused {
            return Ok(());
        }
        if !self.session.open_questions().is_empty() {
            // Only reachable right after resume: the session still holds
            // an open batch the engine has not mirrored yet.
            self.open =
                self.session.open_question_details().into_iter().map(OpenSlot::new).collect();
            return Ok(());
        }
        if self.session.is_drained() {
            return Ok(());
        }
        if let Some(batch) = self.session.next_batch().map_err(ServeError::from)? {
            self.open = batch.questions.into_iter().map(OpenSlot::new).collect();
        }
        Ok(())
    }

    fn prune_leases(&mut self, now_ms: u64) {
        for slot in &mut self.open {
            let before = slot.leases.len();
            slot.leases.retain(|&(_, expiry)| expiry > now_ms);
            let dropped = (before - slot.leases.len()) as u64;
            slot.expired += dropped;
            self.leases.expired.add(dropped);
        }
    }

    /// Leases the next question to `worker`, registering them on first
    /// contact. `Ok(None)` means nothing is available for this worker
    /// right now (everything leased out, already answered by them, or
    /// the campaign is complete).
    pub fn next_for(
        &mut self,
        worker: &str,
        now_ms: u64,
    ) -> Result<Option<Assignment>, ServeError> {
        self.ensure_active()?;
        if worker.is_empty() {
            return Err(ServeError::bad_request("bad_worker", "worker name must be non-empty"));
        }
        self.refill()?;
        self.prune_leases(now_ms);
        self.estimator.register(worker);
        let per_question = self.policy.per_question;
        let Some(slot) = self.open.iter_mut().find(|slot| {
            slot.answers.len() + slot.leases.len() < per_question
                && !slot.answers.iter().any(|(w, _)| w == worker)
                && !slot.leases.iter().any(|(w, _)| w == worker)
        }) else {
            return Ok(None);
        };
        let deadline_ms = now_ms.saturating_add(self.policy.lease_ms);
        slot.leases.push((worker.to_owned(), deadline_ms));
        self.leases.issued.inc();
        if slot.reissued < slot.expired {
            // This grant covers one of the slot's expired leases.
            slot.reissued += 1;
            self.leases.reissued.inc();
        }
        Ok(Some(Assignment { question: slot.question.clone(), deadline_ms }))
    }

    /// Ingests one worker's answer.
    ///
    /// The worker must hold a live lease on the question; when this
    /// answer completes the redundancy, labels are built from the
    /// current quality estimates and submitted to the session, and the
    /// workers who answered are re-scored against the verdict.
    pub fn answer(
        &mut self,
        worker: &str,
        id: QuestionId,
        says_match: bool,
        now_ms: u64,
    ) -> Result<AnswerAck, ServeError> {
        self.ensure_active()?;
        self.prune_leases(now_ms);
        let Some(idx) = self.open.iter().position(|s| s.question.id == id) else {
            // Not open: either already submitted (a duplicate — 409) or
            // never issued (404). The session draws the same line.
            return Err(if id.0 < self.session.issued_questions() {
                ServeError::conflict(
                    "already_answered",
                    format!(
                        "question {id} already received its {} answers",
                        self.policy.per_question
                    ),
                )
            } else {
                ServeError::not_found("unknown_question", format!("no question {id}"))
            });
        };
        let slot = &mut self.open[idx];
        if slot.answers.iter().any(|(w, _)| w == worker) {
            return Err(ServeError::conflict(
                "duplicate_answer",
                format!("worker {worker:?} already answered question {id}"),
            ));
        }
        let Some(lease_idx) = slot.leases.iter().position(|(w, _)| w == worker) else {
            return Err(ServeError::conflict(
                "no_lease",
                format!(
                    "worker {worker:?} holds no live lease on question {id} (expired or never issued)"
                ),
            ));
        };
        slot.leases.remove(lease_idx);
        slot.answers.push((worker.to_owned(), says_match));
        let collected = slot.answers.len();
        let required = self.policy.per_question;
        if collected < required {
            return Ok(AnswerAck { collected, required, submitted: None });
        }

        // Redundancy met: build labels from the current estimates, in
        // answer-arrival order, and fold them into the session.
        let slot = self.open.remove(idx);
        let labels: Vec<Label> = slot
            .answers
            .iter()
            .map(|(w, says)| Label::new(self.estimator.estimate(w), *says))
            .collect();
        let outcome = self.session.submit(id, labels).map_err(ServeError::from)?;
        self.outcome_cache = None;
        if outcome.verdict != Verdict::Inconsistent {
            let truth = outcome.verdict == Verdict::Match;
            for (w, says) in &slot.answers {
                self.estimator.score(w, *says == truth);
            }
        }
        self.log.push(SubmittedRecord {
            question: id.0,
            pair: slot.question.pair,
            verdict: outcome.verdict,
        });
        Ok(AnswerAck {
            collected,
            required,
            submitted: Some(SubmittedAnswer {
                verdict: outcome.verdict,
                posterior: outcome.posterior,
                propagated: outcome.propagated.len(),
                batch_complete: outcome.batch_complete,
            }),
        })
    }

    /// Re-applies one logged answer during WAL recovery.
    ///
    /// The original acceptance held a live lease, which the WAL does
    /// not persist (leases are transient, like after checkpoint
    /// resume), so this force-issues one before running the normal
    /// [`answer`](Self::answer) path. Replaying records in logged
    /// (seq) order reproduces every outcome-visible decision exactly:
    /// label construction, quality re-scoring and submission order all
    /// depend only on the accepted-answer sequence. The pause flag is
    /// bypassed — the answer was accepted before the crash, so it must
    /// land again even if the campaign checkpointed as paused.
    pub fn replay_answer(
        &mut self,
        worker: &str,
        id: QuestionId,
        says_match: bool,
        now_ms: u64,
    ) -> Result<AnswerAck, ServeError> {
        let was_paused = self.paused;
        self.paused = false;
        // A replayed answer may belong to the batch after the one the
        // checkpoint left open.
        let refilled = self.refill();
        if let Err(e) = refilled {
            self.paused = was_paused;
            return Err(e);
        }
        self.estimator.register(worker);
        if let Some(slot) = self.open.iter_mut().find(|s| s.question.id == id) {
            if !slot.leases.iter().any(|(w, _)| w == worker) {
                let deadline = now_ms.saturating_add(self.policy.lease_ms.max(1));
                slot.leases.push((worker.to_owned(), deadline));
            }
        }
        let result = self.answer(worker, id, says_match, now_ms);
        self.paused = was_paused;
        result
    }

    /// The soonest lease expiry across open questions, if any lease is
    /// live. When [`next_for`](Self::next_for) has nothing for a
    /// worker, this is the next moment an assignment could appear
    /// without a new answer arriving — what the server's long-poll
    /// dispatcher uses to schedule a re-check.
    pub fn earliest_lease_deadline(&self) -> Option<u64> {
        self.open.iter().flat_map(|s| s.leases.iter().map(|&(_, expiry)| expiry)).min()
    }

    /// Current open questions (refilling from the session if needed),
    /// with collected-answer and live-lease counts.
    pub fn open_questions(
        &mut self,
        now_ms: u64,
    ) -> Result<Vec<(Question, usize, usize)>, ServeError> {
        if !self.paused {
            self.refill()?;
        }
        self.prune_leases(now_ms);
        Ok(self
            .open
            .iter()
            .map(|s| (s.question.clone(), s.answers.len(), s.leases.len()))
            .collect())
    }

    /// Aggregate progress.
    pub fn progress(&mut self, now_ms: u64) -> Result<Progress, ServeError> {
        if !self.paused {
            self.refill()?;
        }
        self.prune_leases(now_ms);
        let complete = !self.paused && self.open.is_empty() && self.session.is_drained();
        Ok(Progress {
            paused: self.paused,
            complete,
            loops: self.session.loops(),
            questions_asked: self.session.questions_asked(),
            issued: self.session.issued_questions(),
            open: self
                .open
                .iter()
                .map(|s| (s.question.id, s.answers.len(), s.leases.len()))
                .collect(),
            workers: self.estimator.len(),
            leases: self.leases.snapshot(),
        })
    }

    /// Lease counters since this engine was constructed (issued,
    /// expired, re-issued). Not persisted across restarts.
    pub fn lease_stats(&self) -> LeaseStats {
        self.leases.snapshot()
    }

    /// Clonable handles to the live lease instruments — what the
    /// campaign actor registers on the global metrics registry so
    /// `/metrics` exports exactly the numbers the status endpoint
    /// reports.
    pub fn lease_counters(&self) -> LeaseCounters {
        self.leases.clone()
    }

    /// Cheap observability snapshot for the campaign gauges: `(open
    /// questions, questions asked, registered workers, complete)`.
    /// Unlike [`progress`](Self::progress) this neither refills the
    /// pool nor needs a clock, so the actor can refresh gauges after
    /// every message for free.
    pub fn gauge_snapshot(&self) -> (usize, usize, usize, bool) {
        let complete = !self.paused && self.open.is_empty() && self.session.is_drained();
        (self.open.len(), self.session.questions_asked(), self.estimator.len(), complete)
    }

    /// The final (or provisional) outcome. Works at any point: the
    /// session is cloned (and, when enabled, the isolated-pair
    /// classifier runs), so an operator can inspect a mid-flight
    /// campaign without consuming it. The result is memoized until the
    /// next answer is submitted, so polling a quiet or completed
    /// campaign costs one clone total, not one per request.
    pub fn outcome(&mut self) -> RempOutcome {
        if self.outcome_cache.is_none() {
            self.outcome_cache = Some(self.session.clone().finish());
        }
        self.outcome_cache.clone().expect("filled above")
    }

    /// Submission log in submit order.
    pub fn log(&self) -> &[SubmittedRecord] {
        &self.log
    }

    /// Worker quality records, in worker-name order.
    pub fn worker_records(&self) -> Vec<(String, WorkerRecord)> {
        self.estimator.records().map(|(n, r)| (n.to_owned(), r.clone())).collect()
    }

    /// `(name, current estimate, record)` per registered worker, in
    /// worker-name order — the status/workers view of the estimator.
    pub fn worker_estimates(&self) -> Vec<(String, f64, WorkerRecord)> {
        self.estimator
            .records()
            .map(|(n, r)| (n.to_owned(), self.estimator.estimate(n), r.clone()))
            .collect()
    }

    /// Current quality estimate for one worker.
    pub fn worker_estimate(&self, worker: &str) -> f64 {
        self.estimator.estimate(worker)
    }

    /// The collected-but-unsubmitted answers, for checkpointing.
    pub fn open_answers(&self) -> Vec<(u64, String, bool)> {
        self.open
            .iter()
            .flat_map(|s| s.answers.iter().map(|(w, says)| (s.question.id.0, w.clone(), *says)))
            .collect()
    }

    /// The session checkpoint for durable storage.
    pub fn session_checkpoint(&self) -> remp_core::SessionCheckpoint {
        self.session.checkpoint()
    }

    /// Per-loop stage-2/3 timings and dirty-region counters of the
    /// underlying session — how `rempd` reports where a campaign's
    /// compute time goes.
    pub fn loop_stats(&self) -> &[remp_core::LoopStat] {
        self.session.loop_stats()
    }
}

/// Compact JSON summary of a campaign's loop stats for the status
/// endpoint: totals plus the last loop's dirty-region counters.
pub fn loop_stats_json(stats: &[remp_core::LoopStat]) -> remp_json::Json {
    use remp_json::Json;
    let total: f64 = stats.iter().map(|s| s.total_s()).sum();
    let mut fields = vec![
        ("propagation_passes".into(), Json::from(stats.len())),
        ("stage_total_s".into(), Json::from(total)),
        (
            "consistency_s".into(),
            Json::from(stats.iter().map(|s| s.refresh.consistency_s).sum::<f64>()),
        ),
        (
            "propagation_s".into(),
            Json::from(stats.iter().map(|s| s.refresh.propagation_s).sum::<f64>()),
        ),
        ("inferred_s".into(), Json::from(stats.iter().map(|s| s.refresh.inferred_s).sum::<f64>())),
        ("selection_s".into(), Json::from(stats.iter().map(|s| s.selection_s).sum::<f64>())),
    ];
    if let Some(last) = stats.last() {
        fields.push(("last".into(), last.to_json()));
    }
    Json::Obj(fields)
}

/// JSON form of [`LeaseStats`] for the status endpoint.
pub fn lease_stats_json(stats: LeaseStats) -> remp_json::Json {
    use remp_json::Json;
    Json::Obj(vec![
        ("issued".into(), Json::from(stats.issued)),
        ("expired".into(), Json::from(stats.expired)),
        ("reissued".into(), Json::from(stats.reissued)),
    ])
}

/// Compact worker-quality summary for the status endpoint: worker
/// count plus min/mean/max of the current estimates (nulls when no
/// worker has registered yet).
pub fn worker_quality_json(workers: &[(String, f64, WorkerRecord)]) -> remp_json::Json {
    use remp_json::Json;
    let n = workers.len();
    let (min, max, sum) = workers
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY, 0.0f64), |(lo, hi, sum), (_, est, _)| {
            (lo.min(*est), hi.max(*est), sum + est)
        });
    let field = |v: f64| if n == 0 { Json::Null } else { Json::from(v) };
    Json::Obj(vec![
        ("count".into(), Json::from(n)),
        ("min".into(), field(min)),
        ("mean".into(), field(sum / (n.max(1)) as f64)),
        ("max".into(), field(max)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{Remp, RempConfig};
    use remp_datasets::{generate, tiny, GeneratedDataset};

    fn world() -> GeneratedDataset {
        generate(&tiny(1.0))
    }

    fn policy(per_question: usize, lease_ms: u64) -> CrowdPolicy {
        CrowdPolicy { per_question, lease_ms, ..CrowdPolicy::default() }
    }

    /// Drains an engine with always-correct workers named `w0..wk`.
    fn drain(engine: &mut CampaignEngine<'_>, d: &GeneratedDataset, k: usize) {
        let mut now = 0u64;
        loop {
            let progress = engine.progress(now).unwrap();
            if progress.complete {
                break;
            }
            let mut advanced = false;
            for i in 0..k {
                let worker = format!("w{i}");
                if let Some(a) = engine.next_for(&worker, now).unwrap() {
                    let truth = d.is_match(a.question.pair.0, a.question.pair.1);
                    engine.answer(&worker, a.question.id, truth, now).unwrap();
                    advanced = true;
                }
            }
            assert!(advanced, "no worker made progress; campaign would stall");
            now += 1;
        }
    }

    #[test]
    fn campaign_completes_with_redundant_workers() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(3, 1000));
        drain(&mut engine, &d, 4);
        let outcome = engine.outcome();
        assert!(outcome.questions_asked > 0);
        assert_eq!(engine.log().len(), outcome.questions_asked);
        let progress = engine.progress(0).unwrap();
        assert!(progress.complete);
        assert_eq!(progress.workers, 4);
    }

    #[test]
    fn distinct_workers_are_enforced_per_question() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(2, 1000));
        let a = engine.next_for("w0", 0).unwrap().unwrap();
        // Same worker asking again is routed to a different question (or
        // none), never the one they already hold.
        if let Some(b) = engine.next_for("w0", 0).unwrap() {
            assert_ne!(a.question.id, b.question.id);
        }
        engine.answer("w0", a.question.id, true, 0).unwrap();
        // And having answered, they can neither lease nor answer it again.
        let err = engine.answer("w0", a.question.id, true, 0).unwrap_err();
        assert_eq!(err.code, "duplicate_answer");
        assert_eq!(err.status, 409);
    }

    #[test]
    fn answers_require_a_live_lease() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(2, 100));
        let a = engine.next_for("w0", 0).unwrap().unwrap();
        // A worker who never leased gets a typed conflict.
        let err = engine.answer("w1", a.question.id, true, 0).unwrap_err();
        assert_eq!((err.status, err.code), (409, "no_lease"));
        // The lease expires at deadline; a late answer is the same conflict.
        let err = engine.answer("w0", a.question.id, true, a.deadline_ms).unwrap_err();
        assert_eq!((err.status, err.code), (409, "no_lease"));
    }

    #[test]
    fn expired_leases_reissue_and_the_outcome_is_unchanged() {
        let d = world();
        let remp = Remp::new(RempConfig::default());

        // Reference: no losses, workers w0/w1 answer everything.
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut reference = CampaignEngine::new(session, policy(2, 1000));
        drain(&mut reference, &d, 2);

        // Lossy run: a ghost worker takes the very first lease of every
        // batch and vanishes; after expiry the question re-enters the
        // pool and the same two reliable workers finish the campaign.
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut lossy = CampaignEngine::new(session, policy(2, 50));
        let mut now = 0u64;
        let first = lossy.next_for("ghost", now).unwrap().expect("campaign opens with questions");
        now = first.deadline_ms; // ghost's lease is now expired
        loop {
            if lossy.progress(now).unwrap().complete {
                break;
            }
            let mut advanced = false;
            for worker in ["w0", "w1"] {
                if let Some(a) = lossy.next_for(worker, now).unwrap() {
                    let truth = d.is_match(a.question.pair.0, a.question.pair.1);
                    lossy.answer(worker, a.question.id, truth, now).unwrap();
                    advanced = true;
                }
            }
            assert!(advanced, "expired lease failed to re-enter the pool");
            now += 1;
        }
        // The ghost never answered: resolutions, matches and question
        // order are identical to the lossless run.
        assert_eq!(lossy.outcome(), reference.outcome());
        assert_eq!(lossy.log(), reference.log());

        // The counters tell the loss story: the ghost's lease expired
        // and its question was re-issued; the clean run saw neither.
        let stats = lossy.lease_stats();
        assert_eq!(stats.expired, 1, "exactly the ghost's lease expired");
        assert_eq!(stats.reissued, 1, "the ghost's question was re-issued once");
        assert_eq!(stats.issued, reference.lease_stats().issued + 1);
        let clean = reference.lease_stats();
        assert_eq!((clean.expired, clean.reissued), (0, 0));
        assert_eq!(clean.issued as usize, reference.log().len() * 2, "2 leases per question");
    }

    #[test]
    fn closed_questions_conflict_and_fresh_ids_are_unknown() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(1, 1000));
        let a = engine.next_for("w0", 0).unwrap().unwrap();
        engine.answer("w0", a.question.id, true, 0).unwrap();
        // per_question = 1, so the question is closed: 409 for anyone.
        let err = engine.answer("w1", a.question.id, true, 0).unwrap_err();
        assert_eq!((err.status, err.code), (409, "already_answered"));
        // An id that was never issued is 404.
        let err = engine.answer("w1", QuestionId(u64::MAX), true, 0).unwrap_err();
        assert_eq!((err.status, err.code), (404, "unknown_question"));
    }

    #[test]
    fn pause_blocks_work_and_resume_restores_it() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(2, 1000));
        let a = engine.next_for("w0", 0).unwrap().unwrap();
        engine.pause();
        assert_eq!(engine.next_for("w1", 0).unwrap_err().code, "paused");
        assert_eq!(engine.answer("w0", a.question.id, true, 0).unwrap_err().code, "paused");
        assert!(engine.progress(0).unwrap().paused);
        engine.unpause();
        engine.answer("w0", a.question.id, true, 0).unwrap();
    }

    #[test]
    fn quality_estimates_move_with_agreement() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(3, 1000));
        let q0 = engine.policy().qualification;
        // w0 and w1 answer truthfully, `liar` always inverts; after a few
        // questions the estimator separates them.
        let mut submitted = 0;
        let mut now = 0;
        while submitted < 3 {
            let mut advanced = false;
            for worker in ["w0", "w1", "liar"] {
                if let Some(a) = engine.next_for(worker, now).unwrap() {
                    let truth = d.is_match(a.question.pair.0, a.question.pair.1);
                    let says = if worker == "liar" { !truth } else { truth };
                    let ack = engine.answer(worker, a.question.id, says, now).unwrap();
                    if ack.submitted.is_some() {
                        submitted += 1;
                    }
                    advanced = true;
                }
            }
            assert!(advanced);
            now += 1;
        }
        assert!(engine.worker_estimate("w0") > q0, "{}", engine.worker_estimate("w0"));
        assert!(engine.worker_estimate("liar") < q0, "{}", engine.worker_estimate("liar"));
    }

    #[test]
    fn checkpoint_resume_mid_question_preserves_the_campaign() {
        let d = world();
        let remp = Remp::new(RempConfig::default());

        // Reference run, uninterrupted.
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut reference = CampaignEngine::new(session, policy(2, 1000));
        drain(&mut reference, &d, 2);

        // Interrupted run: stop mid-question (one of two answers in).
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(2, 1000));
        let a = engine.next_for("w0", 0).unwrap().unwrap();
        let truth = d.is_match(a.question.pair.0, a.question.pair.1);
        engine.answer("w0", a.question.id, truth, 0).unwrap();

        let checkpoint = engine.session_checkpoint();
        let workers = engine.worker_records();
        let answers = engine.open_answers();
        let log = engine.log().to_vec();
        drop(engine);

        let session = RempSession::resume(&d.kb1, &d.kb2, checkpoint).unwrap();
        let mut resumed =
            CampaignEngine::resume(session, policy(2, 1000), workers, answers, log, false).unwrap();
        // w0's answer survived: w0 cannot answer again, w1 completes it.
        let err = engine_answer_via_lease(&mut resumed, "w0", 1);
        assert_eq!(err.unwrap_err().code, "duplicate_answer");
        drain(&mut resumed, &d, 2);
        assert_eq!(resumed.outcome(), reference.outcome());
        assert_eq!(resumed.log(), reference.log());
    }

    #[test]
    fn replayed_answers_reproduce_the_campaign() {
        let d = world();
        let remp = Remp::new(RempConfig::default());

        // Reference run, recording every accepted answer with its
        // engine-clock timestamp — exactly what the WAL persists.
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut reference = CampaignEngine::new(session, policy(2, 1000));
        let mut accepted: Vec<(String, u64, bool, u64)> = Vec::new();
        let mut now = 0u64;
        loop {
            if reference.progress(now).unwrap().complete {
                break;
            }
            let mut advanced = false;
            for i in 0..2 {
                let worker = format!("w{i}");
                if let Some(a) = reference.next_for(&worker, now).unwrap() {
                    let truth = d.is_match(a.question.pair.0, a.question.pair.1);
                    reference.answer(&worker, a.question.id, truth, now).unwrap();
                    accepted.push((worker, a.question.id.0, truth, now));
                    advanced = true;
                }
            }
            assert!(advanced);
            now += 1;
        }
        assert!(!accepted.is_empty());

        // Replaying the log on a fresh engine reproduces the campaign
        // bit-identically — no leases, no worker polling.
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut replayed = CampaignEngine::new(session, policy(2, 1000));
        for (worker, question, says, at) in &accepted {
            replayed.replay_answer(worker, QuestionId(*question), *says, *at).unwrap();
        }
        assert_eq!(replayed.outcome(), reference.outcome());
        assert_eq!(replayed.log(), reference.log());
        assert!(replayed.progress(now).unwrap().complete);
    }

    #[test]
    fn earliest_lease_deadline_tracks_live_leases() {
        let d = world();
        let remp = Remp::new(RempConfig::default());
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut engine = CampaignEngine::new(session, policy(2, 1000));
        assert_eq!(engine.earliest_lease_deadline(), None);
        let a = engine.next_for("w0", 10).unwrap().unwrap();
        assert_eq!(engine.earliest_lease_deadline(), Some(a.deadline_ms));
        let b = engine.next_for("w1", 25).unwrap().unwrap();
        assert_eq!(engine.earliest_lease_deadline(), Some(a.deadline_ms.min(b.deadline_ms)));
    }

    /// Tries to lease + answer the first open question as `worker`.
    fn engine_answer_via_lease(
        engine: &mut CampaignEngine<'_>,
        worker: &str,
        now: u64,
    ) -> Result<AnswerAck, ServeError> {
        let open = engine.open_questions(now).unwrap();
        let id = open.first().expect("an open question").0.id;
        engine.answer(worker, id, true, now)
    }
}
