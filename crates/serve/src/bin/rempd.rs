//! `rempd` — the crowd-campaign server daemon.
//!
//! ```text
//! rempd --addr 127.0.0.1:8787 --state-dir ./campaigns
//! ```
//!
//! Runs until SIGTERM/SIGINT (or the process is killed), then shuts
//! down gracefully: in-flight requests finish, every campaign is
//! checkpointed into the state directory, and the campaign actors are
//! joined. Start a new `rempd` on the same `--state-dir` and every
//! campaign resumes where it stopped — mid-batch, even mid-question.

use std::path::PathBuf;
use std::process::ExitCode;

use remp_par::Parallelism;
use remp_serve::{install_signal_handlers, signal_stop_flag, Server, ServerConfig};

const USAGE: &str = "\
rempd — crowd-campaign HTTP server (see crates/serve/PROTOCOL.md)

USAGE:
    rempd [--addr HOST:PORT] [--state-dir DIR] [--threads N|auto|sequential]

OPTIONS:
    --addr HOST:PORT    bind address                [127.0.0.1:8787]
    --state-dir DIR     durable campaign state; campaigns checkpointed
                        there on shutdown are resumed on the next start
    --threads POLICY    HTTP handler pool size      [auto]

Observability: GET /metrics serves Prometheus text exposition and
GET /campaigns/ID/events the recent structured events; REMP_OBS=0
disables instrumentation, REMP_LOG=debug|info|warn|error sets the
stderr event-log level (default: warn; debug includes an access log).
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rempd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.to_owned(),
            "--state-dir" => config.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--threads" => {
                let raw = value("--threads")?;
                config.parallelism = Parallelism::from_label(raw)
                    .ok_or_else(|| format!("--threads: unknown policy {raw:?}\n\n{USAGE}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }

    install_signal_handlers();
    let server = Server::bind(&config).map_err(|e| e.to_string())?;
    let resumed = server.registry().list();
    println!("rempd listening on http://{}", server.local_addr());
    match &config.state_dir {
        Some(dir) => println!("rempd state directory: {}", dir.display()),
        None => println!("rempd running without durable state (--state-dir to enable)"),
    }
    for (id, name) in resumed {
        println!("rempd resumed campaign {id} ({name})");
    }
    let saved = server.run(signal_stop_flag()).map_err(|e| e.to_string())?;
    println!("rempd shut down cleanly; {saved} campaign(s) checkpointed");
    Ok(())
}
