//! A minimal HTTP client for the campaign API — what `rempctl drive`,
//! the tests and remote tooling use to talk to `rempd`.
//!
//! One TCP connection per request (the server answers
//! `Connection: close`), JSON in and out, with API errors surfaced as
//! typed [`ClientError::Api`] values carrying the server's status and
//! error code.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use remp_json::Json;

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Could not reach the server or the connection broke.
    Io(String),
    /// The response violated the protocol (not HTTP, not JSON, ...).
    Protocol(String),
    /// The server answered with a non-2xx API error.
    Api {
        /// HTTP status.
        status: u16,
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "connection error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Api { status, code, message } => {
                write!(f, "server error {status} ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// The API error code, if this is an API error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Api { code, .. } => Some(code),
            _ => None,
        }
    }

    /// The HTTP status, if this is an API error.
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Api { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// A campaign-API client bound to one server address.
#[derive(Clone, Debug)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// Accepts `host:port` or `http://host:port`.
    pub fn new(addr: impl Into<String>) -> ServeClient {
        let addr = addr.into();
        let addr = addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_owned();
        ServeClient { addr }
    }

    /// The `host:port` this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET path`, expecting a 2xx JSON response.
    pub fn get(&self, path: &str) -> Result<Json, ClientError> {
        self.request("GET", path, None).and_then(expect_ok)
    }

    /// `POST path` with a JSON body, expecting a 2xx JSON response.
    pub fn post(&self, path: &str, body: &Json) -> Result<Json, ClientError> {
        self.request("POST", path, Some(body)).and_then(expect_ok)
    }

    /// Raw request: returns `(status, parsed body)` without turning
    /// non-2xx into an error (the malformed-input tests need this).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body = body.map(|b| b.to_string());
        self.request_raw(method, path, body.as_deref().map(str::as_bytes))
    }

    /// `GET path` returning `(status, raw body text)` with no JSON
    /// parsing — `/metrics` answers Prometheus text exposition, not
    /// JSON.
    pub fn get_text(&self, path: &str) -> Result<(u16, String), ClientError> {
        let raw = self.exchange("GET", path, b"")?;
        let (status, body) = split_response(&raw)?;
        let text = std::str::from_utf8(body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
        Ok((status, text.to_owned()))
    }

    /// Like [`request`](Self::request) but with an arbitrary byte body —
    /// lets tests send deliberately broken JSON.
    pub fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Json), ClientError> {
        let raw = self.exchange(method, path, body.unwrap_or(b""))?;
        parse_response(&raw)
    }

    /// One full request/response cycle, returning the raw response
    /// bytes.
    fn exchange(&self, method: &str, path: &str, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        // The request goes out in small writes; without nodelay, Nagle +
        // delayed ACKs add tens of milliseconds per round trip.
        let _ = stream.set_nodelay(true);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes()).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.write_all(body).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.flush().map_err(|e| ClientError::Io(e.to_string()))?;

        let mut reader = BufReader::new(stream);
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw).map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(raw)
    }
}

fn expect_ok((status, doc): (u16, Json)) -> Result<Json, ClientError> {
    if (200..300).contains(&status) {
        return Ok(doc);
    }
    let error = doc.get("error");
    Err(ClientError::Api {
        status,
        code: error
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_owned(),
        message: error
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("(no message)")
            .to_owned(),
    })
}

/// Splits a raw response into `(status, body bytes)`.
fn split_response(raw: &[u8]) -> Result<(u16, &[u8]), ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response without header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    Ok((status, &raw[header_end + 4..]))
}

fn parse_response(raw: &[u8]) -> Result<(u16, Json), ClientError> {
    let (status, body) = split_response(raw)?;
    let text = std::str::from_utf8(body)
        .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
    let doc = if text.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("response body is not JSON: {e}")))?
    };
    Ok((status, doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_normalisation() {
        assert_eq!(ServeClient::new("http://127.0.0.1:80/").addr(), "127.0.0.1:80");
        assert_eq!(ServeClient::new("127.0.0.1:80").addr(), "127.0.0.1:80");
    }

    #[test]
    fn responses_parse_and_api_errors_are_typed() {
        let raw = b"HTTP/1.1 409 Conflict\r\ncontent-type: application/json\r\n\r\n{\"error\":{\"code\":\"dup\",\"message\":\"no\"}}";
        let (status, doc) = parse_response(raw).unwrap();
        assert_eq!(status, 409);
        let err = expect_ok((status, doc)).unwrap_err();
        assert_eq!(err.code(), Some("dup"));
        assert_eq!(err.status(), Some(409));

        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 ??\r\n\r\n").is_err());
    }
}
