//! A minimal HTTP client for the campaign API — what `rempctl drive`,
//! the tests and remote tooling use to talk to `rempd`.
//!
//! The client keeps its TCP connection open across calls (HTTP/1.1
//! keep-alive) and reconnects transparently when the server has idle-
//! closed it between requests. JSON in and out, with API errors
//! surfaced as typed [`ClientError::Api`] values carrying the server's
//! status and error code. Clones share the reuse counter but each get
//! their own cached connection, so a clone per thread is the natural
//! way to fan out.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use remp_json::Json;

/// Largest accepted response head (status line + headers), in bytes.
const MAX_RESPONSE_HEAD: usize = 16 * 1024;

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Could not reach the server or the connection broke.
    Io(String),
    /// The response violated the protocol (not HTTP, not JSON, ...).
    Protocol(String),
    /// The server answered with a non-2xx API error.
    Api {
        /// HTTP status.
        status: u16,
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "connection error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Api { status, code, message } => {
                write!(f, "server error {status} ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// The API error code, if this is an API error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Api { code, .. } => Some(code),
            _ => None,
        }
    }

    /// The HTTP status, if this is an API error.
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Api { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// How an attempt on one connection failed — a retryable failure means
/// the request can safely be replayed on a fresh connection because no
/// response byte was received (the server closed an idle keep-alive
/// connection before reading the request).
enum ExchangeError {
    Retryable(String),
    Fatal(ClientError),
}

/// A campaign-API client bound to one server address.
pub struct ServeClient {
    addr: String,
    keepalive: bool,
    conn: Mutex<Option<BufReader<TcpStream>>>,
    reused: Arc<AtomicU64>,
}

impl Clone for ServeClient {
    fn clone(&self) -> ServeClient {
        // Each clone gets its own cached connection (a TCP stream can't
        // be shared across concurrent requests) but shares the reuse
        // counter, so per-process totals stay meaningful.
        ServeClient {
            addr: self.addr.clone(),
            keepalive: self.keepalive,
            conn: Mutex::new(None),
            reused: Arc::clone(&self.reused),
        }
    }
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("addr", &self.addr)
            .field("keepalive", &self.keepalive)
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Accepts `host:port` or `http://host:port`.
    pub fn new(addr: impl Into<String>) -> ServeClient {
        let addr = addr.into();
        let addr = addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_owned();
        ServeClient {
            addr,
            keepalive: true,
            conn: Mutex::new(None),
            reused: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The `host:port` this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Turns connection reuse on or off. Off means every request sends
    /// `Connection: close` and dials a fresh connection — the one-shot
    /// baseline `rempctl storm` measures against.
    pub fn set_keepalive(&mut self, on: bool) {
        self.keepalive = on;
        if !on {
            *self.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }

    /// How many requests (across this client and its clones) were
    /// served on an already-established connection.
    pub fn reuse_count(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// `GET path`, expecting a 2xx JSON response.
    pub fn get(&self, path: &str) -> Result<Json, ClientError> {
        self.request("GET", path, None).and_then(expect_ok)
    }

    /// `POST path` with a JSON body, expecting a 2xx JSON response.
    pub fn post(&self, path: &str, body: &Json) -> Result<Json, ClientError> {
        self.request("POST", path, Some(body)).and_then(expect_ok)
    }

    /// Raw request: returns `(status, parsed body)` without turning
    /// non-2xx into an error (the malformed-input tests need this).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body = body.map(|b| b.to_string());
        self.request_raw(method, path, body.as_deref().map(str::as_bytes))
    }

    /// `GET path` returning `(status, raw body text)` with no JSON
    /// parsing — `/metrics` answers Prometheus text exposition, not
    /// JSON.
    pub fn get_text(&self, path: &str) -> Result<(u16, String), ClientError> {
        let raw = self.exchange("GET", path, b"")?;
        let (status, body) = split_response(&raw)?;
        let text = std::str::from_utf8(body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
        Ok((status, text.to_owned()))
    }

    /// Like [`request`](Self::request) but with an arbitrary byte body —
    /// lets tests send deliberately broken JSON.
    pub fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Json), ClientError> {
        let raw = self.exchange(method, path, body.unwrap_or(b""))?;
        parse_response(&raw)
    }

    /// One full request/response cycle, returning the raw response
    /// bytes. Tries the cached connection first; if the server closed
    /// it while idle (EOF or reset before any response byte), retries
    /// once on a fresh connection.
    fn exchange(&self, method: &str, path: &str, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        let mut cached = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut reader) = cached.take() {
            match self.try_exchange(&mut reader, method, path, body) {
                Ok((raw, reuse)) => {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    if reuse {
                        *cached = Some(reader);
                    }
                    return Ok(raw);
                }
                Err(ExchangeError::Retryable(_)) => {} // fall through to a fresh dial
                Err(ExchangeError::Fatal(e)) => return Err(e),
            }
        }
        let stream = TcpStream::connect(&self.addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        // The request goes out in small writes; without nodelay, Nagle +
        // delayed ACKs add tens of milliseconds per round trip.
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream);
        match self.try_exchange(&mut reader, method, path, body) {
            Ok((raw, reuse)) => {
                if reuse {
                    *cached = Some(reader);
                }
                Ok(raw)
            }
            Err(ExchangeError::Retryable(msg))
            | Err(ExchangeError::Fatal(ClientError::Io(msg))) => Err(ClientError::Io(msg)),
            Err(ExchangeError::Fatal(e)) => Err(e),
        }
    }

    /// Writes one request and reads one complete response off `reader`.
    /// Returns the raw response bytes and whether the connection can be
    /// reused for the next request.
    fn try_exchange(
        &self,
        reader: &mut BufReader<TcpStream>,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(Vec<u8>, bool), ExchangeError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.addr,
            body.len(),
            if self.keepalive { "keep-alive" } else { "close" }
        );
        let stream = reader.get_mut();
        let send = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());
        if let Err(e) = send {
            return Err(ExchangeError::Retryable(e.to_string()));
        }

        // Read the response head byte-by-byte off the buffered reader
        // until the blank line; the body length then comes from
        // `content-length`, so the connection stays positioned at the
        // next response.
        let mut raw = Vec::with_capacity(256);
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            match reader.read(&mut byte) {
                Ok(0) => {
                    return Err(if raw.is_empty() {
                        ExchangeError::Retryable("connection closed before response".into())
                    } else {
                        ExchangeError::Fatal(ClientError::Io(
                            "connection closed mid-response".into(),
                        ))
                    });
                }
                Ok(_) => {
                    raw.push(byte[0]);
                    if raw.len() > MAX_RESPONSE_HEAD {
                        return Err(ExchangeError::Fatal(ClientError::Protocol(format!(
                            "response head beyond {MAX_RESPONSE_HEAD} bytes"
                        ))));
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(if raw.is_empty() {
                        ExchangeError::Retryable(e.to_string())
                    } else {
                        ExchangeError::Fatal(ClientError::Io(e.to_string()))
                    });
                }
            }
        }

        let head_text = std::str::from_utf8(&raw[..raw.len() - 4]).map_err(|_| {
            ExchangeError::Fatal(ClientError::Protocol("non-UTF-8 response head".into()))
        })?;
        let mut content_length: Option<usize> = None;
        let mut server_close = false;
        for line in head_text.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else { continue };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                server_close = true;
            }
        }
        let reuse = match content_length {
            Some(len) => {
                let mut body = vec![0u8; len];
                reader
                    .read_exact(&mut body)
                    .map_err(|e| ExchangeError::Fatal(ClientError::Io(e.to_string())))?;
                raw.extend_from_slice(&body);
                self.keepalive && !server_close
            }
            None => {
                // No length means the body runs to EOF; the connection
                // is spent either way.
                reader
                    .read_to_end(&mut raw)
                    .map_err(|e| ExchangeError::Fatal(ClientError::Io(e.to_string())))?;
                false
            }
        };
        Ok((raw, reuse))
    }
}

fn expect_ok((status, doc): (u16, Json)) -> Result<Json, ClientError> {
    if (200..300).contains(&status) {
        return Ok(doc);
    }
    let error = doc.get("error");
    Err(ClientError::Api {
        status,
        code: error
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_owned(),
        message: error
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("(no message)")
            .to_owned(),
    })
}

/// Splits a raw response into `(status, body bytes)`.
fn split_response(raw: &[u8]) -> Result<(u16, &[u8]), ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response without header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol("non-UTF-8 response head".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    Ok((status, &raw[header_end + 4..]))
}

fn parse_response(raw: &[u8]) -> Result<(u16, Json), ClientError> {
    let (status, body) = split_response(raw)?;
    let text = std::str::from_utf8(body)
        .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
    let doc = if text.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("response body is not JSON: {e}")))?
    };
    Ok((status, doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn addr_normalisation() {
        assert_eq!(ServeClient::new("http://127.0.0.1:80/").addr(), "127.0.0.1:80");
        assert_eq!(ServeClient::new("127.0.0.1:80").addr(), "127.0.0.1:80");
    }

    #[test]
    fn responses_parse_and_api_errors_are_typed() {
        let raw = b"HTTP/1.1 409 Conflict\r\ncontent-type: application/json\r\n\r\n{\"error\":{\"code\":\"dup\",\"message\":\"no\"}}";
        let (status, doc) = parse_response(raw).unwrap();
        assert_eq!(status, 409);
        let err = expect_ok((status, doc)).unwrap_err();
        assert_eq!(err.code(), Some("dup"));
        assert_eq!(err.status(), Some(409));

        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 ??\r\n\r\n").is_err());
    }

    /// Serves `per_conn` canned keep-alive responses on each of `conns`
    /// accepted connections, then closes. Returns the total number of
    /// requests it saw.
    fn canned_server(
        listener: TcpListener,
        conns: usize,
        per_conn: usize,
    ) -> thread::JoinHandle<usize> {
        thread::spawn(move || {
            let mut served = 0usize;
            for _ in 0..conns {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for _ in 0..per_conn {
                    let req = crate::http::read_request(&mut reader).unwrap();
                    if req.is_none() {
                        break;
                    }
                    served += 1;
                    stream
                        .write_all(
                            b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\n{}",
                        )
                        .unwrap();
                }
                // Dropping the stream closes the connection.
            }
            served
        })
    }

    #[test]
    fn keepalive_reuses_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = canned_server(listener, 1, 3);
        let client = ServeClient::new(addr);
        for _ in 0..3 {
            client.get("/x").unwrap();
        }
        assert_eq!(client.reuse_count(), 2, "requests 2 and 3 should reuse the connection");
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn reconnects_transparently_when_the_server_drops_an_idle_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // One response per connection: after each response the server
        // hangs up, so the client's cached connection is dead on the
        // next call and it must redial without surfacing an error.
        let server = canned_server(listener, 2, 1);
        let client = ServeClient::new(addr);
        client.get("/a").unwrap();
        client.get("/b").unwrap();
        assert_eq!(client.reuse_count(), 0, "every request needed a fresh connection");
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn one_shot_mode_never_reuses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = canned_server(listener, 2, 1);
        let mut client = ServeClient::new(addr);
        client.set_keepalive(false);
        client.get("/a").unwrap();
        client.get("/b").unwrap();
        assert_eq!(client.reuse_count(), 0);
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn clones_share_the_reuse_counter_but_not_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = canned_server(listener, 2, 2);
        let client = ServeClient::new(addr);
        let clone = client.clone();
        client.get("/a").unwrap();
        client.get("/a").unwrap();
        clone.get("/b").unwrap();
        clone.get("/b").unwrap();
        assert_eq!(client.reuse_count(), 2);
        assert_eq!(clone.reuse_count(), 2, "clones share the counter");
        assert_eq!(server.join().unwrap(), 4);
    }
}
