//! The JSON wire protocol: typed API errors, request-body accessors and
//! the encoders for every response shape (documented end-to-end in
//! `PROTOCOL.md`).
//!
//! Everything here is total: malformed bodies become a 400
//! [`ServeError`], session errors map onto the HTTP status that matches
//! their meaning (duplicate submits are 409, unknown ids 404), and no
//! wire input can panic the encoder or decoder.

use remp_core::{Question, QuestionId, RempError, RempOutcome};
use remp_crowd::Verdict;
use remp_json::Json;
use remp_kb::EntityId;

/// A typed API error: HTTP status, stable machine-readable code, and a
/// human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status the server responds with.
    pub status: u16,
    /// Stable error code clients can switch on.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// 400 with the given code.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError { status: 400, code, message: message.into() }
    }

    /// 404 with the given code.
    pub fn not_found(code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError { status: 404, code, message: message.into() }
    }

    /// 409 with the given code.
    pub fn conflict(code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError { status: 409, code, message: message.into() }
    }

    /// 500 with the given code.
    pub fn internal(code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError { status: 500, code, message: message.into() }
    }

    /// The response body for this error.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::from(self.code)),
                ("message".into(), Json::from(self.message.as_str())),
            ]),
        )])
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ServeError {}

/// Maps a session error onto the HTTP semantics it carries: a duplicate
/// submit is a client-visible conflict, an unknown id is a missing
/// resource, everything else is a server-side invariant breach.
impl From<RempError> for ServeError {
    fn from(e: RempError) -> ServeError {
        match e {
            RempError::AlreadyAnswered(id) => {
                ServeError::conflict("already_answered", format!("question {id} is closed"))
            }
            RempError::UnknownQuestion(id) => {
                ServeError::not_found("unknown_question", format!("no question {id}"))
            }
            RempError::EmptyLabels(id) => {
                ServeError::bad_request("empty_labels", format!("no labels for question {id}"))
            }
            other => ServeError::internal("session_error", other.to_string()),
        }
    }
}

// ---- request-body accessors ------------------------------------------

/// Parses a request body as a JSON object.
pub fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("bad_body", "body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ServeError::bad_request("bad_json", format!("body is not JSON: {e}")))?;
    if doc.as_object().is_none() {
        return Err(ServeError::bad_request("bad_json", "body must be a JSON object"));
    }
    Ok(doc)
}

/// Required string field.
pub fn body_str<'j>(doc: &'j Json, key: &str) -> Result<&'j str, ServeError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad_request("missing_field", format!("field '{key}' (string)")))
}

/// Required bool field.
pub fn body_bool(doc: &Json, key: &str) -> Result<bool, ServeError> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ServeError::bad_request("missing_field", format!("field '{key}' (bool)")))
}

/// Required non-negative integer field.
pub fn body_u64(doc: &Json, key: &str) -> Result<u64, ServeError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::bad_request("missing_field", format!("field '{key}' (integer)")))
}

/// Optional numeric field.
pub fn body_opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            ServeError::bad_request("bad_field", format!("field '{key}' is not a number"))
        }),
    }
}

/// Optional non-negative integer field.
pub fn body_opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::bad_request("bad_field", format!("field '{key}' is not an integer"))
        }),
    }
}

/// Optional string field.
pub fn body_opt_str<'j>(doc: &'j Json, key: &str) -> Result<Option<&'j str>, ServeError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| {
            ServeError::bad_request("bad_field", format!("field '{key}' is not a string"))
        }),
    }
}

/// Parses the wire form of a question id (`"q17"`).
pub fn parse_question_id(raw: &str) -> Result<QuestionId, ServeError> {
    raw.parse().map_err(|_| {
        ServeError::bad_request("bad_question_id", format!("{raw:?} is not a question id"))
    })
}

// ---- response encoders -----------------------------------------------

/// Encodes a question as handed to workers.
pub fn question_json(q: &Question) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::from(q.id.to_string())),
        ("u1".into(), Json::from(q.pair.0 .0)),
        ("u2".into(), Json::from(q.pair.1 .0)),
        ("prior".into(), Json::from(q.prior)),
        ("label1".into(), Json::from(q.context.label1.as_str())),
        ("label2".into(), Json::from(q.context.label2.as_str())),
        ("loop".into(), Json::from(q.context.loop_index)),
    ])
}

/// Wire code for a verdict.
pub fn verdict_code(v: Verdict) -> &'static str {
    match v {
        Verdict::Match => "match",
        Verdict::NonMatch => "non_match",
        Verdict::Inconsistent => "inconsistent",
    }
}

/// One submitted question in the campaign's submission log.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmittedRecord {
    /// The question id.
    pub question: u64,
    /// The entity pair asked about.
    pub pair: (EntityId, EntityId),
    /// The inferred verdict.
    pub verdict: Verdict,
}

impl SubmittedRecord {
    /// Compact array form `[id, u1, u2, verdict]`.
    pub fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::from(self.question),
            Json::from(self.pair.0 .0),
            Json::from(self.pair.1 .0),
            Json::from(verdict_code(self.verdict)),
        ])
    }

    /// Decodes the array form.
    pub fn from_json(doc: &Json) -> Result<SubmittedRecord, ServeError> {
        let bad = || ServeError::bad_request("bad_log", "malformed submission-log entry");
        let parts = doc.as_array().ok_or_else(bad)?;
        let [question, u1, u2, verdict] = parts else {
            return Err(bad());
        };
        let verdict = match verdict.as_str().ok_or_else(bad)? {
            "match" => Verdict::Match,
            "non_match" => Verdict::NonMatch,
            "inconsistent" => Verdict::Inconsistent,
            _ => return Err(bad()),
        };
        let entity = |v: &Json| v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(bad);
        Ok(SubmittedRecord {
            question: question.as_u64().ok_or_else(bad)?,
            pair: (EntityId(entity(u1)?), EntityId(entity(u2)?)),
            verdict,
        })
    }
}

/// Encodes a final outcome plus the submission log — everything a
/// client needs to reproduce and verify the campaign bit-for-bit.
pub fn outcome_json(outcome: &RempOutcome, log: &[SubmittedRecord]) -> Json {
    let resolutions: String = outcome.resolutions.iter().map(|r| r.code()).collect();
    Json::Obj(vec![
        (
            "matches".into(),
            Json::Arr(
                outcome
                    .matches
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::from(a.0), Json::from(b.0)]))
                    .collect(),
            ),
        ),
        ("resolutions".into(), Json::Str(resolutions)),
        ("questions_asked".into(), Json::from(outcome.questions_asked)),
        ("loops".into(), Json::from(outcome.loops)),
        ("candidate_count".into(), Json::from(outcome.candidate_count)),
        ("retained_count".into(), Json::from(outcome.retained_count)),
        ("edge_count".into(), Json::from(outcome.edge_count)),
        ("log".into(), Json::Arr(log.iter().map(SubmittedRecord::to_json).collect())),
    ])
}

/// Checks a wire outcome document against a locally computed outcome
/// and submission log; any divergence is described in the error.
pub fn outcome_matches(
    doc: &Json,
    expected: &RempOutcome,
    expected_log: &[SubmittedRecord],
) -> Result<(), String> {
    let reference = outcome_json(expected, expected_log);
    let (Json::Obj(got), Json::Obj(want)) = (doc, &reference) else {
        return Err("outcome documents must be objects".into());
    };
    for (key, want_value) in want {
        match got.iter().find(|(k, _)| k == key) {
            None => return Err(format!("wire outcome is missing field '{key}'")),
            Some((_, got_value)) if got_value != want_value => {
                return Err(format!(
                    "outcome field '{key}' diverges:\n  wire     = {got_value}\n  expected = {want_value}"
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{MatchSource, Resolution};

    #[test]
    fn remp_errors_map_to_their_status() {
        let e: ServeError = RempError::AlreadyAnswered(QuestionId(3)).into();
        assert_eq!((e.status, e.code), (409, "already_answered"));
        let e: ServeError = RempError::UnknownQuestion(QuestionId(3)).into();
        assert_eq!((e.status, e.code), (404, "unknown_question"));
        let e: ServeError = RempError::EmptyLabels(QuestionId(3)).into();
        assert_eq!(e.status, 400);
        let e: ServeError = RempError::BatchOutstanding { unanswered: 2 }.into();
        assert_eq!(e.status, 500);
    }

    #[test]
    fn error_bodies_carry_code_and_message() {
        let doc = ServeError::conflict("nope", "because").to_json();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("nope"));
        assert_eq!(err.get("message").unwrap().as_str(), Some("because"));
    }

    #[test]
    fn body_accessors_reject_wrong_types() {
        let doc = parse_body(br#"{"s":"x","b":true,"n":3}"#).unwrap();
        assert_eq!(body_str(&doc, "s").unwrap(), "x");
        assert!(body_bool(&doc, "b").unwrap());
        assert_eq!(body_opt_u64(&doc, "n").unwrap(), Some(3));
        assert_eq!(body_opt_u64(&doc, "missing").unwrap(), None);
        assert!(body_str(&doc, "n").is_err());
        assert!(body_bool(&doc, "s").is_err());
        assert!(body_opt_f64(&doc, "s").is_err());
        assert!(parse_body(b"[1,2]").is_err(), "non-object body");
        assert!(parse_body(b"{oops").is_err(), "broken JSON");
        assert!(parse_body(&[0xff, 0xfe]).is_err(), "non-UTF-8");
    }

    #[test]
    fn submitted_records_round_trip() {
        let r = SubmittedRecord {
            question: 7,
            pair: (EntityId(1), EntityId(2)),
            verdict: Verdict::NonMatch,
        };
        assert_eq!(SubmittedRecord::from_json(&r.to_json()).unwrap(), r);
        assert!(SubmittedRecord::from_json(&Json::Arr(vec![])).is_err());
    }

    fn outcome_fixture() -> RempOutcome {
        RempOutcome {
            matches: vec![(EntityId(0), EntityId(1))],
            resolutions: vec![Resolution::Match(MatchSource::Crowd), Resolution::NonMatch],
            questions_asked: 2,
            loops: 1,
            candidate_count: 5,
            retained_count: 2,
            edge_count: 1,
        }
    }

    #[test]
    fn outcome_comparison_accepts_itself_and_flags_divergence() {
        let outcome = outcome_fixture();
        let log = vec![SubmittedRecord {
            question: 0,
            pair: (EntityId(0), EntityId(1)),
            verdict: Verdict::Match,
        }];
        let doc = outcome_json(&outcome, &log);
        outcome_matches(&doc, &outcome, &log).unwrap();

        let mut other = outcome.clone();
        other.questions_asked = 3;
        let err = outcome_matches(&doc, &other, &log).unwrap_err();
        assert!(err.contains("questions_asked"), "{err}");
    }
}
