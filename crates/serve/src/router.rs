//! The route table: every endpoint `rempd` serves, declared as data.
//!
//! Each [`Route`] pairs a method and a segment pattern with its handler
//! and the low-cardinality `route` label the observability layer uses
//! (campaign ids never leak into label values). [`resolve`] walks the
//! table; the server only decides *how* to answer (JSON, Prometheus
//! text, or a parked long-poll) from the matched route's [`Action`] —
//! it never inspects paths itself.
//!
//! Error semantics are part of the wire contract: an unmatched `GET` or
//! `POST` is a 404 `unknown_route`, any other method is a 405
//! `method_not_allowed`, exactly as before the table existed.

use std::path::PathBuf;

use remp_core::RempConfig;
use remp_json::Json;
use remp_par::Parallelism;

use crate::engine::CrowdPolicy;
use crate::http::Request;
use crate::registry::{CampaignRequest, CampaignSource, CampaignSpec, Registry};
use crate::wire::{
    body_bool, body_opt_f64, body_opt_str, body_opt_u64, body_str, body_u64, parse_body,
    parse_question_id, ServeError,
};

/// One segment of a route pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seg {
    /// Matches exactly this literal segment.
    Lit(&'static str),
    /// Matches any single segment and captures it as a parameter.
    Param,
}

use Seg::{Lit, Param};

/// What a handler needs: the parsed request, the captured path
/// parameters (in pattern order) and the campaign registry.
pub struct Ctx<'r> {
    /// The parsed request (query, body).
    pub request: &'r Request,
    /// Captured `Param` segments, in order.
    pub params: Vec<&'r str>,
    /// The campaign registry.
    pub registry: &'r Registry,
}

impl Ctx<'_> {
    /// The `i`-th captured path parameter.
    fn param(&self, i: usize) -> &str {
        self.params[i]
    }

    /// One reading of the registry's injected clock per request — all
    /// lease arithmetic in a request agrees on "now".
    fn now_ms(&self) -> u64 {
        self.registry.now_ms()
    }
}

/// A handler producing `(status, body)` for a matched request.
pub type Handler = fn(&Ctx) -> Result<(u16, Json), ServeError>;

/// How the server should treat a matched route.
#[derive(Clone, Copy)]
pub enum Action {
    /// Run the handler, write the JSON response.
    Json(Handler),
    /// Run the handler; if the response carries no assignment and the
    /// request asked to wait (`wait_ms`), park the connection on the
    /// long-poll dispatcher instead of answering immediately.
    LongPoll(Handler),
    /// Rendered by the server itself: Prometheus text exposition, not
    /// JSON (the only non-JSON body in the protocol).
    Metrics,
}

/// One row of the route table.
pub struct Route {
    /// `GET` or `POST`.
    pub method: &'static str,
    /// The segment pattern (`/`-split, no empties).
    pub pattern: &'static [Seg],
    /// The static `route` label template for metrics and access logs.
    pub label: &'static str,
    /// How to answer.
    pub action: Action,
}

/// Every route `rempd` serves. Order matters only for readability —
/// patterns are disjoint.
pub static TABLE: &[Route] = &[
    Route {
        method: "GET",
        pattern: &[Lit("healthz")],
        label: "/healthz",
        action: Action::Json(healthz),
    },
    Route { method: "GET", pattern: &[Lit("metrics")], label: "/metrics", action: Action::Metrics },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns")],
        label: "/campaigns",
        action: Action::Json(list_campaigns),
    },
    Route {
        method: "POST",
        pattern: &[Lit("campaigns")],
        label: "/campaigns",
        action: Action::Json(create_campaign),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param],
        label: "/campaigns/{id}",
        action: Action::Json(campaign_status),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param, Lit("questions")],
        label: "/campaigns/{id}/questions",
        action: Action::Json(campaign_questions),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param, Lit("workers")],
        label: "/campaigns/{id}/workers",
        action: Action::Json(campaign_workers),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param, Lit("events")],
        label: "/campaigns/{id}/events",
        action: Action::Json(campaign_events),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param, Lit("next")],
        label: "/campaigns/{id}/next",
        action: Action::LongPoll(next_question),
    },
    Route {
        method: "POST",
        pattern: &[Lit("campaigns"), Param, Lit("answers")],
        label: "/campaigns/{id}/answers",
        action: Action::Json(submit_answer),
    },
    Route {
        method: "GET",
        pattern: &[Lit("campaigns"), Param, Lit("outcome")],
        label: "/campaigns/{id}/outcome",
        action: Action::Json(campaign_outcome),
    },
    Route {
        method: "POST",
        pattern: &[Lit("campaigns"), Param, Lit("pause")],
        label: "/campaigns/{id}/pause",
        action: Action::Json(campaign_pause),
    },
    Route {
        method: "POST",
        pattern: &[Lit("campaigns"), Param, Lit("resume")],
        label: "/campaigns/{id}/resume",
        action: Action::Json(campaign_resume),
    },
    // Sharded-campaign coordination (crates/scale/SHARDING.md): the
    // registry's scale jobs run on the same injected lease clock as the
    // campaigns.
    Route {
        method: "POST",
        pattern: &[Lit("scale"), Lit("jobs")],
        label: "/scale/jobs",
        action: Action::Json(scale_create),
    },
    Route {
        method: "GET",
        pattern: &[Lit("scale"), Lit("jobs")],
        label: "/scale/jobs",
        action: Action::Json(scale_list),
    },
    Route {
        method: "GET",
        pattern: &[Lit("scale"), Lit("jobs"), Param],
        label: "/scale/jobs/{id}",
        action: Action::Json(scale_status),
    },
    Route {
        method: "POST",
        pattern: &[Lit("scale"), Lit("jobs"), Param, Lit("next")],
        label: "/scale/jobs/{id}/next",
        action: Action::Json(scale_next),
    },
    Route {
        method: "POST",
        pattern: &[Lit("scale"), Lit("jobs"), Param, Lit("heartbeat")],
        label: "/scale/jobs/{id}/heartbeat",
        action: Action::Json(scale_heartbeat),
    },
    Route {
        method: "POST",
        pattern: &[Lit("scale"), Lit("jobs"), Param, Lit("result")],
        label: "/scale/jobs/{id}/result",
        action: Action::Json(scale_result),
    },
    Route {
        method: "GET",
        pattern: &[Lit("scale"), Lit("jobs"), Param, Lit("outcome")],
        label: "/scale/jobs/{id}/outcome",
        action: Action::Json(scale_outcome),
    },
];

/// The outcome of matching a request against [`TABLE`].
pub enum Resolution<'p> {
    /// A route matched; captured parameters in pattern order.
    Matched { route: &'static Route, params: Vec<&'p str> },
    /// The method is routable (`GET`/`POST`) but no pattern matched.
    NotFound,
    /// The method is outside the supported set.
    MethodNotAllowed,
}

/// Matches `method path` against the table.
pub fn resolve<'p>(method: &str, path: &'p str) -> Resolution<'p> {
    if method != "GET" && method != "POST" {
        return Resolution::MethodNotAllowed;
    }
    let segments: Vec<&str> = path.split('/').filter(|segment| !segment.is_empty()).collect();
    for route in TABLE {
        if route.method == method {
            if let Some(params) = match_pattern(route.pattern, &segments) {
                return Resolution::Matched { route, params };
            }
        }
    }
    Resolution::NotFound
}

fn match_pattern<'p>(pattern: &[Seg], segments: &[&'p str]) -> Option<Vec<&'p str>> {
    if pattern.len() != segments.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, &actual) in pattern.iter().zip(segments) {
        match seg {
            Lit(want) => {
                if *want != actual {
                    return None;
                }
            }
            Param => params.push(actual),
        }
    }
    Some(params)
}

/// The static route template a request path falls under — the
/// low-cardinality `route` label value. Method-independent (a 405 on a
/// known path still files under that path's template).
pub fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|segment| !segment.is_empty()).collect();
    TABLE
        .iter()
        .find(|route| match_pattern(route.pattern, &segments).is_some())
        .map_or("other", |route| route.label)
}

/// The campaign id a path addresses, if any — stamps the access-log
/// event so `/campaigns/{id}/events` includes the campaign's requests.
pub fn campaign_in_path(path: &str) -> Option<&str> {
    let mut segments = path.split('/').filter(|segment| !segment.is_empty());
    match (segments.next(), segments.next()) {
        (Some("campaigns"), Some(id)) => Some(id),
        _ => None,
    }
}

// ---- handlers ---------------------------------------------------------

fn healthz(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let reg = remp_obs::global();
    let connections = reg
        .gauge(remp_obs::names::HTTP_CONNECTIONS_OPEN, crate::server::CONNECTIONS_OPEN_HELP, &[])
        .get();
    let waiters = reg
        .gauge(remp_obs::names::LONGPOLL_WAITERS, crate::server::LONGPOLL_WAITERS_HELP, &[])
        .get();
    Ok((
        200,
        Json::Obj(vec![
            ("status".into(), Json::from("ok")),
            ("version".into(), Json::from(env!("CARGO_PKG_VERSION"))),
            ("uptime_s".into(), Json::from(ctx.registry.uptime_s())),
            ("campaigns".into(), Json::from(ctx.registry.list().len())),
            ("observability".into(), Json::from(remp_obs::enabled())),
            ("metric_series".into(), Json::from(remp_obs::global().series_count())),
            // Serving pressure: how many sockets are open, how many of
            // them are parked long-polls, and how much un-compacted
            // answer WAL is on disk.
            ("connections_open".into(), Json::from(connections.max(0.0) as u64)),
            ("longpoll_waiters".into(), Json::from(waiters.max(0.0) as u64)),
            ("wal_bytes".into(), Json::from(ctx.registry.wal_bytes())),
        ]),
    ))
}

fn list_campaigns(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let mut items = Vec::new();
    for (id, _name) in ctx.registry.list() {
        let mut status =
            ctx.registry.call(&id, CampaignRequest::Status { now_ms: ctx.now_ms() })?;
        if let Json::Obj(fields) = &mut status {
            fields.insert(0, ("id".into(), Json::from(id.as_str())));
        }
        items.push(status);
    }
    Ok((200, Json::Obj(vec![("campaigns".into(), Json::Arr(items))])))
}

fn create_campaign(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let spec = campaign_spec_from_body(&ctx.request.body)?;
    let id = ctx.registry.create(spec)?;
    let mut status = ctx.registry.call(&id, CampaignRequest::Status { now_ms: ctx.now_ms() })?;
    if let Json::Obj(fields) = &mut status {
        fields.insert(0, ("id".into(), Json::from(id.as_str())));
    }
    Ok((201, status))
}

fn campaign_status(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Status { now_ms: ctx.now_ms() })?))
}

fn campaign_questions(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Questions { now_ms: ctx.now_ms() })?))
}

fn campaign_workers(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Workers)?))
}

fn campaign_events(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let id = ctx.param(0);
    if !ctx.registry.list().iter().any(|(cid, _)| cid == id) {
        return Err(ServeError::not_found("unknown_campaign", format!("no campaign {id:?}")));
    }
    let limit = ctx
        .request
        .query_value("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(100)
        .max(1);
    let events = remp_obs::events_snapshot(Some(id), limit);
    Ok((
        200,
        Json::Obj(vec![
            ("campaign".into(), Json::from(id)),
            ("count".into(), Json::from(events.len())),
            ("events".into(), Json::Arr(events.iter().map(|e| e.to_json()).collect())),
        ]),
    ))
}

fn next_question(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let worker = ctx
        .request
        .query_value("worker")
        .ok_or_else(|| {
            ServeError::bad_request("missing_worker", "query parameter 'worker' is required")
        })?
        .to_owned();
    Ok((
        200,
        ctx.registry.call(ctx.param(0), CampaignRequest::Next { worker, now_ms: ctx.now_ms() })?,
    ))
}

fn submit_answer(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let doc = parse_body(&ctx.request.body)?;
    let worker = body_str(&doc, "worker")?.to_owned();
    let question = parse_question_id(body_str(&doc, "question")?)?;
    let says_match = body_bool(&doc, "says_match")?;
    Ok((
        200,
        ctx.registry.call(
            ctx.param(0),
            CampaignRequest::Answer { worker, question, says_match, now_ms: ctx.now_ms() },
        )?,
    ))
}

fn campaign_outcome(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Outcome)?))
}

fn campaign_pause(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Pause)?))
}

fn campaign_resume(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok((200, ctx.registry.call(ctx.param(0), CampaignRequest::Resume)?))
}

fn scale_create(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let doc = parse_body(&ctx.request.body)?;
    let dir = body_str(&doc, "dir")?;
    let lease_ms = body_opt_u64(&doc, "lease_ms")?;
    ctx.registry.scale_jobs().create(dir, lease_ms)
}

fn scale_list(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    Ok(ctx.registry.scale_jobs().list())
}

fn scale_status(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    ctx.registry.scale_jobs().status(ctx.param(0))
}

fn scale_next(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let doc = parse_body(&ctx.request.body)?;
    let worker = body_str(&doc, "worker")?;
    ctx.registry.scale_jobs().next(ctx.param(0), worker, ctx.now_ms())
}

fn scale_heartbeat(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let doc = parse_body(&ctx.request.body)?;
    let worker = body_str(&doc, "worker")?;
    let shard = body_u64(&doc, "shard")? as u32;
    ctx.registry.scale_jobs().heartbeat(ctx.param(0), worker, shard, ctx.now_ms())
}

fn scale_result(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let doc = parse_body(&ctx.request.body)?;
    ctx.registry.scale_jobs().result(ctx.param(0), &doc)
}

fn scale_outcome(ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    ctx.registry.scale_jobs().outcome(ctx.param(0))
}

/// Decodes a `POST /campaigns` body into a spec.
///
/// ```json
/// {"name": "movies", "kb1": "a.rkb", "kb2": "b.rkb",
///  "mu": 10, "budget": 500, "threads": "auto",
///  "per_question": 5, "qualification": 0.85, "quality_weight": 5.0,
///  "lease_ms": 60000}
/// ```
///
/// Either `kb1`+`kb2` (server-side paths) or `preset` (+ optional
/// `scale`) selects the source.
pub fn campaign_spec_from_body(body: &[u8]) -> Result<CampaignSpec, ServeError> {
    let doc = parse_body(body)?;
    let source = match (body_opt_str(&doc, "preset")?, body_opt_str(&doc, "kb1")?) {
        (Some(preset), None) => CampaignSource::Preset {
            preset: preset.to_owned(),
            scale: body_opt_f64(&doc, "scale")?.unwrap_or(1.0),
        },
        (None, Some(kb1)) => CampaignSource::Files {
            kb1: PathBuf::from(kb1),
            kb2: PathBuf::from(body_str(&doc, "kb2")?),
        },
        (Some(_), Some(_)) => {
            return Err(ServeError::bad_request(
                "bad_source",
                "give either 'preset' or 'kb1'/'kb2', not both",
            ))
        }
        (None, None) => {
            return Err(ServeError::bad_request(
                "bad_source",
                "a campaign needs a 'preset' or a 'kb1'/'kb2' pair",
            ))
        }
    };
    let mut config = RempConfig::default();
    if let Some(mu) = body_opt_u64(&doc, "mu")? {
        config = config.with_mu(mu as usize);
    }
    if let Some(budget) = body_opt_u64(&doc, "budget")? {
        config = config.with_budget(budget as usize);
    }
    if let Some(threads) = body_opt_str(&doc, "threads")? {
        let parallelism = Parallelism::from_label(threads).ok_or_else(|| {
            ServeError::bad_request("bad_field", format!("unknown threads policy {threads:?}"))
        })?;
        config = config.with_parallelism(parallelism);
    }
    let default_policy = CrowdPolicy::default();
    let policy = CrowdPolicy {
        per_question: body_opt_u64(&doc, "per_question")?
            .map_or(default_policy.per_question, |n| n as usize),
        qualification: body_opt_f64(&doc, "qualification")?.unwrap_or(default_policy.qualification),
        quality_weight: body_opt_f64(&doc, "quality_weight")?
            .unwrap_or(default_policy.quality_weight),
        lease_ms: body_opt_u64(&doc, "lease_ms")?.unwrap_or(default_policy.lease_ms),
    };
    let name = body_opt_str(&doc, "name")?.unwrap_or("campaign").to_owned();
    Ok(CampaignSpec { name, source, config, policy })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_table_resolves_every_route_and_rejects_the_rest() {
        for (method, path, want) in [
            ("GET", "/healthz", "/healthz"),
            ("GET", "/metrics", "/metrics"),
            ("GET", "/campaigns", "/campaigns"),
            ("POST", "/campaigns", "/campaigns"),
            ("GET", "/campaigns/c0", "/campaigns/{id}"),
            ("GET", "/campaigns/c0/questions", "/campaigns/{id}/questions"),
            ("GET", "/campaigns/c0/workers", "/campaigns/{id}/workers"),
            ("GET", "/campaigns/c0/events", "/campaigns/{id}/events"),
            ("GET", "/campaigns/c0/next", "/campaigns/{id}/next"),
            ("POST", "/campaigns/c0/answers", "/campaigns/{id}/answers"),
            ("GET", "/campaigns/c0/outcome", "/campaigns/{id}/outcome"),
            ("POST", "/campaigns/c0/pause", "/campaigns/{id}/pause"),
            ("POST", "/campaigns/c0/resume", "/campaigns/{id}/resume"),
            ("POST", "/scale/jobs", "/scale/jobs"),
            ("GET", "/scale/jobs", "/scale/jobs"),
            ("GET", "/scale/jobs/j1", "/scale/jobs/{id}"),
            ("POST", "/scale/jobs/j1/next", "/scale/jobs/{id}/next"),
            ("POST", "/scale/jobs/j1/heartbeat", "/scale/jobs/{id}/heartbeat"),
            ("POST", "/scale/jobs/j1/result", "/scale/jobs/{id}/result"),
            ("GET", "/scale/jobs/j1/outcome", "/scale/jobs/{id}/outcome"),
        ] {
            match resolve(method, path) {
                Resolution::Matched { route, .. } => {
                    assert_eq!(route.label, want, "{method} {path}");
                    assert_eq!(route.method, method, "{method} {path}");
                }
                _ => panic!("{method} {path} must resolve"),
            }
            assert_eq!(route_label(path), want, "label for {path}");
        }
        // Unmatched GET/POST paths are 404s, foreign methods 405s —
        // the server relies on this split for the wire contract.
        assert!(matches!(resolve("GET", "/campaigns/c0/teapot"), Resolution::NotFound));
        assert!(matches!(resolve("POST", "/healthz"), Resolution::NotFound));
        assert!(matches!(resolve("PUT", "/campaigns/c0"), Resolution::MethodNotAllowed));
        assert!(matches!(resolve("DELETE", "/healthz"), Resolution::MethodNotAllowed));
        assert_eq!(route_label("/campaigns/c0/teapot"), "other");
    }

    #[test]
    fn params_capture_in_pattern_order() {
        match resolve("GET", "/campaigns/movie-42/next") {
            Resolution::Matched { params, .. } => assert_eq!(params, vec!["movie-42"]),
            _ => panic!("must match"),
        }
    }

    #[test]
    fn campaign_ids_are_extracted_for_event_scoping() {
        assert_eq!(campaign_in_path("/campaigns/c7/answers"), Some("c7"));
        assert_eq!(campaign_in_path("/campaigns/c7"), Some("c7"));
        assert_eq!(campaign_in_path("/scale/jobs/j1"), None);
        assert_eq!(campaign_in_path("/healthz"), None);
    }

    #[test]
    fn campaign_bodies_decode_and_reject() {
        let spec = campaign_spec_from_body(
            br#"{"preset":"TINY","per_question":3,"budget":40,"name":"t"}"#,
        )
        .unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.policy.per_question, 3);
        assert_eq!(spec.config.max_questions, Some(40));
        assert!(matches!(spec.source, CampaignSource::Preset { .. }));

        let spec = campaign_spec_from_body(br#"{"kb1":"a.rkb","kb2":"b.rkb"}"#).unwrap();
        assert!(matches!(spec.source, CampaignSource::Files { .. }));

        for bad in [
            &br#"{}"#[..],
            br#"{"preset":"TINY","kb1":"a"}"#,
            br#"{"kb1":"a.rkb"}"#,
            br#"{"preset":"TINY","threads":"warp"}"#,
            br#"not json"#,
        ] {
            assert_eq!(campaign_spec_from_body(bad).unwrap_err().status, 400, "{bad:?}");
        }
    }
}
