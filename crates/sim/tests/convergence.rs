//! Property tests: the online `WorkerQualityEstimator`, observed
//! through full simulated campaigns, converges toward the hidden
//! truth — honest workers are estimated near their true quality, and
//! spam sinks below the qualification floor.

use proptest::prelude::*;

use remp_sim::{preset, run_scenario, Behavior, Cohort, Scenario};

/// A small always-on pool so every worker gets scored many times
/// within a TINY campaign.
fn convergence_scenario(name: &str, seed: u64, cohorts: Vec<Cohort>) -> Scenario {
    Scenario { name: name.to_owned(), seed, cohorts, ..preset("honest", seed).unwrap() }
}

fn honest(min: f64, max: f64) -> Behavior {
    Behavior::Honest { min_quality: min, max_quality: max, drift_per_tick: 0.0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest crowd: estimates approach the hidden true qualities.
    /// The prior (weight 5 at 0.85) caps how far an estimate can move,
    /// so the bounds are generous — the property is convergence
    /// *toward* the truth, not arrival.
    #[test]
    fn honest_estimates_converge_toward_true_quality(seed in 0u64..10_000) {
        let scenario = convergence_scenario(
            "convergence-honest",
            seed,
            vec![Cohort::instant("w", 6, honest(0.75, 0.99))],
        );
        let report = run_scenario(&scenario).unwrap();
        prop_assert!(report.complete);
        let mut err_sum = 0.0;
        let mut n = 0usize;
        for w in report.workers.iter().filter(|w| w.scored >= 4) {
            let err = (w.estimate - w.true_quality.unwrap()).abs();
            prop_assert!(err < 0.35, "{}: estimate {} vs truth {:?}", w.name, w.estimate, w.true_quality);
            err_sum += err;
            n += 1;
        }
        prop_assert!(n > 0, "a 6-worker pool must score most workers");
        let mean_err = err_sum / n as f64;
        prop_assert!(mean_err < 0.2, "mean error {mean_err} too high");
    }

    /// A coordinated wrong-answer clique ends below the qualification
    /// floor: its members agree with the inferred verdict only when the
    /// honest majority was itself overruled, which the majority makes
    /// rare — so scoring starves their estimates.
    #[test]
    fn colluders_end_below_the_qualification_floor(seed in 0u64..10_000) {
        let scenario = convergence_scenario(
            "convergence-colluders",
            seed,
            vec![
                Cohort::instant("w", 5, honest(0.85, 0.99)),
                Cohort::instant("clique", 3, Behavior::Colluder),
            ],
        );
        let report = run_scenario(&scenario).unwrap();
        prop_assert!(report.complete);
        let mut scored_colluders = 0usize;
        for w in report.workers.iter().filter(|w| w.behavior == "colluder" && w.scored > 0) {
            prop_assert!(
                w.estimate < scenario.qualification,
                "{}: colluder estimate {} at/above the floor {}",
                w.name, w.estimate, scenario.qualification
            );
            scored_colluders += 1;
        }
        prop_assert!(scored_colluders > 0, "the clique must get scored");
    }

    /// Coin-flip spammers are separated from the honest crowd: the spam
    /// cohort's mean estimate lands strictly below the honest cohort's.
    /// Two spammers in a pool of seven keep an honest majority on every
    /// question (5 distinct answerers), so verdicts stay anchored and
    /// the coins agree with them at chance rate; a doubled dataset
    /// gives the estimator enough scored answers to separate cleanly.
    #[test]
    fn coin_spam_is_ranked_below_the_honest_crowd(seed in 0u64..10_000) {
        let mut scenario = convergence_scenario(
            "convergence-coin",
            seed,
            vec![
                Cohort::instant("w", 5, honest(0.85, 0.99)),
                Cohort::instant("spam", 2, Behavior::Coin),
            ],
        );
        scenario.scale = 2.0;
        let report = run_scenario(&scenario).unwrap();
        prop_assert!(report.complete);
        let mean = |behavior: &str| {
            let est: Vec<f64> = report
                .workers
                .iter()
                .filter(|w| w.behavior == behavior && w.scored > 0)
                .map(|w| w.estimate)
                .collect();
            prop_assert!(!est.is_empty(), "no scored {behavior} workers");
            Ok(est.iter().sum::<f64>() / est.len() as f64)
        };
        prop_assert!(mean("coin")? < mean("honest")?);
    }
}
