//! The event trace: everything observable the simulation did, in
//! order, plus a stable hash for cheap replay comparison.
//!
//! Determinism is the contract (`SCENARIOS.md`): same scenario + seed
//! ⇒ the same `Vec<TraceEvent>`, bit for bit. [`trace_hash`] is FNV-1a
//! over the canonical JSON encoding, so two runs can be compared with
//! one `u64` without shipping the whole trace around.

use remp_json::Json;

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A worker entered the pool.
    Arrive {
        /// Worker name.
        worker: String,
    },
    /// A worker left; any answers they still owed were dropped.
    Leave {
        /// Worker name.
        worker: String,
        /// In-flight answers dropped with them.
        dropped: usize,
    },
    /// A question was leased to a worker.
    Lease {
        /// Worker name.
        worker: String,
        /// Question id.
        question: u64,
    },
    /// An answer was delivered and accepted.
    Answer {
        /// Worker name.
        worker: String,
        /// Question id.
        question: u64,
        /// The label.
        says: bool,
    },
    /// An answer was delivered but rejected (typically `no_lease`
    /// after expiry, or `already_answered` after a re-issued copy
    /// closed the question first).
    Reject {
        /// Worker name.
        worker: String,
        /// Question id.
        question: u64,
        /// The engine's error code.
        code: String,
    },
    /// A question reached redundancy and was submitted to the session.
    Submit {
        /// Question id.
        question: u64,
        /// Verdict wire code.
        verdict: String,
        /// Pairs resolved by propagation from this verdict.
        propagated: usize,
    },
    /// The run stopped early: nothing in flight, nobody arriving, no
    /// way to make progress.
    Stalled,
}

/// One trace entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Canonical JSON form (also the hashing input).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("tick".into(), Json::from(self.tick))];
        let (kind, rest): (&str, Vec<(String, Json)>) = match &self.kind {
            EventKind::Arrive { worker } => {
                ("arrive", vec![("worker".into(), Json::from(worker.as_str()))])
            }
            EventKind::Leave { worker, dropped } => (
                "leave",
                vec![
                    ("worker".into(), Json::from(worker.as_str())),
                    ("dropped".into(), Json::from(*dropped)),
                ],
            ),
            EventKind::Lease { worker, question } => (
                "lease",
                vec![
                    ("worker".into(), Json::from(worker.as_str())),
                    ("question".into(), Json::from(*question)),
                ],
            ),
            EventKind::Answer { worker, question, says } => (
                "answer",
                vec![
                    ("worker".into(), Json::from(worker.as_str())),
                    ("question".into(), Json::from(*question)),
                    ("says".into(), Json::from(*says)),
                ],
            ),
            EventKind::Reject { worker, question, code } => (
                "reject",
                vec![
                    ("worker".into(), Json::from(worker.as_str())),
                    ("question".into(), Json::from(*question)),
                    ("code".into(), Json::from(code.as_str())),
                ],
            ),
            EventKind::Submit { question, verdict, propagated } => (
                "submit",
                vec![
                    ("question".into(), Json::from(*question)),
                    ("verdict".into(), Json::from(verdict.as_str())),
                    ("propagated".into(), Json::from(*propagated)),
                ],
            ),
            EventKind::Stalled => ("stalled", Vec::new()),
        };
        fields.push(("event".into(), Json::from(kind)));
        fields.extend(rest);
        Json::Obj(fields)
    }
}

/// FNV-1a (64-bit) over the canonical JSON lines of the trace.
pub fn trace_hash(events: &[TraceEvent]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for event in events {
        for byte in event.to_json().to_string().bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_order_sensitive() {
        let a = TraceEvent { tick: 0, kind: EventKind::Arrive { worker: "w0".into() } };
        let b = TraceEvent {
            tick: 3,
            kind: EventKind::Submit { question: 0, verdict: "match".into(), propagated: 2 },
        };
        assert_eq!(trace_hash(&[a.clone(), b.clone()]), trace_hash(&[a.clone(), b.clone()]));
        assert_ne!(trace_hash(&[a.clone(), b.clone()]), trace_hash(&[b, a]));
        assert_ne!(trace_hash(&[]), 0, "FNV offset basis for the empty trace");
    }

    #[test]
    fn events_encode_their_payloads() {
        let e = TraceEvent {
            tick: 7,
            kind: EventKind::Reject {
                worker: "spam3".into(),
                question: 12,
                code: "no_lease".into(),
            },
        };
        let doc = e.to_json();
        assert_eq!(doc.get("tick").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("reject"));
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("no_lease"));
    }
}
