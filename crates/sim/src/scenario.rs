//! Scenario model: who the virtual workers are, how they behave, and
//! what campaign they run — plus the JSON file format and the built-in
//! named presets.
//!
//! A scenario is pure data; [`crate::run_scenario`] turns it into a
//! run. Time is measured in **ticks** (one tick = one millisecond of
//! the lease clock), so `lease_ticks` and per-cohort latency live on
//! the same axis the [`CampaignEngine`](remp_serve::CampaignEngine)
//! prunes leases on.

use remp_json::Json;
use remp_serve::CrowdPolicy;

use crate::SimError;

/// How a cohort of workers answers questions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Behavior {
    /// Answers correctly with a hidden per-worker quality drawn
    /// uniformly from `[min_quality, max_quality]` at build time —
    /// exactly the [`WireCrowd`](remp_serve::WireCrowd) worker model.
    /// `drift_per_tick` is added to the quality every tick (clamped to
    /// `[0.02, 0.98]`), modelling fatigue or learning.
    Honest {
        /// Lower quality bound.
        min_quality: f64,
        /// Upper quality bound.
        max_quality: f64,
        /// Additive per-tick quality drift.
        drift_per_tick: f64,
    },
    /// Answers yes/no by a fair coin flip — a random spammer.
    Coin,
    /// Always answers "match" — the classic lazy-approver spammer.
    AlwaysYes,
    /// Always answers "no match".
    AlwaysNo,
    /// Always answers the *opposite* of the hidden truth — a
    /// coordinated wrong-answer clique (every colluder pushes the same
    /// wrong label, the worst case for majority aggregation).
    Colluder,
}

impl Behavior {
    /// The wire code of this behavior (scenario files, reports).
    pub fn code(&self) -> &'static str {
        match self {
            Behavior::Honest { .. } => "honest",
            Behavior::Coin => "coin",
            Behavior::AlwaysYes => "always_yes",
            Behavior::AlwaysNo => "always_no",
            Behavior::Colluder => "colluder",
        }
    }

    /// Whether this cohort plays by the worker-accuracy model.
    pub fn is_honest(&self) -> bool {
        matches!(self, Behavior::Honest { .. })
    }
}

/// A group of workers sharing a behavior and a schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct Cohort {
    /// Name prefix; worker `i` of the whole pool is `{name}{i}`, so a
    /// single-cohort scenario named `w` yields `w0, w1, ...` — the
    /// exact names [`WireCrowd`](remp_serve::WireCrowd) uses.
    pub name: String,
    /// Number of workers.
    pub count: usize,
    /// How they answer.
    pub behavior: Behavior,
    /// Tick the first worker arrives.
    pub arrive_tick: u64,
    /// Worker `i` of the cohort arrives at `arrive_tick + i * stagger`.
    pub arrive_stagger: u64,
    /// Tick the whole cohort walks away (pending answers are dropped,
    /// their leases expire on schedule); `None` = stays forever.
    pub leave_tick: Option<u64>,
    /// Inclusive `[lo, hi]` range of ticks between accepting a lease
    /// and delivering the answer. `[0, 0]` answers instantly.
    pub latency: (u64, u64),
}

impl Cohort {
    /// An always-on cohort with zero latency.
    pub fn instant(name: &str, count: usize, behavior: Behavior) -> Cohort {
        Cohort {
            name: name.into(),
            count,
            behavior,
            arrive_tick: 0,
            arrive_stagger: 0,
            leave_tick: None,
            latency: (0, 0),
        }
    }
}

/// One complete simulation setup: the campaign plus its crowd.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports, trace).
    pub name: String,
    /// Dataset preset the campaign runs on (`TINY`, `IIMB`, ...).
    pub dataset: String,
    /// Dataset scale factor.
    pub scale: f64,
    /// Master seed: worker qualities, pick order, answer draws and
    /// latencies all come from one `StdRng` seeded with this.
    pub seed: u64,
    /// Optional question budget (`RempConfig::with_budget`).
    pub budget: Option<usize>,
    /// Optional per-loop question count (`RempConfig::with_mu`).
    pub mu: Option<usize>,
    /// Distinct workers required per question.
    pub per_question: usize,
    /// Qualification quality new workers start at.
    pub qualification: f64,
    /// Pseudo-count weight of the qualification in the estimate.
    pub quality_weight: f64,
    /// Lease lifetime in ticks; an answer arriving `lease_ticks` or
    /// more after its lease was granted is rejected and the question
    /// re-issued.
    pub lease_ticks: u64,
    /// Hard stop: the run reports `complete = false` past this.
    pub max_ticks: u64,
    /// The crowd.
    pub cohorts: Vec<Cohort>,
}

impl Scenario {
    /// The engine policy this scenario induces (ticks are lease-clock
    /// milliseconds).
    pub fn policy(&self) -> CrowdPolicy {
        CrowdPolicy {
            per_question: self.per_question,
            qualification: self.qualification,
            quality_weight: self.quality_weight,
            lease_ms: self.lease_ticks,
        }
    }

    /// Total pool size across cohorts.
    pub fn pool_size(&self) -> usize {
        self.cohorts.iter().map(|c| c.count).sum()
    }

    /// Structural validation; every error names the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::BadScenario(msg));
        if self.name.is_empty() {
            return bad("scenario name must be non-empty".into());
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return bad(format!("scale {} must be positive", self.scale));
        }
        if self.per_question == 0 {
            return bad("per_question must be at least 1".into());
        }
        if self.lease_ticks == 0 {
            return bad("lease_ticks must be at least 1".into());
        }
        if self.max_ticks == 0 {
            return bad("max_ticks must be at least 1".into());
        }
        self.policy().validate().map_err(|e| SimError::BadScenario(e.to_string()))?;
        if self.cohorts.is_empty() {
            return bad("a scenario needs at least one cohort".into());
        }
        if self.pool_size() < self.per_question {
            return bad(format!(
                "{} workers cannot give {} distinct answers per question",
                self.pool_size(),
                self.per_question
            ));
        }
        for c in &self.cohorts {
            let ctx = format!("cohort {:?}", c.name);
            if c.name.is_empty() {
                return bad("cohort names must be non-empty".into());
            }
            if c.count == 0 {
                return bad(format!("{ctx}: count must be at least 1"));
            }
            if c.latency.0 > c.latency.1 {
                return bad(format!(
                    "{ctx}: latency [{}, {}] is inverted",
                    c.latency.0, c.latency.1
                ));
            }
            if c.latency.1 >= self.lease_ticks {
                return bad(format!(
                    "{ctx}: max latency {} must be below lease_ticks {} or no answer ever lands",
                    c.latency.1, self.lease_ticks
                ));
            }
            if let Some(leave) = c.leave_tick {
                let last_arrival = c.arrive_tick + (c.count as u64 - 1) * c.arrive_stagger;
                if leave <= last_arrival {
                    return bad(format!(
                        "{ctx}: leave_tick {leave} precedes its last arrival at {last_arrival}"
                    ));
                }
            }
            if let Behavior::Honest { min_quality, max_quality, drift_per_tick } = c.behavior {
                if !((0.0..=1.0).contains(&min_quality)
                    && (0.0..=1.0).contains(&max_quality)
                    && min_quality <= max_quality)
                {
                    return bad(format!(
                        "{ctx}: qualities are probabilities; got [{min_quality}, {max_quality}]"
                    ));
                }
                if !(drift_per_tick.is_finite() && drift_per_tick.abs() < 1.0) {
                    return bad(format!("{ctx}: drift_per_tick {drift_per_tick} is not sane"));
                }
            }
        }
        let mut names: Vec<&str> = self.cohorts.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.cohorts.len() {
            return bad("cohort names must be distinct".into());
        }
        Ok(())
    }

    // ---- JSON -----------------------------------------------------------

    /// The scenario-file form (see `SCENARIOS.md`).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<usize>| v.map_or(Json::Null, Json::from);
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("dataset".into(), Json::from(self.dataset.as_str())),
            ("scale".into(), Json::from(self.scale)),
            ("seed".into(), Json::from(self.seed)),
            ("budget".into(), opt(self.budget)),
            ("mu".into(), opt(self.mu)),
            ("per_question".into(), Json::from(self.per_question)),
            ("qualification".into(), Json::from(self.qualification)),
            ("quality_weight".into(), Json::from(self.quality_weight)),
            ("lease_ticks".into(), Json::from(self.lease_ticks)),
            ("max_ticks".into(), Json::from(self.max_ticks)),
            ("cohorts".into(), Json::Arr(self.cohorts.iter().map(cohort_json).collect())),
        ])
    }

    /// Parses a scenario file; unknown behaviors and missing required
    /// fields are errors, everything else has the documented default.
    pub fn from_json(doc: &Json) -> Result<Scenario, SimError> {
        let bad = |msg: String| SimError::BadScenario(msg);
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("missing string field {key:?}")))
        };
        let scenario = Scenario {
            name: str_field("name")?,
            dataset: doc.get("dataset").and_then(Json::as_str).unwrap_or("TINY").to_owned(),
            scale: doc.get("scale").and_then(Json::as_f64).unwrap_or(1.0),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            budget: doc.get("budget").and_then(Json::as_usize),
            mu: doc.get("mu").and_then(Json::as_usize),
            per_question: doc.get("per_question").and_then(Json::as_usize).unwrap_or(5),
            qualification: doc.get("qualification").and_then(Json::as_f64).unwrap_or(0.85),
            quality_weight: doc.get("quality_weight").and_then(Json::as_f64).unwrap_or(5.0),
            lease_ticks: doc.get("lease_ticks").and_then(Json::as_u64).unwrap_or(50),
            max_ticks: doc.get("max_ticks").and_then(Json::as_u64).unwrap_or(100_000),
            cohorts: doc
                .get("cohorts")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("missing cohorts array".into()))?
                .iter()
                .map(cohort_from_json)
                .collect::<Result<Vec<_>, SimError>>()?,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Parses a scenario from file text.
    pub fn parse(text: &str) -> Result<Scenario, SimError> {
        let doc = Json::parse(text)
            .map_err(|e| SimError::BadScenario(format!("scenario is not JSON: {e}")))?;
        Scenario::from_json(&doc)
    }
}

fn cohort_json(c: &Cohort) -> Json {
    let mut fields = vec![
        ("name".into(), Json::from(c.name.as_str())),
        ("count".into(), Json::from(c.count)),
        ("behavior".into(), Json::from(c.behavior.code())),
    ];
    if let Behavior::Honest { min_quality, max_quality, drift_per_tick } = c.behavior {
        fields.push(("min_quality".into(), Json::from(min_quality)));
        fields.push(("max_quality".into(), Json::from(max_quality)));
        fields.push(("drift_per_tick".into(), Json::from(drift_per_tick)));
    }
    fields.push(("arrive_tick".into(), Json::from(c.arrive_tick)));
    fields.push(("arrive_stagger".into(), Json::from(c.arrive_stagger)));
    fields.push(("leave_tick".into(), c.leave_tick.map_or(Json::Null, Json::from)));
    fields.push((
        "latency".into(),
        Json::Arr(vec![Json::from(c.latency.0), Json::from(c.latency.1)]),
    ));
    Json::Obj(fields)
}

fn cohort_from_json(doc: &Json) -> Result<Cohort, SimError> {
    let bad = |msg: String| SimError::BadScenario(msg);
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("cohort without a name".into()))?
        .to_owned();
    let behavior = match doc.get("behavior").and_then(Json::as_str) {
        Some("honest") | None => Behavior::Honest {
            min_quality: doc.get("min_quality").and_then(Json::as_f64).unwrap_or(0.8),
            max_quality: doc.get("max_quality").and_then(Json::as_f64).unwrap_or(0.99),
            drift_per_tick: doc.get("drift_per_tick").and_then(Json::as_f64).unwrap_or(0.0),
        },
        Some("coin") => Behavior::Coin,
        Some("always_yes") => Behavior::AlwaysYes,
        Some("always_no") => Behavior::AlwaysNo,
        Some("colluder") => Behavior::Colluder,
        Some(other) => return Err(bad(format!("cohort {name:?}: unknown behavior {other:?}"))),
    };
    let latency = match doc.get("latency") {
        None => (0, 0),
        Some(Json::Arr(parts)) => match parts.as_slice() {
            [lo, hi] => (
                lo.as_u64().ok_or_else(|| bad(format!("cohort {name:?}: bad latency lo")))?,
                hi.as_u64().ok_or_else(|| bad(format!("cohort {name:?}: bad latency hi")))?,
            ),
            _ => return Err(bad(format!("cohort {name:?}: latency must be [lo, hi]"))),
        },
        Some(_) => return Err(bad(format!("cohort {name:?}: latency must be [lo, hi]"))),
    };
    Ok(Cohort {
        count: doc
            .get("count")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad(format!("cohort {name:?}: missing count")))?,
        behavior,
        arrive_tick: doc.get("arrive_tick").and_then(Json::as_u64).unwrap_or(0),
        arrive_stagger: doc.get("arrive_stagger").and_then(Json::as_u64).unwrap_or(0),
        leave_tick: doc.get("leave_tick").and_then(Json::as_u64),
        latency,
        name,
    })
}

// ---- presets ----------------------------------------------------------

/// Names of the built-in scenario presets, in `rempctl simulate --list`
/// order.
pub fn preset_names() -> &'static [&'static str] {
    &["honest", "spam-flood", "churn-storm", "colluders", "drift"]
}

/// A built-in preset by name, parameterized only by the seed.
///
/// `honest` is special: it reproduces the exact worker pool and RNG
/// stream of [`WireCrowd`](remp_serve::WireCrowd) under
/// `CrowdParams::paper_default(seed)`, which is what makes the
/// reference-equivalence test possible.
pub fn preset(name: &str, seed: u64) -> Option<Scenario> {
    let base = Scenario {
        name: name.to_owned(),
        dataset: "TINY".into(),
        scale: 1.0,
        seed,
        budget: None,
        mu: None,
        per_question: 5,
        qualification: 0.85,
        quality_weight: 5.0,
        lease_ticks: 50,
        max_ticks: 5_000,
        cohorts: Vec::new(),
    };
    let honest = |min: f64, max: f64| Behavior::Honest {
        min_quality: min,
        max_quality: max,
        drift_per_tick: 0.0,
    };
    let with_latency = |mut c: Cohort, lo: u64, hi: u64| {
        c.latency = (lo, hi);
        c
    };
    match name {
        // The paper-default pool: 100 honest workers, qualities in
        // [0.8, 0.99], instant answers. Must stay bit-identical to
        // `reference_outcome(..., CrowdParams::paper_default(seed))`.
        "honest" => {
            Some(Scenario { cohorts: vec![Cohort::instant("w", 100, honest(0.8, 0.99))], ..base })
        }
        // A third of the crowd answers by coin flip.
        "spam-flood" => Some(Scenario {
            cohorts: vec![
                with_latency(Cohort::instant("w", 18, honest(0.8, 0.99)), 0, 2),
                with_latency(Cohort::instant("spam", 9, Behavior::Coin), 0, 1),
            ],
            ..base
        }),
        // Half the workforce walks out mid-campaign with answers still
        // in flight; replacements trickle in around the handover.
        // Short leases make the abandoned slots expire and re-issue.
        "churn-storm" => Some(Scenario {
            lease_ticks: 8,
            cohorts: vec![
                Cohort {
                    name: "early".into(),
                    count: 6,
                    behavior: honest(0.8, 0.99),
                    arrive_tick: 0,
                    arrive_stagger: 0,
                    leave_tick: Some(12),
                    latency: (1, 4),
                },
                Cohort {
                    name: "late".into(),
                    count: 6,
                    behavior: honest(0.8, 0.99),
                    arrive_tick: 10,
                    arrive_stagger: 1,
                    leave_tick: None,
                    latency: (1, 4),
                },
            ],
            ..base
        }),
        // A coordinated clique always pushes the wrong label.
        "colluders" => Some(Scenario {
            cohorts: vec![
                with_latency(Cohort::instant("w", 15, honest(0.8, 0.99)), 0, 1),
                with_latency(Cohort::instant("clique", 5, Behavior::Colluder), 0, 1),
            ],
            ..base
        }),
        // A small pool starts sharp and fatigues: quality decays every
        // tick, so the campaign's tail is answered by worse workers
        // than its head. The pool is small and slow on purpose — the
        // run has to last long enough for the decay to matter.
        "drift" => Some(Scenario {
            cohorts: vec![with_latency(
                Cohort::instant(
                    "w",
                    6,
                    Behavior::Honest {
                        min_quality: 0.9,
                        max_quality: 0.99,
                        drift_per_tick: -0.005,
                    },
                ),
                2,
                5,
            )],
            ..base
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_round_trip_through_json() {
        for name in preset_names() {
            let s = preset(name, 42).unwrap_or_else(|| panic!("preset {name}"));
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let back = Scenario::from_json(&s.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, s, "{name} must survive a JSON round trip");
        }
        assert!(preset("nope", 0).is_none());
    }

    #[test]
    fn validation_rejects_the_sharp_edges() {
        let mut s = preset("honest", 0).unwrap();
        s.per_question = 0;
        assert!(s.validate().is_err());

        let mut s = preset("honest", 0).unwrap();
        s.cohorts[0].count = 3; // fewer workers than per_question
        assert!(s.validate().is_err());

        let mut s = preset("honest", 0).unwrap();
        s.cohorts[0].latency = (50, 50); // latency >= lease: answers never land
        assert!(s.validate().is_err());

        let mut s = preset("honest", 0).unwrap();
        s.cohorts[0].leave_tick = Some(0); // leaves before arriving
        assert!(s.validate().is_err());

        let mut s = preset("honest", 0).unwrap();
        s.cohorts.push(s.cohorts[0].clone()); // duplicate cohort name
        assert!(s.validate().is_err());

        assert!(Scenario::parse("{\"name\": \"x\"}").is_err(), "cohorts are required");
        assert!(Scenario::parse("not json").is_err());
    }

    #[test]
    fn scenario_files_fill_defaults() {
        let s = Scenario::parse(r#"{"name": "minimal", "cohorts": [{"name": "w", "count": 10}]}"#)
            .unwrap();
        assert_eq!(s.dataset, "TINY");
        assert_eq!(s.per_question, 5);
        assert_eq!(s.lease_ticks, 50);
        assert!(matches!(s.cohorts[0].behavior, Behavior::Honest { .. }));
        assert_eq!(s.cohorts[0].latency, (0, 0));
    }
}
