//! The tick engine: virtual workers driving a real
//! [`CampaignEngine`] on virtual time.
//!
//! One tick is one millisecond of the engine's lease clock. Each tick
//! runs a fixed phase order — drift, arrivals, departures, deliveries,
//! assignments, completion check — and every random decision (worker
//! quality, pick order, answer content, latency) comes from a single
//! `StdRng` seeded by the scenario, which is what makes replay
//! bit-identical.
//!
//! **Reference equivalence.** The assignment loop is deliberately the
//! same sampling process as [`WireCrowd`](remp_serve::WireCrowd):
//! repeatedly draw a uniform worker index and *consume the draw* when
//! the worker is ineligible (busy, gone, already answered or leased on
//! the target question). For a single always-on zero-latency honest
//! cohort this visits the identical RNG stream — index draws
//! interleaved with one `gen_bool(quality)` per accepted answer — so
//! the `honest` preset reproduces
//! [`reference_outcome`](remp_serve::sim::reference_outcome) exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remp_core::{evaluate_matches, Question, QuestionId, Remp, RempConfig};
use remp_datasets::{generate, preset_by_name, GeneratedDataset};
use remp_par::Parallelism;
use remp_serve::wire::verdict_code;
use remp_serve::CampaignEngine;

use crate::report::{EstimatorReport, SimReport, WorkerReport};
use crate::scenario::{Behavior, Scenario};
use crate::trace::{trace_hash, EventKind, TraceEvent};
use crate::SimError;

/// Runs a scenario to completion (or stall / tick cap) and reports.
pub fn run_scenario(scenario: &Scenario) -> Result<SimReport, SimError> {
    run_scenario_with(scenario, None)
}

/// [`run_scenario`] with an explicit pipeline parallelism — the hook
/// the determinism tests use to prove the trace is bit-identical under
/// `Parallelism::Sequential` and `Parallelism::Fixed(4)`.
pub fn run_scenario_with(
    scenario: &Scenario,
    parallelism: Option<Parallelism>,
) -> Result<SimReport, SimError> {
    scenario.validate()?;
    let spec = preset_by_name(&scenario.dataset, scenario.scale).ok_or_else(|| {
        SimError::BadScenario(format!("unknown dataset preset {:?}", scenario.dataset))
    })?;
    let d = generate(&spec);
    let mut config = RempConfig::default();
    if let Some(budget) = scenario.budget {
        config = config.with_budget(budget);
    }
    if let Some(mu) = scenario.mu {
        config = config.with_mu(mu);
    }
    if let Some(parallelism) = parallelism {
        config = config.with_parallelism(parallelism);
    }
    let session = Remp::new(config)
        .begin(&d.kb1, &d.kb2)
        .map_err(|e| SimError::BadScenario(format!("campaign would not open: {e}")))?;
    let engine = CampaignEngine::new(session, scenario.policy());
    World::build(scenario, &d, engine).run()
}

/// One virtual worker.
struct SimWorker {
    name: String,
    cohort: usize,
    behavior: Behavior,
    /// Current true quality (honest behaviors only; drifts per tick).
    quality: f64,
    arrive: u64,
    leave: Option<u64>,
    arrived: bool,
    active: bool,
    /// Holds a lease and owes a queued answer.
    busy: bool,
}

/// An accepted assignment whose answer has not been delivered yet.
struct Pending {
    worker: usize,
    question: QuestionId,
    says: bool,
    due: u64,
}

/// The simulator's view of one open question: which workers answered
/// and which hold live leases (the engine only exposes counts).
struct MirrorSlot {
    id: QuestionId,
    answered: Vec<usize>,
    /// `(worker, deadline)`; pruned with the engine's `expiry > now`.
    leases: Vec<(usize, u64)>,
}

struct World<'a, 'kb> {
    scenario: &'a Scenario,
    d: &'a GeneratedDataset,
    engine: CampaignEngine<'kb>,
    rng: StdRng,
    workers: Vec<SimWorker>,
    pending: Vec<Pending>,
    mirror: Vec<MirrorSlot>,
    events: Vec<TraceEvent>,
    delivered: u64,
    rejected: u64,
    dropped: u64,
    arrived: usize,
    left: usize,
    /// Last tick anything happened (arrival, lease, delivery) — the
    /// stall detector's anchor.
    last_progress: u64,
    /// Global tick/delivery counters (`remp_sim_*_total`), held as
    /// handles so the hot loop never takes the registry lock. `None`
    /// when observability is disabled; recording never feeds back into
    /// any simulation decision.
    obs_ticks: Option<remp_obs::Counter>,
    obs_delivered: Option<remp_obs::Counter>,
}

impl<'a, 'kb> World<'a, 'kb> {
    fn build(
        scenario: &'a Scenario,
        d: &'a GeneratedDataset,
        engine: CampaignEngine<'kb>,
    ) -> World<'a, 'kb> {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let mut workers = Vec::with_capacity(scenario.pool_size());
        for (cohort, c) in scenario.cohorts.iter().enumerate() {
            for i in 0..c.count {
                // Honest qualities are drawn here, in cohort order —
                // for a single honest cohort this is WireCrowd::new's
                // exact quality stream. Other behaviors draw nothing.
                let quality = match c.behavior {
                    Behavior::Honest { min_quality, max_quality, .. } => {
                        rng.gen_range(min_quality..=max_quality)
                    }
                    _ => 0.0,
                };
                workers.push(SimWorker {
                    // Global pool index: names stay unique across
                    // cohorts, and a single cohort named `w` yields
                    // w0..wN-1 — WireCrowd's names.
                    name: format!("{}{}", c.name, workers.len()),
                    cohort,
                    behavior: c.behavior,
                    quality,
                    arrive: c.arrive_tick + i as u64 * c.arrive_stagger,
                    leave: c.leave_tick,
                    arrived: false,
                    active: false,
                    busy: false,
                });
            }
        }
        let (obs_ticks, obs_delivered) = if remp_obs::enabled() {
            let reg = remp_obs::global();
            (
                Some(reg.counter(
                    remp_obs::names::SIM_TICKS_TOTAL,
                    "Simulator ticks executed across all runs.",
                    &[],
                )),
                Some(reg.counter(
                    remp_obs::names::SIM_DELIVERED_TOTAL,
                    "Simulated answers accepted by the engine across all runs.",
                    &[],
                )),
            )
        } else {
            (None, None)
        };
        World {
            scenario,
            d,
            engine,
            rng,
            workers,
            pending: Vec::new(),
            mirror: Vec::new(),
            events: Vec::new(),
            delivered: 0,
            rejected: 0,
            dropped: 0,
            arrived: 0,
            left: 0,
            last_progress: 0,
            obs_ticks,
            obs_delivered,
        }
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        let max_latency = self.scenario.cohorts.iter().map(|c| c.latency.1).max().unwrap_or(0);
        // Nothing can change state later than one lease lifetime plus
        // one latency window after the last event; past that the run
        // is provably stuck.
        let grace = self.scenario.lease_ticks + max_latency + 2;
        let mut complete = false;
        let mut stalled = false;
        let mut tick = 0u64;
        loop {
            if tick >= self.scenario.max_ticks {
                break;
            }
            if let Some(c) = &self.obs_ticks {
                c.inc();
            }
            self.drift(tick);
            self.arrivals_and_departures(tick);
            self.deliver_due(tick)?;
            self.assign(tick)?;
            if self.engine.progress(tick)?.complete {
                complete = true;
                break;
            }
            let future_arrival = self.workers.iter().any(|w| !w.arrived);
            if !future_arrival && tick.saturating_sub(self.last_progress) > grace {
                stalled = true;
                self.events.push(TraceEvent { tick, kind: EventKind::Stalled });
                break;
            }
            tick += 1;
        }
        Ok(self.report(tick, complete, stalled))
    }

    /// Per-tick additive quality drift. Skips tick 0 so qualities start
    /// exactly as drawn.
    fn drift(&mut self, tick: u64) {
        if tick == 0 {
            return;
        }
        for w in &mut self.workers {
            if let Behavior::Honest { drift_per_tick, .. } = w.behavior {
                if drift_per_tick != 0.0 {
                    w.quality = (w.quality + drift_per_tick).clamp(0.02, 0.98);
                }
            }
        }
    }

    fn arrivals_and_departures(&mut self, tick: u64) {
        for i in 0..self.workers.len() {
            if !self.workers[i].arrived && tick >= self.workers[i].arrive {
                self.workers[i].arrived = true;
                self.workers[i].active = true;
                self.arrived += 1;
                self.last_progress = tick;
                let worker = self.workers[i].name.clone();
                self.events.push(TraceEvent { tick, kind: EventKind::Arrive { worker } });
            }
            if self.workers[i].active && self.workers[i].leave.is_some_and(|t| tick >= t) {
                self.workers[i].active = false;
                self.workers[i].busy = false;
                let before = self.pending.len();
                self.pending.retain(|p| p.worker != i);
                let dropped = before - self.pending.len();
                self.dropped += dropped as u64;
                self.left += 1;
                let worker = self.workers[i].name.clone();
                self.events.push(TraceEvent { tick, kind: EventKind::Leave { worker, dropped } });
            }
        }
    }

    /// Delivers every queued answer that has come due, in queue order.
    fn deliver_due(&mut self, tick: u64) -> Result<(), SimError> {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].due > tick {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i);
            self.deliver(p, tick)?;
        }
        Ok(())
    }

    /// Hands one answer to the engine and mirrors the effect. Late
    /// answers (lease expired, question re-closed) become typed
    /// `Reject` events — the engine's 4xx is simulation data, not an
    /// error.
    fn deliver(&mut self, p: Pending, tick: u64) -> Result<(), SimError> {
        self.workers[p.worker].busy = false;
        let worker = self.workers[p.worker].name.clone();
        match self.engine.answer(&worker, p.question, p.says, tick) {
            Ok(ack) => {
                self.delivered += 1;
                if let Some(c) = &self.obs_delivered {
                    c.inc();
                }
                self.last_progress = tick;
                self.events.push(TraceEvent {
                    tick,
                    kind: EventKind::Answer { worker, question: p.question.0, says: p.says },
                });
                match ack.submitted {
                    Some(sub) => {
                        self.events.push(TraceEvent {
                            tick,
                            kind: EventKind::Submit {
                                question: p.question.0,
                                verdict: verdict_code(sub.verdict).to_owned(),
                                propagated: sub.propagated,
                            },
                        });
                        self.mirror.retain(|s| s.id != p.question);
                    }
                    None => {
                        if let Some(slot) = self.mirror.iter_mut().find(|s| s.id == p.question) {
                            slot.leases.retain(|&(w, _)| w != p.worker);
                            slot.answered.push(p.worker);
                        }
                    }
                }
            }
            Err(e) if e.status == 409 || e.status == 404 => {
                self.rejected += 1;
                self.events.push(TraceEvent {
                    tick,
                    kind: EventKind::Reject {
                        worker,
                        question: p.question.0,
                        code: e.code.to_owned(),
                    },
                });
                if let Some(slot) = self.mirror.iter_mut().find(|s| s.id == p.question) {
                    slot.leases.retain(|&(w, _)| w != p.worker);
                }
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// The assignment loop: while some open question has both free
    /// capacity and an eligible worker, sample a worker uniformly
    /// (consuming draws on ineligible picks, exactly like WireCrowd's
    /// distinct-worker rejection sampling), lease, and decide the
    /// answer and its latency on the spot.
    fn assign(&mut self, tick: u64) -> Result<(), SimError> {
        let per_question = self.scenario.per_question;
        loop {
            let opens = self.engine.open_questions(tick)?;
            self.reconcile(&opens, tick);
            let mut target: Option<(usize, Question)> = None;
            for (q, collected, leased) in &opens {
                if collected + leased >= per_question {
                    continue;
                }
                let m = self
                    .mirror
                    .iter()
                    .position(|s| s.id == q.id)
                    .expect("reconcile mirrors every open question");
                if (0..self.workers.len()).any(|i| self.eligible(m, i)) {
                    target = Some((m, q.clone()));
                    break;
                }
            }
            let Some((m, question)) = target else {
                return Ok(());
            };
            let pool = self.workers.len();
            let mut attempts = 0usize;
            let widx = loop {
                attempts += 1;
                if attempts > 1_000_000 {
                    return Err(SimError::Engine("worker sampling diverged".into()));
                }
                let i = self.rng.gen_range(0..pool);
                if self.eligible(m, i) {
                    break i;
                }
            };
            let worker = self.workers[widx].name.clone();
            let Some(assignment) = self.engine.next_for(&worker, tick)? else {
                return Err(SimError::Engine(format!(
                    "engine refused worker {worker:?} the simulator deemed eligible"
                )));
            };
            if assignment.question.id != question.id {
                return Err(SimError::Engine(format!(
                    "engine assigned {} where the simulator expected {}",
                    assignment.question.id, question.id
                )));
            }
            self.last_progress = tick;
            self.mirror[m].leases.push((widx, assignment.deadline_ms));
            self.events.push(TraceEvent {
                tick,
                kind: EventKind::Lease { worker, question: question.id.0 },
            });
            // The answer's content is decided the moment the worker
            // accepts the assignment; only its delivery is delayed.
            let truth = self.d.is_match(question.pair.0, question.pair.1);
            let says = self.draw_answer(widx, truth);
            let (lo, hi) = self.scenario.cohorts[self.workers[widx].cohort].latency;
            // A degenerate latency range consumes no randomness — this
            // keeps zero-latency cohorts on WireCrowd's exact stream.
            let latency = if lo == hi { lo } else { self.rng.gen_range(lo..=hi) };
            if latency == 0 {
                self.deliver(
                    Pending { worker: widx, question: question.id, says, due: tick },
                    tick,
                )?;
            } else {
                self.workers[widx].busy = true;
                self.pending.push(Pending {
                    worker: widx,
                    question: question.id,
                    says,
                    due: tick + latency,
                });
            }
        }
    }

    /// Syncs the mirror to the engine's open set and prunes leases with
    /// the engine's own rule (`expiry > now`).
    fn reconcile(&mut self, opens: &[(Question, usize, usize)], tick: u64) {
        self.mirror.retain(|s| opens.iter().any(|(q, _, _)| q.id == s.id));
        for (q, _, _) in opens {
            if !self.mirror.iter().any(|s| s.id == q.id) {
                self.mirror.push(MirrorSlot { id: q.id, answered: Vec::new(), leases: Vec::new() });
            }
        }
        for slot in &mut self.mirror {
            slot.leases.retain(|&(_, deadline)| deadline > tick);
        }
    }

    fn eligible(&self, m: usize, i: usize) -> bool {
        let w = &self.workers[i];
        w.active
            && !w.busy
            && !self.mirror[m].answered.contains(&i)
            && !self.mirror[m].leases.iter().any(|&(wi, _)| wi == i)
    }

    fn draw_answer(&mut self, widx: usize, truth: bool) -> bool {
        match self.workers[widx].behavior {
            Behavior::Honest { .. } => {
                let correct = self.rng.gen_bool(self.workers[widx].quality);
                if correct {
                    truth
                } else {
                    !truth
                }
            }
            Behavior::Coin => self.rng.gen_bool(0.5),
            Behavior::AlwaysYes => true,
            Behavior::AlwaysNo => false,
            Behavior::Colluder => !truth,
        }
    }

    fn report(mut self, ticks: u64, complete: bool, stalled: bool) -> SimReport {
        let outcome = self.engine.outcome();
        let eval = evaluate_matches(outcome.matches.iter().copied(), &self.d.gold);
        let records: std::collections::BTreeMap<String, (f64, u64, u64)> = self
            .engine
            .worker_estimates()
            .into_iter()
            .map(|(name, estimate, r)| (name, (estimate, r.scored, r.agreed)))
            .collect();
        let workers: Vec<WorkerReport> = self
            .workers
            .iter()
            .map(|w| {
                let (estimate, scored, agreed) =
                    records.get(&w.name).copied().unwrap_or((self.scenario.qualification, 0, 0));
                WorkerReport {
                    name: w.name.clone(),
                    cohort: self.scenario.cohorts[w.cohort].name.clone(),
                    behavior: w.behavior.code(),
                    true_quality: w.behavior.is_honest().then_some(w.quality),
                    estimate,
                    scored,
                    agreed,
                }
            })
            .collect();
        let estimator = EstimatorReport::from_workers(&workers);
        let trace_hash = trace_hash(&self.events);
        SimReport {
            scenario: self.scenario.name.clone(),
            dataset: self.scenario.dataset.clone(),
            seed: self.scenario.seed,
            ticks,
            complete,
            stalled,
            questions_asked: outcome.questions_asked,
            loops: outcome.loops,
            answers_delivered: self.delivered,
            answers_rejected: self.rejected,
            answers_dropped: self.dropped,
            leases: self.engine.lease_stats(),
            workers_total: self.workers.len(),
            workers_arrived: self.arrived,
            workers_left: self.left,
            outcome,
            eval,
            estimator,
            workers,
            trace: self.events,
            trace_hash,
        }
    }
}
