//! `remp-sim` — a discrete-tick campaign simulator with adversarial
//! crowds.
//!
//! The paper's accuracy results (§VIII) assume well-behaved workers;
//! real deployments face churn, latency, drifting quality and outright
//! spam (CrowdER documents how noisy real crowd workers are). This
//! crate stress-tests the serving stack against exactly those
//! conditions: a seeded population of virtual workers — each with an
//! arrival/departure schedule, a per-answer latency distribution, a
//! quality profile that may drift per tick, and optionally adversarial
//! behavior (coin-flip spammers, always-yes/no answerers, coordinated
//! wrong-answer cliques) — drives a real
//! [`CampaignEngine`](remp_serve::CampaignEngine) end to end on
//! **virtual time**: one tick is one millisecond of the lease clock, so
//! lease expiry and re-issue happen deterministically with no sleeps
//! anywhere.
//!
//! Guarantees:
//!
//! * **Determinism.** Same [`Scenario`] + same seed ⇒ bit-identical
//!   event trace, report and campaign outcome, on every run and under
//!   any `Parallelism` (the pipeline itself is bit-stable across thread
//!   counts).
//! * **Reference equivalence.** The `honest` preset reproduces the
//!   exact RNG stream of [`remp_serve::sim::WireCrowd`], so its outcome
//!   equals [`remp_serve::sim::reference_outcome`] — the simulator is
//!   provably the existing equivalence proof plus time, not a fork of
//!   it.
//!
//! Scenario files, presets and replay rules are documented in
//! `SCENARIOS.md`; `rempctl simulate` is the CLI entry point and also
//! emits the robustness curves (F1 vs spam rate, crowd cost vs churn)
//! committed as `ROBUSTNESS.json`.

pub mod report;
pub mod scenario;
pub mod trace;
pub mod world;

pub use report::{
    churn_curve, robustness_report, spam_curve, EstimatorReport, SimReport, WorkerReport,
};
pub use scenario::{preset, preset_names, Behavior, Cohort, Scenario};
pub use trace::{trace_hash, EventKind, TraceEvent};
pub use world::{run_scenario, run_scenario_with};

use std::fmt;

/// Everything that can go wrong building or running a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The scenario itself is malformed (unknown dataset, zero-sized
    /// cohort, latency ≥ lease, ...).
    BadScenario(String),
    /// The campaign engine rejected something mid-run — a simulator
    /// bug, since the simulator only replays legal request sequences.
    Engine(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadScenario(msg) => write!(f, "bad scenario: {msg}"),
            SimError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<remp_serve::ServeError> for SimError {
    fn from(e: remp_serve::ServeError) -> SimError {
        SimError::Engine(e.to_string())
    }
}
