//! Run reports and the robustness curves.
//!
//! [`SimReport`] is everything one run produced: outcome quality
//! against the generator's gold standard, crowd cost, lease churn,
//! estimator accuracy, per-worker detail and the full event trace.
//! [`robustness_report`] runs the two sweeps the paper's robustness
//! story needs — F1 vs spam rate and crowd cost vs churn — and returns
//! them as one JSON document (committed as `ROBUSTNESS.json`).

use remp_core::{PrecisionRecall, RempOutcome};
use remp_json::Json;
use remp_serve::LeaseStats;

use crate::scenario::{Behavior, Cohort, Scenario};
use crate::trace::TraceEvent;
use crate::world::run_scenario;
use crate::SimError;

/// One worker's final standing.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerReport {
    /// Worker name.
    pub name: String,
    /// Cohort the worker came from.
    pub cohort: String,
    /// Behavior wire code.
    pub behavior: &'static str,
    /// The hidden true quality at end of run (honest behaviors only).
    pub true_quality: Option<f64>,
    /// The engine's final quality estimate.
    pub estimate: f64,
    /// Verdict-scored answers.
    pub scored: u64,
    /// Scored answers that agreed with the verdict.
    pub agreed: u64,
}

impl WorkerReport {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cohort".into(), Json::from(self.cohort.as_str())),
            ("behavior".into(), Json::from(self.behavior)),
            ("true_quality".into(), self.true_quality.map_or(Json::Null, Json::from)),
            ("estimate".into(), Json::from(self.estimate)),
            ("scored".into(), Json::from(self.scored)),
            ("agreed".into(), Json::from(self.agreed)),
        ])
    }
}

/// How well the quality estimator did against the hidden truth.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorReport {
    /// Mean `|estimate − true quality|` over scored honest workers;
    /// `None` when no honest worker was scored.
    pub honest_mean_abs_error: Option<f64>,
    /// Highest estimate any scored adversarial worker walked away
    /// with — the number that must sit below the qualification floor
    /// for spam to be screened out.
    pub adversary_max_estimate: Option<f64>,
}

impl EstimatorReport {
    /// Aggregates over the final per-worker reports.
    pub fn from_workers(workers: &[WorkerReport]) -> EstimatorReport {
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        let mut adversary_max: Option<f64> = None;
        for w in workers {
            if w.scored == 0 {
                continue;
            }
            match w.true_quality {
                Some(truth) => {
                    err_sum += (w.estimate - truth).abs();
                    err_n += 1;
                }
                None => {
                    adversary_max =
                        Some(adversary_max.map_or(w.estimate, |m: f64| m.max(w.estimate)));
                }
            }
        }
        EstimatorReport {
            honest_mean_abs_error: (err_n > 0).then(|| err_sum / err_n as f64),
            adversary_max_estimate: adversary_max,
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::from);
        Json::Obj(vec![
            ("honest_mean_abs_error".into(), opt(self.honest_mean_abs_error)),
            ("adversary_max_estimate".into(), opt(self.adversary_max_estimate)),
        ])
    }
}

/// Everything one simulation run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Dataset preset the campaign ran on.
    pub dataset: String,
    /// The seed.
    pub seed: u64,
    /// Ticks consumed (the tick the run stopped on).
    pub ticks: u64,
    /// Whether the campaign finished.
    pub complete: bool,
    /// Whether the stall detector fired.
    pub stalled: bool,
    /// Questions submitted to the session (`#Q`).
    pub questions_asked: usize,
    /// Human-machine loops executed (`#L`).
    pub loops: usize,
    /// Answers the engine accepted.
    pub answers_delivered: u64,
    /// Answers the engine rejected (late, duplicate, stale).
    pub answers_rejected: u64,
    /// Answers dropped because their worker left first.
    pub answers_dropped: u64,
    /// Lease counters (issued / expired / re-issued).
    pub leases: LeaseStats,
    /// Pool size.
    pub workers_total: usize,
    /// Workers that ever arrived.
    pub workers_arrived: usize,
    /// Workers that left mid-run.
    pub workers_left: usize,
    /// The campaign's final outcome — matches, resolutions, counters.
    /// Carried whole so reference-equivalence tests can compare it
    /// field for field; `to_json` only summarizes it.
    pub outcome: RempOutcome,
    /// Outcome quality against the generator's gold standard.
    pub eval: PrecisionRecall,
    /// Estimator accuracy against the hidden qualities.
    pub estimator: EstimatorReport,
    /// Per-worker detail.
    pub workers: Vec<WorkerReport>,
    /// The full event trace.
    pub trace: Vec<TraceEvent>,
    /// FNV-1a over the trace — the replay fingerprint.
    pub trace_hash: u64,
}

impl SimReport {
    /// JSON form; the trace is large, so its inclusion is opt-in (the
    /// `trace_hash` fingerprint is always present).
    pub fn to_json(&self, include_trace: bool) -> Json {
        let mut fields = vec![
            ("scenario".into(), Json::from(self.scenario.as_str())),
            ("dataset".into(), Json::from(self.dataset.as_str())),
            ("seed".into(), Json::from(self.seed)),
            ("ticks".into(), Json::from(self.ticks)),
            ("complete".into(), Json::from(self.complete)),
            ("stalled".into(), Json::from(self.stalled)),
            ("questions_asked".into(), Json::from(self.questions_asked)),
            ("loops".into(), Json::from(self.loops)),
            (
                "answers".into(),
                Json::Obj(vec![
                    ("delivered".into(), Json::from(self.answers_delivered)),
                    ("rejected".into(), Json::from(self.answers_rejected)),
                    ("dropped".into(), Json::from(self.answers_dropped)),
                ]),
            ),
            (
                "leases".into(),
                Json::Obj(vec![
                    ("issued".into(), Json::from(self.leases.issued)),
                    ("expired".into(), Json::from(self.leases.expired)),
                    ("reissued".into(), Json::from(self.leases.reissued)),
                ]),
            ),
            (
                "workers".into(),
                Json::Obj(vec![
                    ("total".into(), Json::from(self.workers_total)),
                    ("arrived".into(), Json::from(self.workers_arrived)),
                    ("left".into(), Json::from(self.workers_left)),
                ]),
            ),
            ("per_tick".into(), self.per_tick_json()),
            ("eval".into(), self.eval.to_json()),
            ("estimator".into(), self.estimator.to_json()),
            (
                "worker_detail".into(),
                Json::Arr(self.workers.iter().map(WorkerReport::to_json).collect()),
            ),
            ("trace_hash".into(), Json::from(format!("{:016x}", self.trace_hash).as_str())),
        ];
        if include_trace {
            fields.push((
                "trace".into(),
                Json::Arr(self.trace.iter().map(TraceEvent::to_json).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Per-tick rates — throughput counters normalized by run length
    /// (nulls for a zero-tick run).
    fn per_tick_json(&self) -> Json {
        let rate = |v: u64| {
            if self.ticks == 0 {
                Json::Null
            } else {
                Json::from(v as f64 / self.ticks as f64)
            }
        };
        Json::Obj(vec![
            ("answers_delivered".into(), rate(self.answers_delivered)),
            ("answers_rejected".into(), rate(self.answers_rejected)),
            ("leases_issued".into(), rate(self.leases.issued)),
            ("leases_expired".into(), rate(self.leases.expired)),
            ("questions_submitted".into(), rate(self.questions_asked as u64)),
        ])
    }
}

// ---- robustness curves ------------------------------------------------

/// Spam fractions swept by the robustness report.
const SPAM_FRACTIONS: [f64; 4] = [0.0, 0.2, 0.4, 0.6];
/// Churn fractions swept by the robustness report.
const CHURN_FRACTIONS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];
/// Pool size for the spam sweep.
const SPAM_POOL: usize = 25;
/// Pool size for the churn sweep — small on purpose, so the campaign
/// is still mid-flight when the leavers walk out.
const CHURN_POOL: usize = 8;

fn sweep_base(name: String, seed: u64) -> Scenario {
    Scenario {
        name,
        dataset: "TINY".into(),
        scale: 1.0,
        seed,
        budget: None,
        mu: None,
        per_question: 5,
        qualification: 0.85,
        quality_weight: 5.0,
        lease_ticks: 50,
        max_ticks: 20_000,
        cohorts: Vec::new(),
    }
}

fn honest_behavior() -> Behavior {
    Behavior::Honest { min_quality: 0.8, max_quality: 0.99, drift_per_tick: 0.0 }
}

/// F1 vs spam rate: a fixed pool where a growing fraction answers by
/// coin flip.
fn spam_point(fraction: f64, seed: u64) -> Result<Json, SimError> {
    let spam = (SPAM_POOL as f64 * fraction).round() as usize;
    let honest = SPAM_POOL - spam;
    let mut scenario = sweep_base(format!("spam-{:.0}pct", fraction * 100.0), seed);
    scenario.cohorts.push(Cohort::instant("w", honest, honest_behavior()));
    if spam > 0 {
        scenario.cohorts.push(Cohort::instant("spam", spam, Behavior::Coin));
    }
    let report = run_scenario(&scenario)?;
    Ok(Json::Obj(vec![
        ("spam_fraction".into(), Json::from(fraction)),
        ("f1".into(), Json::from(report.eval.f1)),
        ("precision".into(), Json::from(report.eval.precision)),
        ("recall".into(), Json::from(report.eval.recall)),
        ("questions".into(), Json::from(report.questions_asked)),
        ("answers".into(), Json::from(report.answers_delivered)),
        ("adversary_max_estimate".into(), {
            report.estimator.adversary_max_estimate.map_or(Json::Null, Json::from)
        }),
        ("complete".into(), Json::from(report.complete)),
    ]))
}

/// Crowd cost vs churn: a growing fraction of the pool walks out
/// mid-campaign with answers in flight, replaced by staggered late
/// arrivals — short leases make the abandoned slots expire and
/// re-issue, which is the cost the curve measures.
fn churn_point(fraction: f64, seed: u64) -> Result<Json, SimError> {
    let leavers = (CHURN_POOL as f64 * fraction).round() as usize;
    let stayers = CHURN_POOL - leavers;
    let mut scenario = sweep_base(format!("churn-{:.0}pct", fraction * 100.0), seed);
    scenario.lease_ticks = 8;
    scenario.cohorts.push(Cohort {
        name: "stay".into(),
        count: stayers,
        behavior: honest_behavior(),
        arrive_tick: 0,
        arrive_stagger: 0,
        leave_tick: None,
        latency: (1, 4),
    });
    if leavers > 0 {
        scenario.cohorts.push(Cohort {
            name: "quit".into(),
            count: leavers,
            behavior: honest_behavior(),
            arrive_tick: 0,
            arrive_stagger: 0,
            leave_tick: Some(12),
            latency: (1, 4),
        });
        // Late replacements keep the pool from starving at high churn.
        scenario.cohorts.push(Cohort {
            name: "relief".into(),
            count: leavers,
            behavior: honest_behavior(),
            arrive_tick: 10,
            arrive_stagger: 2,
            leave_tick: None,
            latency: (1, 4),
        });
    }
    let report = run_scenario(&scenario)?;
    Ok(Json::Obj(vec![
        ("churn_fraction".into(), Json::from(fraction)),
        ("answers".into(), Json::from(report.answers_delivered)),
        (
            "leases".into(),
            Json::Obj(vec![
                ("issued".into(), Json::from(report.leases.issued)),
                ("expired".into(), Json::from(report.leases.expired)),
                ("reissued".into(), Json::from(report.leases.reissued)),
            ]),
        ),
        ("dropped".into(), Json::from(report.answers_dropped)),
        ("ticks".into(), Json::from(report.ticks)),
        ("f1".into(), Json::from(report.eval.f1)),
        ("complete".into(), Json::from(report.complete)),
    ]))
}

/// F1 vs spam rate, one point per swept fraction.
pub fn spam_curve(seed: u64) -> Result<Json, SimError> {
    let mut points = Vec::new();
    for f in SPAM_FRACTIONS {
        points.push(spam_point(f, seed)?);
    }
    Ok(Json::Arr(points))
}

/// Crowd cost vs churn, one point per swept fraction.
pub fn churn_curve(seed: u64) -> Result<Json, SimError> {
    let mut points = Vec::new();
    for f in CHURN_FRACTIONS {
        points.push(churn_point(f, seed)?);
    }
    Ok(Json::Arr(points))
}

/// The full robustness document: F1 vs spam rate and crowd cost vs
/// churn, all runs deterministic in `seed`.
pub fn robustness_report(seed: u64) -> Result<Json, SimError> {
    Ok(Json::Obj(vec![
        ("version".into(), Json::from(1u64)),
        ("seed".into(), Json::from(seed)),
        ("dataset".into(), Json::from("TINY")),
        ("spam_curve".into(), spam_curve(seed)?),
        ("churn_curve".into(), churn_curve(seed)?),
    ]))
}
