//! Consistency between relationships (paper §V-A, Eqs. 3–5).
//!
//! For a relationship pair `(r1, r2)`, `ε1` is the probability that a value
//! of `r1` on a matched entity has a matched counterpart among the values
//! of `r2`, and symmetrically for `ε2`. They are estimated from the initial
//! matches `M_in` via the likelihood of Eq. 4 with latent per-pair match
//! counts `L_{u1,u2}`.
//!
//! ## Optimisation
//! The paper reduces Eq. 5 to piecewise-continuous optimisation; we use the
//! statistically identical **hard-EM** (documented in DESIGN.md): given
//! `(ε1, ε2)`, the inner maximiser over each integer `L` is unimodal with a
//! closed-form increment test, and given the `L`s the outer maximiser is
//! the closed form `ε_i = ΣL / Σ|N_i|`. Multi-start protects against local
//! optima.
//!
//! ## Anchoring the latent counts
//! Maximising Eq. 5 over *unconstrained* latent counts is degenerate: the
//! corner `ε → 0` with all `L = 0` attains likelihood 1, and for balanced
//! sizes so does `ε → 1` with `L = n`. The latent variable is defined as
//! `L_{u1,u2} = |M_{u1,u2}|`, the number of matches between the value
//! sets — and two parts of `M_{u1,u2}` are observable: the seed matches
//! between the value sets bound it from *below*, and the candidate pairs
//! between the value sets bound it from *above* (blocking already ruled
//! everything else out as non-matches). Constraining `L` to
//! `[seed_matches, candidate_pairs]` anchors the likelihood, removes both
//! degenerate corners, and still lets the E-step infer unobserved matches
//! among the candidates.

use remp_ergraph::{Candidates, Direction, EdgeLabel, ErGraph, PairId, RelPairId};
use remp_kb::{EntityId, IdHashMap, IdHashSet, Kb};
use remp_par::Parallelism;

/// Seed matches indexed by the KB1 entity, for O(deg) overlap counts.
///
/// Shared between the from-scratch estimator and the incremental
/// [`LoopState`](crate::LoopState), which maintains one across loops
/// instead of rebuilding it from the full seed set. Keyed with the
/// deterministic [`remp_kb::IdHasher`] — the index is lookup-only, so
/// the hasher cannot affect outputs, it only removes SipHash from the
/// inner loop of every observation count.
pub(crate) type SeedIndex = IdHashMap<EntityId, IdHashSet<EntityId>>;

/// Builds the [`SeedIndex`] of a seed set.
pub(crate) fn index_seeds(candidates: &Candidates, seeds: &[PairId]) -> SeedIndex {
    let mut seed_right: SeedIndex = SeedIndex::default();
    for &s in seeds {
        let (u1, u2) = candidates.pair(s);
        seed_right.entry(u1).or_default().insert(u2);
    }
    seed_right
}

/// The value sets of one seed pair under one edge label: outgoing
/// `r`-values for [`Direction::Forward`], incoming subjects (the `r⁻`
/// view) for [`Direction::Reverse`].
fn label_values(
    kb1: &Kb,
    kb2: &Kb,
    (u1, u2): (EntityId, EntityId),
    label: EdgeLabel,
) -> (Vec<EntityId>, Vec<EntityId>) {
    match label.dir {
        Direction::Forward => (
            kb1.rel_values(u1, label.r1).iter().map(|&(_, o)| o).collect(),
            kb2.rel_values(u2, label.r2).iter().map(|&(_, o)| o).collect(),
        ),
        Direction::Reverse => (
            kb1.rel_subjects(u1, label.r1).iter().map(|&(_, o)| o).collect(),
            kb2.rel_subjects(u2, label.r2).iter().map(|&(_, o)| o).collect(),
        ),
    }
}

/// The [`SizeObservation`] one seed contributes to one label's estimate,
/// or `None` when both value sets are empty (no information).
///
/// This is the single code path behind both [`ConsistencyTable::estimate`]
/// and the incremental per-seed cache, so the two produce bit-identical
/// observations by construction.
pub(crate) fn seed_observation(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    seed_right: &SeedIndex,
    seed: PairId,
    label: EdgeLabel,
) -> Option<SizeObservation> {
    let (values1, values2) = label_values(kb1, kb2, candidates.pair(seed), label);
    if values1.is_empty() && values2.is_empty() {
        return None;
    }
    let count_between = |contains: &dyn Fn(EntityId, EntityId) -> bool| -> usize {
        values1.iter().map(|&o1| values2.iter().filter(|&&o2| contains(o1, o2)).count()).sum()
    };
    let lower =
        count_between(&|o1, o2| seed_right.get(&o1).is_some_and(|rights| rights.contains(&o2)));
    let upper = count_between(&|o1, o2| candidates.id_of((o1, o2)).is_some());
    Some(SizeObservation::new(values1.len(), values2.len(), lower, upper))
}

/// Consistency parameters of one relationship pair (Eq. 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Consistency {
    /// `Pr[∃u'2 ∈ N_{u2}^{r2} matching u'1 | u1 ≃ u2, u'1 ∈ N_{u1}^{r1}]`.
    pub eps1: f64,
    /// Symmetric parameter for KB2 values.
    pub eps2: f64,
}

impl Consistency {
    /// A neutral prior used when no observations exist (0.5, 0.5).
    pub const UNINFORMED: Consistency = Consistency { eps1: 0.5, eps2: 0.5 };
}

/// One observation for the estimator: the two value-set sizes and the
/// observable bounds on the latent match count (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeObservation {
    /// `|N_{u1}^{r1}|`.
    pub n1: usize,
    /// `|N_{u2}^{r2}|`.
    pub n2: usize,
    /// Seed matches between the value sets — lower bound on `L_{u1,u2}`.
    pub lower: usize,
    /// Candidate pairs between the value sets — upper bound on `L_{u1,u2}`.
    pub upper: usize,
}

impl SizeObservation {
    /// Convenience constructor clamping the bounds into range
    /// (`lower ≤ upper ≤ min(n1, n2)`).
    pub fn new(n1: usize, n2: usize, lower: usize, upper: usize) -> Self {
        let upper = upper.min(n1.min(n2));
        SizeObservation { n1, n2, lower: lower.min(upper), upper }
    }
}

/// Parameter bounds keeping logits finite.
const EPS_MIN: f64 = 1e-3;
const EPS_MAX: f64 = 1.0 - 1e-3;

/// `ln C(n, k)` computed incrementally — exact enough for n in the
/// thousands, no lookup table needed.
fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    (1..=k).map(|i| (((n + 1 - i) as f64) / i as f64).ln()).sum()
}

/// E-step: `argmax_{l_min ≤ L ≤ l_max} ln C(n1,L) + ln C(n2,L) +
/// L·logit_sum` with its value.
///
/// The increment `f(L+1) − f(L) = ln((n1−L)/(L+1)) + ln((n2−L)/(L+1)) +
/// logit_sum` strictly decreases in `L`, so the objective is unimodal:
/// climb from `l_min` while the increment is positive.
fn best_latent_count(
    n1: usize,
    n2: usize,
    l_min: usize,
    l_max: usize,
    logit_sum: f64,
) -> (usize, f64) {
    let l_max = l_max.min(n1.min(n2));
    let l_min = l_min.min(l_max);
    let mut l = l_min;
    let mut value = ln_choose(n1, l) + ln_choose(n2, l) + l as f64 * logit_sum;
    while l < l_max {
        let delta = (((n1 - l) as f64) / (l + 1) as f64).ln()
            + (((n2 - l) as f64) / (l + 1) as f64).ln()
            + logit_sum;
        if delta <= 0.0 {
            break;
        }
        value += delta;
        l += 1;
    }
    (l, value)
}

/// Full profile log-likelihood of Eqs. 4–5 for fixed parameters,
/// maximising each constrained latent count.
fn profile_log_likelihood(obs: &[SizeObservation], eps1: f64, eps2: f64) -> f64 {
    let logit = (eps1 / (1.0 - eps1)).ln() + (eps2 / (1.0 - eps2)).ln();
    obs.iter()
        .map(|o| {
            let base = o.n1 as f64 * (1.0 - eps1).ln() + o.n2 as f64 * (1.0 - eps2).ln();
            base + best_latent_count(o.n1, o.n2, o.lower, o.upper, logit).1
        })
        .sum()
}

/// Estimates `(ε1, ε2)` for one relationship pair from size observations
/// over seed matches (Eq. 5, hard-EM with anchored latent counts).
///
/// Observations where both sides are empty carry no information and are
/// ignored. Returns [`Consistency::UNINFORMED`] when nothing remains.
pub fn estimate_consistency(observations: &[SizeObservation]) -> Consistency {
    let obs: Vec<SizeObservation> = observations
        .iter()
        .map(|o| SizeObservation::new(o.n1, o.n2, o.lower, o.upper))
        .filter(|o| o.n1 + o.n2 > 0)
        .collect();
    if obs.is_empty() {
        return Consistency::UNINFORMED;
    }
    let total1: f64 = obs.iter().map(|o| o.n1 as f64).sum();
    let total2: f64 = obs.iter().map(|o| o.n2 as f64).sum();
    if total1 == 0.0 || total2 == 0.0 {
        // One side never has values: no propagation evidence at all.
        return Consistency { eps1: EPS_MIN, eps2: EPS_MIN };
    }

    let mut best: Option<(f64, Consistency)> = None;
    for &(init1, init2) in &[(0.1f64, 0.1f64), (0.5, 0.5), (0.9, 0.9), (0.9, 0.1), (0.1, 0.9)] {
        let (mut e1, mut e2) = (init1, init2);
        for _ in 0..60 {
            let logit = (e1 / (1.0 - e1)).ln() + (e2 / (1.0 - e2)).ln();
            let sum_l: f64 = obs
                .iter()
                .map(|o| best_latent_count(o.n1, o.n2, o.lower, o.upper, logit).0 as f64)
                .sum();
            let new1 = (sum_l / total1).clamp(EPS_MIN, EPS_MAX);
            let new2 = (sum_l / total2).clamp(EPS_MIN, EPS_MAX);
            let moved = (new1 - e1).abs() + (new2 - e2).abs();
            e1 = new1;
            e2 = new2;
            if moved < 1e-10 {
                break;
            }
        }
        let ll = profile_log_likelihood(&obs, e1, e2);
        if best.as_ref().is_none_or(|(b, _)| ll > *b) {
            best = Some((ll, Consistency { eps1: e1, eps2: e2 }));
        }
    }
    best.expect("at least one start ran").1
}

/// Per-edge-label consistency parameters for an [`ErGraph`].
///
/// Label ids are dense (interned per graph), so the table is a flat
/// vector indexed by [`RelPairId`] — `get` is a bounds check and a load,
/// with no hashing on the propagation hot path.
#[derive(Clone, Debug)]
pub struct ConsistencyTable {
    by_label: Vec<Option<Consistency>>,
    populated: usize,
}

impl ConsistencyTable {
    /// Estimates consistencies for every edge label in `graph` using the
    /// seed matches `seeds` (paper: the initial matches `M_in`; the core
    /// pipeline re-estimates with crowd-confirmed matches).
    ///
    /// For a [`Direction::Forward`] label, `|N_{u}^{r}|` counts outgoing
    /// `r`-values; for [`Direction::Reverse`], incoming subjects (the `r⁻`
    /// view). Observed latent lower bounds count seed matches between the
    /// value sets.
    ///
    /// Each label's hard-EM fit only reads shared state, so the labels run
    /// data-parallel under `par` with identical estimates in every mode.
    pub fn estimate(
        kb1: &Kb,
        kb2: &Kb,
        candidates: &Candidates,
        graph: &ErGraph,
        seeds: &[PairId],
        par: &Parallelism,
    ) -> ConsistencyTable {
        let seed_right = index_seeds(candidates, seeds);
        let labels: Vec<(RelPairId, EdgeLabel)> = graph.labels().collect();
        let entries: Vec<(RelPairId, Consistency)> = par.par_map(&labels, |&(label_id, label)| {
            let obs: Vec<SizeObservation> = seeds
                .iter()
                .filter_map(|&s| seed_observation(kb1, kb2, candidates, &seed_right, s, label))
                .collect();
            (label_id, estimate_consistency(&obs))
        });
        Self::from_entries(entries)
    }

    /// Builds a table from explicit entries (tests, synthetic setups).
    pub fn from_entries(entries: impl IntoIterator<Item = (RelPairId, Consistency)>) -> Self {
        let mut table = ConsistencyTable { by_label: Vec::new(), populated: 0 };
        for (label, value) in entries {
            table.set(label, value);
        }
        table
    }

    /// The consistency of a label, [`Consistency::UNINFORMED`] if unseen.
    pub fn get(&self, label: RelPairId) -> Consistency {
        self.by_label.get(label.index()).copied().flatten().unwrap_or(Consistency::UNINFORMED)
    }

    /// Installs (or replaces) one label's estimate, returning `true`
    /// when the stored value actually changed — the incremental engine's
    /// cutoff: a re-estimated label whose parameters come out bit-equal
    /// dirties nothing downstream.
    pub(crate) fn set(&mut self, label: RelPairId, value: Consistency) -> bool {
        if label.index() >= self.by_label.len() {
            self.by_label.resize(label.index() + 1, None);
        }
        let slot = &mut self.by_label[label.index()];
        if slot.is_none() {
            self.populated += 1;
        }
        slot.replace(value) != Some(value)
    }

    /// Number of labels with estimates.
    pub fn len(&self) -> usize {
        self.populated
    }

    /// True when no labels have estimates.
    pub fn is_empty(&self) -> bool {
        self.populated == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn so(n1: usize, n2: usize, lower: usize, upper: usize) -> SizeObservation {
        SizeObservation::new(n1, n2, lower, upper)
    }

    #[test]
    fn ln_choose_basics() {
        assert!((ln_choose(5, 2) - (10.0f64).ln()).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(4, 0), 0.0);
    }

    #[test]
    fn best_latent_count_monotone_in_logit() {
        let (l_low, _) = best_latent_count(5, 5, 0, 5, -3.0);
        let (l_high, _) = best_latent_count(5, 5, 0, 5, 3.0);
        assert!(l_low <= l_high);
        assert_eq!(best_latent_count(5, 5, 0, 5, 100.0).0, 5);
        assert_eq!(best_latent_count(5, 5, 0, 5, -100.0).0, 0);
    }

    #[test]
    fn best_latent_count_respects_bounds() {
        assert_eq!(best_latent_count(5, 5, 3, 5, -100.0).0, 3, "lower bound binds");
        assert_eq!(best_latent_count(5, 5, 0, 2, 100.0).0, 2, "upper bound binds");
        assert_eq!(best_latent_count(2, 4, 9, 9, -100.0).0, 2, "bounds clamp to min(n1,n2)");
    }

    #[test]
    fn functional_relationship_recovers_high_consistency() {
        // Every seed has exactly one value on both sides and the seed set
        // confirms the match: ε ≈ 1.
        let obs = vec![so(1, 1, 1, 1); 50];
        let c = estimate_consistency(&obs);
        assert!(c.eps1 > 0.9, "eps1 = {}", c.eps1);
        assert!(c.eps2 > 0.9, "eps2 = {}", c.eps2);
    }

    #[test]
    fn unobserved_matches_give_low_consistency() {
        // No candidate pairs between the value sets: L is pinned to 0.
        let obs = vec![so(3, 3, 0, 0); 30];
        let c = estimate_consistency(&obs);
        assert!(c.eps1 < 0.1, "eps1 = {}", c.eps1);
    }

    #[test]
    fn one_sided_values_give_low_consistency() {
        // KB1 has 3 values, KB2 none → nothing can match.
        let obs = vec![so(3, 0, 0, 0); 30];
        let c = estimate_consistency(&obs);
        assert!(c.eps1 < 0.1, "eps1 = {}", c.eps1);
    }

    #[test]
    fn empty_observations_are_uninformed() {
        assert_eq!(estimate_consistency(&[]), Consistency::UNINFORMED);
        assert_eq!(estimate_consistency(&[so(0, 0, 0, 0)]), Consistency::UNINFORMED);
    }

    #[test]
    fn recovers_planted_consistency() {
        // Planted ε = 0.7: each pair has n values per side, ~70% of the
        // KB1 values have a matching counterpart that the seeds observe.
        let mut rng = StdRng::seed_from_u64(7);
        let mut obs = Vec::new();
        for _ in 0..500 {
            let n = rng.gen_range(1..6usize);
            let matched = (0..n).filter(|_| rng.gen_bool(0.7)).count();
            obs.push(so(n, n, matched, matched));
        }
        let c = estimate_consistency(&obs);
        assert!((c.eps1 - 0.7).abs() < 0.1, "eps1 = {}", c.eps1);
        assert!((c.eps2 - 0.7).abs() < 0.1, "eps2 = {}", c.eps2);
    }

    #[test]
    fn partial_observation_still_pulls_upward() {
        // True L is 2 per pair but seeds only witness 1 of the 2 candidate
        // pairs: the E-step may infer the second; the estimate must be at
        // least the observed rate.
        let obs = vec![so(2, 2, 1, 2); 40];
        let c = estimate_consistency(&obs);
        assert!(c.eps1 >= 0.5 - 1e-9, "eps1 = {}", c.eps1);
    }

    #[test]
    fn asymmetric_sizes_give_asymmetric_eps() {
        // KB1 side: 1 value, always matched; KB2 side: 4 values, 1 matched.
        let obs = vec![so(1, 4, 1, 1); 40];
        let c = estimate_consistency(&obs);
        assert!(c.eps1 > 0.8, "eps1 = {}", c.eps1);
        assert!(c.eps2 < 0.5, "eps2 = {}", c.eps2);
    }

    #[test]
    fn table_uninformed_for_unknown_label() {
        let t = ConsistencyTable::from_entries([]);
        assert!(t.is_empty());
        assert_eq!(t.get(RelPairId(3)), Consistency::UNINFORMED);
    }

    #[test]
    fn profile_likelihood_prefers_consistent_fit() {
        // Data with fully observed matches scores higher at ε = 0.9 than 0.1.
        let obs = vec![so(1, 1, 1, 1); 40];
        let high = profile_log_likelihood(&obs, 0.9, 0.9);
        let low = profile_log_likelihood(&obs, 0.1, 0.1);
        assert!(high > low);
    }
}
