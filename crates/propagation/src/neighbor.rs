//! Match propagation to neighbours — the basic case (paper §V-B,
//! Eqs. 6–9).
//!
//! Given a match `u1 ≃ u2` and a relationship pair `(r1, r2)` with value
//! sets `N1 = N_{u1}^{r1}`, `N2 = N_{u2}^{r2}`, the candidate pairs inside
//! `N1 × N2` are resolved *jointly*: every partial matching `M ⊆ N1 × N2`
//! (no entity reused — the paper's no-duplicates assumption) is scored by
//!
//! `Pr[M | u1≃u2] ∝ f(M) · g(M|N1) · g(M|N2)`
//!
//! where `f` multiplies the priors of chosen/unchosen candidate pairs
//! (Eq. 7) and `g` rewards matchings that cover a consistent fraction of
//! each value set (Eq. 8). Posteriors of individual pairs are the
//! marginals over all matchings containing them (Eq. 9).
//!
//! Enumeration is exponential in the worst case, so beyond
//! [`PropagationConfig::enumeration_budget`] partial matchings we switch to
//! a beam search over the same state space (width
//! [`PropagationConfig::beam_width`]) — an approximation documented in
//! DESIGN.md and exercised by `bench_propagation`.

use remp_ergraph::PairId;

use crate::Consistency;

/// One candidate pair inside the value-set product `N1 × N2`.
#[derive(Clone, Copy, Debug)]
pub struct MatchingCandidate {
    /// Index of the KB1 value within `N1` (0-based, dense).
    pub left: usize,
    /// Index of the KB2 value within `N2`.
    pub right: usize,
    /// The ER-graph vertex this pair corresponds to.
    pub pair: PairId,
    /// Prior match probability `Pr[m_p]`.
    pub prior: f64,
}

/// Tuning knobs for the matching enumeration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationConfig {
    /// Maximum number of partial matchings to enumerate exactly before
    /// falling back to beam search.
    pub enumeration_budget: usize,
    /// Beam width of the fallback.
    pub beam_width: usize,
    /// Hard cap on candidates considered per value-set pair; the
    /// lowest-prior candidates beyond the cap are dropped (posterior 0).
    pub max_candidates: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig { enumeration_budget: 50_000, beam_width: 256, max_candidates: 64 }
    }
}

/// A partial matching state during enumeration: which left/right value
/// indexes are used (bitmasks) and the log-score so far.
#[derive(Clone, Copy, Debug)]
struct State {
    used_left: u64,
    used_right: u64,
    members: u64, // bitmask over candidate indexes (≤ 64 by max_candidates)
    log_score: f64,
}

/// Computes posterior match probabilities `Pr[u'1 ≃ u'2 | u1 ≃ u2]`
/// (Eq. 9) for every candidate in `candidates`.
///
/// `n1`, `n2` are the *full* value-set sizes `|N1|`, `|N2|` (candidates may
/// cover only part of them — uncovered values contribute the `(1−ε)`
/// factors of Eq. 8). Returns `(pair, posterior)` aligned with the input
/// order. Empty candidate lists yield an empty result.
pub fn propagate_to_neighbors(
    n1: usize,
    n2: usize,
    candidates: &[MatchingCandidate],
    consistency: Consistency,
    config: &PropagationConfig,
) -> Vec<(PairId, f64)> {
    if candidates.is_empty() {
        return Vec::new();
    }
    debug_assert!(candidates.iter().all(|c| c.left < n1 && c.right < n2));

    // Cap the candidate list: keep the highest-prior candidates. 64 also
    // bounds the bitmask width.
    let mut cands: Vec<MatchingCandidate> = candidates.to_vec();
    let cap = config.max_candidates.min(64).min(usize::BITS as usize * 2).min(64);
    if cands.len() > cap {
        cands.sort_by(|a, b| b.prior.partial_cmp(&a.prior).unwrap_or(std::cmp::Ordering::Equal));
        cands.truncate(cap);
    }
    // Left/right indexes may exceed 64 even when the candidate list is
    // small; remap to dense local indexes so the bitmasks stay narrow.
    let mut left_ids: Vec<usize> = cands.iter().map(|c| c.left).collect();
    left_ids.sort_unstable();
    left_ids.dedup();
    let mut right_ids: Vec<usize> = cands.iter().map(|c| c.right).collect();
    right_ids.sort_unstable();
    right_ids.dedup();
    let local: Vec<(usize, usize)> = cands
        .iter()
        .map(|c| {
            (left_ids.binary_search(&c.left).unwrap(), right_ids.binary_search(&c.right).unwrap())
        })
        .collect();

    let eps1 = consistency.eps1.clamp(1e-6, 1.0 - 1e-6);
    let eps2 = consistency.eps2.clamp(1e-6, 1.0 - 1e-6);
    // Taking one more candidate into M multiplies the score by
    //   prior/(1−prior) · ε1/(1−ε1) · ε2/(1−ε2)
    // relative to leaving it out; the common factor Π(1−prior)·(1−ε1)^n1·
    // (1−ε2)^n2 cancels in the normalisation, so states start at 0.
    let gain: Vec<f64> = cands
        .iter()
        .map(|c| {
            let p = c.prior.clamp(1e-9, 1.0 - 1e-9);
            (p / (1.0 - p)).ln() + (eps1 / (1.0 - eps1)).ln() + (eps2 / (1.0 - eps2)).ln()
        })
        .collect();

    let states = enumerate_states(&local, &gain, config);

    // Marginalise with the log-sum-exp trick.
    let max_log = states.iter().map(|s| s.log_score).fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0f64;
    let mut member_mass = vec![0.0f64; cands.len()];
    for s in &states {
        let w = (s.log_score - max_log).exp();
        total += w;
        let mut bits = s.members;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            member_mass[i] += w;
            bits &= bits - 1;
        }
    }

    cands
        .iter()
        .enumerate()
        .map(|(i, c)| (c.pair, (member_mass[i] / total).clamp(0.0, 1.0)))
        .collect()
}

/// Enumerates (or beam-searches) all partial-matching states.
fn enumerate_states(
    local: &[(usize, usize)],
    gain: &[f64],
    config: &PropagationConfig,
) -> Vec<State> {
    let n = local.len();
    let mut states = vec![State { used_left: 0, used_right: 0, members: 0, log_score: 0.0 }];
    let mut overflowed = false;
    for i in 0..n {
        let (l, r) = local[i];
        let (lbit, rbit) = (1u64 << l, 1u64 << r);
        let mut next = Vec::with_capacity(states.len() * 2);
        for s in &states {
            next.push(*s); // skip candidate i
            if s.used_left & lbit == 0 && s.used_right & rbit == 0 {
                next.push(State {
                    used_left: s.used_left | lbit,
                    used_right: s.used_right | rbit,
                    members: s.members | (1u64 << i),
                    log_score: s.log_score + gain[i],
                });
            }
        }
        if next.len() > config.enumeration_budget || (overflowed && next.len() > config.beam_width)
        {
            // Beam fallback: keep the highest-scoring states. This biases
            // marginals toward high-probability matchings — acceptable
            // because posteriors are thresholded at τ anyway.
            overflowed = true;
            next.sort_by(|a, b| b.log_score.partial_cmp(&a.log_score).unwrap());
            next.truncate(config.beam_width);
        }
        states = next;
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(left: usize, right: usize, id: u32, prior: f64) -> MatchingCandidate {
        MatchingCandidate { left, right, pair: PairId(id), prior }
    }

    /// The paper's worked example (§V-B): Tim's two movies. The Fig. 1 ER
    /// graph contains three movie-pair vertices — (Cradle,Cradle),
    /// (Player,Player) and (Cradle,Player); (Player,Cradle) is not a
    /// candidate. With uniform priors 0.5 and ε = 0.95 the paper reports
    /// Pr[Cradle ≃ Cradle] ≈ 0.99 and Pr[Cradle ≃ Player] ≈ 0.01.
    #[test]
    fn paper_example_tim_movies() {
        let candidates = vec![
            cand(0, 0, 0, 0.5), // (Cradle, Cradle)
            cand(1, 1, 1, 0.5), // (Player, Player)
            cand(0, 1, 2, 0.5), // (Cradle, Player)
        ];
        let cons = Consistency { eps1: 0.95, eps2: 0.95 };
        let post = propagate_to_neighbors(2, 2, &candidates, cons, &PropagationConfig::default());
        let get = |id: u32| post.iter().find(|(p, _)| *p == PairId(id)).unwrap().1;
        assert!((get(0) - 0.99).abs() < 0.01, "Pr[Cradle≃Cradle] ≈ 0.99, got {}", get(0));
        assert!((get(1) - 0.99).abs() < 0.01, "Pr[Player≃Player] ≈ 0.99, got {}", get(1));
        assert!(get(2) < 0.02, "Pr[Cradle≃Player] ≈ 0.01, got {}", get(2));
    }

    #[test]
    fn posteriors_are_probabilities() {
        let candidates = vec![cand(0, 0, 0, 0.3), cand(0, 1, 1, 0.7), cand(1, 1, 2, 0.4)];
        let cons = Consistency { eps1: 0.8, eps2: 0.6 };
        let post = propagate_to_neighbors(2, 2, &candidates, cons, &PropagationConfig::default());
        for &(_, p) in &post {
            assert!((0.0..=1.0).contains(&p), "posterior {p} out of range");
        }
    }

    #[test]
    fn functional_relationship_boosts_single_pair() {
        // One value on each side, prior 0.5, ε → 0.99: posterior ≈
        // odds(0.5)·odds(0.99)² normalised ≈ 0.9999.
        let candidates = vec![cand(0, 0, 0, 0.5)];
        let cons = Consistency { eps1: 0.99, eps2: 0.99 };
        let post = propagate_to_neighbors(1, 1, &candidates, cons, &PropagationConfig::default());
        assert!(post[0].1 > 0.99, "got {}", post[0].1);
    }

    #[test]
    fn low_consistency_dampens() {
        let candidates = vec![cand(0, 0, 0, 0.5)];
        let cons = Consistency { eps1: 0.05, eps2: 0.05 };
        let post = propagate_to_neighbors(3, 3, &candidates, cons, &PropagationConfig::default());
        assert!(post[0].1 < 0.05, "got {}", post[0].1);
    }

    #[test]
    fn higher_prior_gives_higher_posterior() {
        let cons = Consistency { eps1: 0.9, eps2: 0.9 };
        let low = propagate_to_neighbors(
            1,
            1,
            &[cand(0, 0, 0, 0.2)],
            cons,
            &PropagationConfig::default(),
        )[0]
        .1;
        let high = propagate_to_neighbors(
            1,
            1,
            &[cand(0, 0, 0, 0.8)],
            cons,
            &PropagationConfig::default(),
        )[0]
        .1;
        assert!(high > low);
    }

    #[test]
    fn competing_candidates_split_mass() {
        // Two KB2 candidates for the same KB1 value: the matching constraint
        // makes them mutually exclusive; with equal priors they share.
        let candidates = vec![cand(0, 0, 0, 0.5), cand(0, 1, 1, 0.5)];
        let cons = Consistency { eps1: 0.9, eps2: 0.9 };
        let post = propagate_to_neighbors(1, 2, &candidates, cons, &PropagationConfig::default());
        assert!((post[0].1 - post[1].1).abs() < 1e-9, "symmetric candidates must tie");
        assert!(post[0].1 < 0.6, "mutual exclusion caps each at ~0.5, got {}", post[0].1);
    }

    #[test]
    fn beam_mode_approximates_exact() {
        // 3×3 full grid (34 partial matchings): run exact and tiny-budget
        // beam, compare marginals loosely.
        let mut candidates = Vec::new();
        let mut id = 0;
        for l in 0..3 {
            for r in 0..3 {
                candidates.push(cand(l, r, id, if l == r { 0.8 } else { 0.2 }));
                id += 1;
            }
        }
        let cons = Consistency { eps1: 0.9, eps2: 0.9 };
        let exact = propagate_to_neighbors(3, 3, &candidates, cons, &PropagationConfig::default());
        let beam = propagate_to_neighbors(
            3,
            3,
            &candidates,
            cons,
            &PropagationConfig { enumeration_budget: 8, beam_width: 64, max_candidates: 64 },
        );
        for (e, b) in exact.iter().zip(&beam) {
            assert_eq!(e.0, b.0);
            assert!((e.1 - b.1).abs() < 0.15, "exact {} vs beam {}", e.1, b.1);
        }
        // Diagonal pairs must still dominate in beam mode.
        assert!(beam[0].1 > beam[1].1);
    }

    #[test]
    fn empty_candidates() {
        let cons = Consistency { eps1: 0.9, eps2: 0.9 };
        assert!(propagate_to_neighbors(2, 2, &[], cons, &PropagationConfig::default()).is_empty());
    }

    #[test]
    fn candidate_cap_drops_lowest_priors() {
        // 70 candidates on distinct value slots; cap 64 keeps the 64 best.
        let candidates: Vec<MatchingCandidate> =
            (0..70).map(|i| cand(i, i, i as u32, 0.9 - 0.01 * i as f64)).collect();
        let cons = Consistency { eps1: 0.9, eps2: 0.9 };
        let post = propagate_to_neighbors(
            70,
            70,
            &candidates,
            cons,
            &PropagationConfig { enumeration_budget: 4, beam_width: 32, max_candidates: 64 },
        );
        assert_eq!(post.len(), 64);
    }
}
