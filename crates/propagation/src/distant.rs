//! Distant match propagation (paper §V-C, Eq. 10) and inferred-set
//! discovery (§VI-B, Algorithm 2).
//!
//! Under the Markov assumption, `Pr[m_p | m_q] ≥ Π_i Pr[m_{v_i} | m_{v_{i−1}}]`
//! along any path `q = v_0, …, v_l = p`; the largest lower bound over paths
//! is used as the estimate. With `length(v, v') = −log Pr[m_{v'} | m_v]`
//! this is a shortest-path problem, and the threshold `Pr ≥ τ` becomes
//! `dist ≤ ζ = −log τ`.
//!
//! Two implementations:
//! * [`inferred_sets_floyd_warshall`] — the paper's Algorithm 2: threshold
//!   Floyd–Warshall over per-vertex ordered maps. Exact for all distances
//!   ≤ ζ because every subpath of a ≤ ζ path is itself ≤ ζ.
//! * [`inferred_sets_dijkstra`] — truncated Dijkstra from every vertex;
//!   identical output (property-tested), asymptotically faster on the
//!   sparse graphs the pipeline produces. The pipeline uses this one; the
//!   bench suite compares both (ablation).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use remp_ergraph::PairId;
use remp_par::Parallelism;

use crate::ProbErGraph;

/// The inferred match sets of every candidate question (Eq. 12):
/// `inferred(q) = { p : Pr[m_p | m_q] ≥ τ }`.
#[derive(Clone, Debug)]
pub struct InferredSets {
    /// `per_source[q]` = (target, `Pr[m_p | m_q]`), sorted by target;
    /// always contains `(q, 1.0)` itself.
    per_source: Vec<Vec<(PairId, f64)>>,
    tau: f64,
}

impl InferredSets {
    /// The inferred set of `q` as `(pair, probability)` entries.
    pub fn inferred(&self, q: PairId) -> &[(PairId, f64)] {
        &self.per_source[q.index()]
    }

    /// The probability threshold τ the sets were computed with.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Number of sources (= vertices).
    pub fn num_sources(&self) -> usize {
        self.per_source.len()
    }

    /// Total size of all inferred sets (diagnostics).
    pub fn total_size(&self) -> usize {
        self.per_source.iter().map(Vec::len).sum()
    }

    /// All-empty sets over `n` sources — the starting point for
    /// incremental construction via [`set_row`](Self::set_row). Rows of
    /// retired components legitimately stay empty: nothing reads the
    /// inferred set of a resolved pair.
    pub(crate) fn empty(n: usize, tau: f64) -> InferredSets {
        InferredSets { per_source: vec![Vec::new(); n], tau }
    }

    /// Replaces one source's inferred set.
    pub(crate) fn set_row(&mut self, q: PairId, row: Vec<(PairId, f64)>) {
        self.per_source[q.index()] = row;
    }
}

/// One source's truncated Dijkstra (Algorithm 2's output for one row).
///
/// `dist`/`touched` are caller-provided scratch (distances all `∞` on
/// entry, restored on exit) so a worker can sweep many sources without
/// reallocating. Shared by [`inferred_sets_dijkstra`] and the incremental
/// per-component recomputation in [`crate::LoopState`], so the two are
/// bit-identical by construction.
pub(crate) fn dijkstra_row(
    graph: &ProbErGraph,
    zeta: f64,
    q: PairId,
    dist: &mut [f64],
    touched: &mut Vec<usize>,
) -> Vec<(PairId, f64)> {
    let mut out = Vec::new();
    let mut heap = BinaryHeap::new();
    dist[q.index()] = 0.0;
    touched.push(q.index());
    heap.push(MinDist(0.0, q));
    while let Some(MinDist(d, v)) = heap.pop() {
        if d > dist[v.index()] {
            continue; // stale entry
        }
        out.push((v, (-d).exp()));
        for &(w, p) in graph.edges_from(v) {
            let Some(len) = length_within(p, zeta) else { continue };
            let nd = d + len;
            if nd <= zeta && nd < dist[w.index()] {
                if dist[w.index()] == f64::INFINITY {
                    touched.push(w.index());
                }
                dist[w.index()] = nd;
                heap.push(MinDist(nd, w));
            }
        }
    }
    out.sort_by_key(|&(w, _)| w);
    for t in touched.drain(..) {
        dist[t] = f64::INFINITY;
    }
    out
}

/// The `ζ = −log τ` path-length budget for threshold `tau`.
pub(crate) fn zeta_of(tau: f64) -> f64 {
    -tau.clamp(f64::MIN_POSITIVE, 1.0).ln()
}

/// Edge length `−ln p`, or `None` when the edge alone already exceeds ζ
/// (lengths are non-negative, so such an edge can never lie on a ≤ ζ path).
fn length_within(p: f64, zeta: f64) -> Option<f64> {
    if p <= 0.0 {
        return None; // Pr = 0 edges are removed (log 0), paper §VI-B
    }
    let len = -p.min(1.0).ln();
    (len <= zeta).then_some(len)
}

/// Truncated multi-source Dijkstra implementation of Algorithm 2's output.
///
/// Every source's search is independent, so the sources run data-parallel
/// under `par` (distance/touched buffers are per-worker scratch); each
/// inferred set is sorted by target, so the output is identical in every
/// [`Parallelism`] mode.
pub fn inferred_sets_dijkstra(graph: &ProbErGraph, tau: f64, par: &Parallelism) -> InferredSets {
    let zeta = zeta_of(tau);
    let n = graph.num_vertices();
    let sources: Vec<PairId> = (0..n as u32).map(PairId).collect();
    // dist buffer reused across a worker's sources: reset via `touched`.
    let per_source = par.par_map_with(
        &sources,
        || (vec![f64::INFINITY; n], Vec::<usize>::new()),
        |(dist, touched), &q| dijkstra_row(graph, zeta, q, dist, touched),
    );
    InferredSets { per_source, tau }
}

/// Min-heap entry ordered by distance.
#[derive(PartialEq)]
struct MinDist(f64, PairId);

impl Eq for MinDist {}

impl PartialOrd for MinDist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinDist {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; ties broken by vertex for determinism.
        other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal).then_with(|| other.1.cmp(&self.1))
    }
}

/// A target-sorted `(vertex, distance)` row with binary-search lookups —
/// the dense-layout stand-in for the per-vertex `BTreeMap` the paper's
/// pseudo-code implies. Iteration order (ascending vertex) is identical
/// to the ordered map it replaced.
#[derive(Clone, Debug, Default)]
struct SortedRow(Vec<(PairId, f64)>);

impl SortedRow {
    fn get(&self, k: PairId) -> Option<f64> {
        self.0.binary_search_by_key(&k, |&(w, _)| w).ok().map(|i| self.0[i].1)
    }

    fn insert(&mut self, k: PairId, v: f64) {
        match self.0.binary_search_by_key(&k, |&(w, _)| w) {
            Ok(i) => self.0[i].1 = v,
            Err(i) => self.0.insert(i, (k, v)),
        }
    }

    fn entries(&self) -> impl Iterator<Item = (PairId, f64)> + '_ {
        self.0.iter().copied()
    }
}

/// Algorithm 2: threshold Floyd–Warshall with per-vertex ordered rows
/// (`bt(q)` / `bt⁻¹(q)` in the paper).
///
/// The intermediate-vertex loop relaxes `r → k → p` whenever both halves
/// are within ζ; every subpath of a ≤ ζ shortest path is ≤ ζ (non-negative
/// lengths), so thresholding loses nothing.
pub fn inferred_sets_floyd_warshall(graph: &ProbErGraph, tau: f64) -> InferredSets {
    let zeta = -tau.clamp(f64::MIN_POSITIVE, 1.0).ln();
    let n = graph.num_vertices();
    // bt[q]: distances q → p (≤ ζ); bt_inv[q]: distances r → q.
    let mut bt: Vec<SortedRow> = vec![SortedRow::default(); n];
    let mut bt_inv: Vec<SortedRow> = vec![SortedRow::default(); n];
    for (q, row) in bt.iter_mut().enumerate() {
        for &(w, p) in graph.edges_from(PairId(q as u32)) {
            if w.index() == q {
                continue; // self-loops are irrelevant: dist(q,q) = 0
            }
            let Some(len) = length_within(p, zeta) else { continue };
            let cur = row.get(w).unwrap_or(f64::INFINITY);
            if len < cur {
                row.insert(w, len);
                bt_inv[w.index()].insert(PairId(q as u32), len);
            }
        }
    }

    for k in 0..n {
        let k_id = PairId(k as u32);
        // Snapshot to decouple iteration from mutation; the FW invariant
        // only needs the state at the start of iteration k.
        let into_k: Vec<(PairId, f64)> = bt_inv[k].entries().collect();
        let from_k: Vec<(PairId, f64)> = bt[k].entries().collect();
        for &(r, d1) in &into_k {
            if r == k_id {
                continue;
            }
            for &(p, d2) in &from_k {
                if p == k_id || p == r {
                    continue;
                }
                let d = d1 + d2;
                if d > zeta {
                    continue;
                }
                let cur = bt[r.index()].get(p).unwrap_or(f64::INFINITY);
                if d < cur {
                    bt[r.index()].insert(p, d);
                    bt_inv[p.index()].insert(r, d);
                }
            }
        }
    }

    let per_source = bt
        .iter()
        .enumerate()
        .map(|(q, row)| {
            let mut out: Vec<(PairId, f64)> = row.entries().map(|(p, d)| (p, (-d).exp())).collect();
            out.push((PairId(q as u32), 1.0));
            out.sort_by_key(|&(w, _)| w);
            out
        })
        .collect();
    InferredSets { per_source, tau }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SEQ: &Parallelism = &Parallelism::Sequential;
    const POOL: &Parallelism = &Parallelism::Fixed(3);

    fn graph(n: usize, edges: &[(u32, u32, f64)]) -> ProbErGraph {
        ProbErGraph::from_edges(n, edges.iter().map(|&(v, w, p)| (PairId(v), PairId(w), p)))
    }

    #[test]
    fn self_is_always_inferred() {
        let g = graph(3, &[]);
        let s = inferred_sets_dijkstra(&g, 0.9, SEQ);
        for q in 0..3 {
            assert_eq!(s.inferred(PairId(q)), &[(PairId(q), 1.0)]);
        }
    }

    #[test]
    fn chain_multiplies_probabilities() {
        // 0 →0.95→ 1 →0.95→ 2 : Pr[2|0] = 0.9025 ≥ 0.9
        let g = graph(3, &[(0, 1, 0.95), (1, 2, 0.95)]);
        let s = inferred_sets_dijkstra(&g, 0.9, SEQ);
        let inf0 = s.inferred(PairId(0));
        assert_eq!(inf0.len(), 3);
        let p2 = inf0.iter().find(|&&(w, _)| w == PairId(2)).unwrap().1;
        assert!((p2 - 0.9025).abs() < 1e-9);
    }

    #[test]
    fn threshold_cuts_long_chains() {
        // Pr[2|0] = 0.81 < 0.9 → excluded.
        let g = graph(3, &[(0, 1, 0.9), (1, 2, 0.9)]);
        let s = inferred_sets_dijkstra(&g, 0.9, SEQ);
        let inf0 = s.inferred(PairId(0));
        assert!(inf0.iter().any(|&(w, _)| w == PairId(1)));
        assert!(!inf0.iter().any(|&(w, _)| w == PairId(2)));
    }

    #[test]
    fn best_path_wins() {
        // Direct weak edge 0→2 (0.91) vs 2-hop strong path (0.98² = 0.9604).
        let g = graph(3, &[(0, 2, 0.91), (0, 1, 0.98), (1, 2, 0.98)]);
        let s = inferred_sets_dijkstra(&g, 0.9, SEQ);
        let p2 = s.inferred(PairId(0)).iter().find(|&&(w, _)| w == PairId(2)).unwrap().1;
        assert!((p2 - 0.9604).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_edges_removed() {
        let g = graph(2, &[(0, 1, 0.0)]);
        let s = inferred_sets_dijkstra(&g, 0.5, SEQ);
        assert_eq!(s.inferred(PairId(0)).len(), 1);
    }

    #[test]
    fn directedness_respected() {
        let g = graph(2, &[(0, 1, 0.99)]);
        let s = inferred_sets_dijkstra(&g, 0.9, SEQ);
        assert_eq!(s.inferred(PairId(0)).len(), 2);
        assert_eq!(s.inferred(PairId(1)).len(), 1, "no reverse edge");
    }

    #[test]
    fn floyd_warshall_matches_dijkstra_on_fixture() {
        let g = graph(
            5,
            &[(0, 1, 0.95), (1, 2, 0.97), (2, 3, 0.99), (0, 3, 0.91), (3, 4, 0.5), (4, 0, 0.99)],
        );
        let a = inferred_sets_dijkstra(&g, 0.9, SEQ);
        let b = inferred_sets_floyd_warshall(&g, 0.9);
        for q in 0..5 {
            let xs = a.inferred(PairId(q));
            let ys = b.inferred(PairId(q));
            assert_eq!(xs.len(), ys.len(), "q = {q}: {xs:?} vs {ys:?}");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The two Algorithm 2 implementations agree on random graphs, and
        /// the Dijkstra side agrees with itself *bit for bit* at every
        /// thread count. This pins the oracle the incremental loop engine
        /// is verified against: `LoopState` recomputes per-source rows via
        /// the same truncated Dijkstra, so FW ≡ Dijkstra (within float
        /// tolerance) plus Dijkstra ≡ Dijkstra across pools (exactly)
        /// grounds the whole equivalence chain.
        #[test]
        fn fw_equals_dijkstra_across_thread_counts(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.5f64..1.0), 0..40),
            tau in 0.6f64..0.95
        ) {
            let g = graph(8, &edges);
            let a = inferred_sets_dijkstra(&g, tau, SEQ);
            let b = inferred_sets_floyd_warshall(&g, tau);
            for par in [POOL, &Parallelism::Fixed(7)] {
                let pooled = inferred_sets_dijkstra(&g, tau, par);
                for q in 0..8 {
                    // Pool runs are bit-identical to the sequential run…
                    prop_assert_eq!(pooled.inferred(PairId(q)), a.inferred(PairId(q)));
                }
            }
            for q in 0..8 {
                // …and the sequential run matches the paper's Algorithm 2.
                let xs = a.inferred(PairId(q));
                let ys = b.inferred(PairId(q));
                prop_assert_eq!(xs.len(), ys.len(), "q={}: {:?} vs {:?}", q, xs, ys);
                for (x, y) in xs.iter().zip(ys) {
                    prop_assert_eq!(x.0, y.0);
                    prop_assert!((x.1 - y.1).abs() < 1e-9);
                }
            }
        }

        /// Every inferred probability is in [τ, 1] and the self-entry is 1.
        #[test]
        fn inferred_probabilities_bounded(
            edges in proptest::collection::vec((0u32..6, 0u32..6, 0.0f64..1.0), 0..30),
            tau in 0.5f64..0.99
        ) {
            let g = graph(6, &edges);
            let s = inferred_sets_dijkstra(&g, tau, POOL);
            for q in 0..6 {
                let inf = s.inferred(PairId(q));
                let me = inf.iter().find(|&&(w, _)| w == PairId(q)).expect("self entry");
                prop_assert!((me.1 - 1.0).abs() < 1e-12);
                for &(_, p) in inf {
                    prop_assert!(p >= tau - 1e-9 && p <= 1.0 + 1e-12);
                }
            }
        }
    }
}
