//! The incremental, component-sharded loop engine.
//!
//! Every human-machine loop of the pipeline re-runs stage 2 — consistency
//! estimation, the probabilistic ER graph, inferred-set discovery — and
//! the from-scratch implementations recompute the whole knowledge base
//! each time even though one answered batch only touches a handful of
//! pairs. [`LoopState`] owns the three stage-2 artifacts and recomputes
//! them *delta-driven*, with outputs **bit-identical** to the from-scratch
//! path ([`LoopState::rebuild_reference`]); the dirty-tracking invariants
//! live in the crate docs ([`crate`]) and below.
//!
//! ## What depends on what
//!
//! * A **label's consistency** depends on the seed set only: each seed
//!   contributes one [`SizeObservation`] per label (value-set sizes are
//!   static; the latent lower bound counts seed matches between the value
//!   sets). A label is dirty when a new seed contributes an observation,
//!   or when a new seed sits between the value sets of an existing seed —
//!   exactly the ER-graph in-edges of the new seed whose source is itself
//!   a seed. Dirty labels re-run hard-EM over their (cached, seed-ordered)
//!   observations; a label only propagates dirtiness further if the
//!   re-estimated parameters actually changed.
//! * A **vertex's probabilistic edges** depend on static graph structure,
//!   the consistencies of its incident labels, and the priors of its
//!   ER-graph neighbours. A vertex is dirty when an incident label's
//!   consistency changed or a neighbour's prior changed; it propagates
//!   dirtiness only if its recomputed edge list differs.
//! * An **inferred set** depends on every edge reachable from its source,
//!   all within the source's connected component (probabilistic edges are
//!   a subset of ER adjacency, which never crosses components). A
//!   component is dirty when any member's edge list changed; all eligible
//!   sources in a dirty component re-run truncated Dijkstra.
//!
//! ## Retirement
//!
//! A component with no eligible (unresolved, non-isolated) pairs left is
//! **retired**: its edges and inferred sets are never recomputed again.
//! This is safe because nothing downstream reads them — questions are
//! selected among eligible pairs, propagation targets are snapshotted at
//! batch creation, and termination only inspects eligible pairs. Retired
//! components never reopen: resolutions are never revoked, so a
//! component's eligible count is monotonically non-increasing.

use remp_ergraph::{Candidates, ComponentIndex, ErGraph, PairId, RelPairId};
use remp_kb::Kb;
use remp_obs::time_stage;
use remp_par::Parallelism;

use crate::consistency::{index_seeds, seed_observation, SeedIndex};
use crate::distant::{dijkstra_row, zeta_of};
use crate::probgraph::vertex_edges;
use crate::{
    estimate_consistency, inferred_sets_dijkstra, ConsistencyTable, InferredSets, ProbErGraph,
    PropagationConfig, SizeObservation,
};

/// The read-only stage-1 artifacts every [`LoopState`] operation works
/// against. The session owns these (they never change after stage 1) and
/// rebuilds the bundle per call; the state only owns what changes.
#[derive(Clone, Copy)]
pub struct PropagationContext<'a> {
    /// Left knowledge base.
    pub kb1: &'a Kb,
    /// Right knowledge base.
    pub kb2: &'a Kb,
    /// The retained candidate pairs with their live priors.
    pub candidates: &'a Candidates,
    /// The ER graph over the retained pairs.
    pub graph: &'a ErGraph,
    /// The connected-component index of the ER graph.
    pub components: &'a ComponentIndex,
}

/// Counters and timings of one [`LoopState::refresh`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefreshStats {
    /// Whether this refresh rebuilt everything from scratch (the first
    /// refresh, a refresh after [`LoopState::refresh_full`], or every
    /// refresh in full mode).
    pub full_rebuild: bool,
    /// Seeds that joined since the previous refresh.
    pub new_seeds: usize,
    /// Labels whose observation support changed (hard-EM re-runs).
    pub dirty_labels: usize,
    /// Labels whose re-estimated consistency actually changed.
    pub changed_labels: usize,
    /// Vertices whose probabilistic edges were recomputed.
    pub dirty_vertices: usize,
    /// Vertices whose recomputed edge list actually changed.
    pub changed_vertices: usize,
    /// Components whose inferred sets were recomputed.
    pub dirty_components: usize,
    /// Components currently retired (no eligible pair left).
    pub retired_components: usize,
    /// Dijkstra sources re-run (eligible members of dirty components).
    pub recomputed_sources: usize,
    /// Wall-clock of the consistency stage.
    pub consistency_s: f64,
    /// Wall-clock of the probabilistic-graph stage.
    pub propagation_s: f64,
    /// Wall-clock of the inferred-sets stage.
    pub inferred_s: f64,
}

impl RefreshStats {
    /// Total stage-2 wall-clock of this refresh.
    pub fn stage_total_s(&self) -> f64 {
        self.consistency_s + self.propagation_s + self.inferred_s
    }
}

/// Publishes one refresh's counters to the global metrics registry.
/// Stage timings are already recorded inside `time_stage`; this adds the
/// loop-level dirty-region counters the incremental machinery reports.
fn record_refresh_metrics(stats: &RefreshStats) {
    if !remp_obs::enabled() {
        return;
    }
    let reg = remp_obs::global();
    let mode = if stats.full_rebuild { "full" } else { "incremental" };
    reg.counter(remp_obs::names::LOOPS_TOTAL, "Propagation refreshes run.", &[("mode", mode)])
        .inc();
    reg.counter(
        remp_obs::names::LOOP_DIRTY_VERTICES_TOTAL,
        "Vertices whose probabilistic edges were recomputed across refreshes.",
        &[],
    )
    .add(stats.dirty_vertices as u64);
    reg.counter(
        remp_obs::names::LOOP_RECOMPUTED_SOURCES_TOTAL,
        "Dijkstra sources re-run across refreshes.",
        &[],
    )
    .add(stats.recomputed_sources as u64);
}

/// What one refresh changed, for the caller's own caches.
#[derive(Clone, Debug)]
pub struct RefreshOutcome {
    /// Counters and timings.
    pub stats: RefreshStats,
    /// Components whose selection-relevant inputs (inferred sets,
    /// priors, eligibility) may have changed since the previous refresh,
    /// sorted ascending. Question-selection caches for all other
    /// components remain valid.
    pub selection_dirty: Vec<usize>,
}

/// The delta-aware owner of the stage-2 artifacts: [`ConsistencyTable`],
/// [`ProbErGraph`] and [`InferredSets`], kept current across crowd loops
/// by recomputing only what a batch of answers actually touched.
///
/// The caller reports changes through [`apply_seeds`](Self::apply_seeds),
/// [`note_prior_changed`](Self::note_prior_changed) and
/// [`note_resolved`](Self::note_resolved), then calls
/// [`refresh`](Self::refresh) once per loop. Between refreshes the
/// accessors expose artifacts that are bit-identical to
/// [`rebuild_reference`](Self::rebuild_reference) on every label, every
/// vertex of a non-retired component, and the inferred set of every
/// eligible source — the exact slices the pipeline reads
/// ([`check_reference`](Self::check_reference) asserts this, and the
/// `REMP_CHECK_INCREMENTAL=1` session mode runs it every loop).
#[derive(Clone, Debug)]
pub struct LoopState {
    tau: f64,
    config: PropagationConfig,
    /// Current propagation seeds, sorted ascending, deduplicated.
    seeds: Vec<PairId>,
    /// `seed_set[v]` ⇔ `v ∈ seeds`.
    seed_set: Vec<bool>,
    /// Seed matches indexed by KB1 entity (incrementally maintained).
    seed_index: SeedIndex,
    /// Per-label cache of each seed's observation, one row per label as
    /// a vec sorted by seed id — ascending iteration equals the
    /// from-scratch observation order, lookups are binary searches over
    /// contiguous memory instead of `BTreeMap` node hops.
    obs: Vec<Vec<(u32, SizeObservation)>>,
    cons: ConsistencyTable,
    pg: ProbErGraph,
    inferred: InferredSets,
    /// Per label: the vertices with at least one incident edge of that
    /// label, ascending (static).
    label_vertices: Vec<Vec<PairId>>,
    /// Per vertex: its component id (static copy, so the cheap `note_*`
    /// notifications need no context).
    comp_of: Vec<u32>,
    /// Per vertex: still unresolved and not isolated.
    eligible: Vec<bool>,
    /// Per component: number of eligible members.
    eligible_count: Vec<usize>,
    /// Per component: retired at the last refresh.
    retired: Vec<bool>,
    /// Seeds added since the last refresh (sorted on consumption).
    pending_seeds: Vec<PairId>,
    /// Pairs whose prior changed since the last refresh.
    pending_priors: Vec<PairId>,
    /// Components whose selection inputs changed since the last refresh.
    pending_components: Vec<usize>,
    /// False until the incremental caches mirror the seed set; a full
    /// rebuild is performed (and the flag set) by the next `refresh`.
    caches_valid: bool,
}

impl LoopState {
    /// Creates a state over stage-1 output. `initial_seeds` are the seed
    /// matches `M_in`; `eligible` marks the pairs that are unresolved and
    /// non-isolated (all artifacts are lazily built by the first
    /// [`refresh`](Self::refresh)).
    pub fn new(
        ctx: &PropagationContext<'_>,
        tau: f64,
        config: PropagationConfig,
        initial_seeds: &[PairId],
        eligible: Vec<bool>,
    ) -> LoopState {
        let n = ctx.candidates.len();
        assert_eq!(eligible.len(), n, "eligibility must cover every retained pair");
        let num_labels = ctx.graph.num_labels();
        let mut label_vertices: Vec<Vec<PairId>> = vec![Vec::new(); num_labels];
        for v in ctx.candidates.ids() {
            let mut last = None;
            for &(label, _) in ctx.graph.edges_from(v) {
                if last != Some(label) {
                    label_vertices[label.index()].push(v);
                    last = Some(label);
                }
            }
        }
        let mut eligible_count = vec![0usize; ctx.components.len()];
        for (i, &e) in eligible.iter().enumerate() {
            if e {
                eligible_count[ctx.components.component_of(PairId::from_index(i))] += 1;
            }
        }
        let retired = eligible_count.iter().map(|&c| c == 0).collect();
        let mut state = LoopState {
            tau,
            config,
            seeds: Vec::new(),
            seed_set: vec![false; n],
            seed_index: SeedIndex::default(),
            obs: vec![Vec::new(); num_labels],
            cons: ConsistencyTable::from_entries([]),
            pg: ProbErGraph::empty(n),
            inferred: InferredSets::empty(n, tau),
            label_vertices,
            comp_of: (0..n)
                .map(|i| ctx.components.component_of(PairId::from_index(i)) as u32)
                .collect(),
            eligible,
            eligible_count,
            retired,
            pending_seeds: Vec::new(),
            pending_priors: Vec::new(),
            pending_components: Vec::new(),
            caches_valid: false,
        };
        state.apply_seeds(initial_seeds);
        state
    }

    /// The current seed set, sorted ascending.
    pub fn seeds(&self) -> &[PairId] {
        &self.seeds
    }

    /// Per-pair eligibility (unresolved and non-isolated).
    pub fn eligible(&self) -> &[bool] {
        &self.eligible
    }

    /// Per-component retirement flags as of the last refresh.
    pub fn retired(&self) -> &[bool] {
        &self.retired
    }

    /// The current consistency table (exact for every label).
    pub fn consistencies(&self) -> &ConsistencyTable {
        &self.cons
    }

    /// The current probabilistic ER graph (exact for every vertex of a
    /// non-retired component).
    pub fn prob_graph(&self) -> &ProbErGraph {
        &self.pg
    }

    /// The current inferred sets (exact for every eligible source).
    pub fn inferred(&self) -> &InferredSets {
        &self.inferred
    }

    /// Merges newly confirmed matches into the (already sorted) seed set
    /// and queues them for the next [`refresh`](Self::refresh). Pairs
    /// already present are ignored; the merge is linear in the seed
    /// count, never a full rescan-and-resort.
    pub fn apply_seeds(&mut self, new: &[PairId]) {
        let mut fresh: Vec<PairId> =
            new.iter().copied().filter(|&p| !self.seed_set[p.index()]).collect();
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            return;
        }
        for &p in &fresh {
            self.seed_set[p.index()] = true;
        }
        let mut merged = Vec::with_capacity(self.seeds.len() + fresh.len());
        let (mut old, mut add) = (self.seeds.iter().peekable(), fresh.iter().peekable());
        loop {
            match (old.peek(), add.peek()) {
                (Some(&&o), Some(&&a)) if o <= a => {
                    merged.push(o);
                    old.next();
                }
                (_, Some(&&a)) => {
                    merged.push(a);
                    add.next();
                }
                (Some(&&o), None) => {
                    merged.push(o);
                    old.next();
                }
                (None, None) => break,
            }
        }
        self.seeds = merged;
        self.pending_seeds.extend(fresh);
    }

    /// Records that `p`'s prior match probability changed (crowd verdict,
    /// propagation, or a hard-question downdate).
    pub fn note_prior_changed(&mut self, p: PairId) {
        self.pending_priors.push(p);
        self.pending_components.push(self.comp_of[p.index()] as usize);
    }

    /// Records that `p` left the unresolved pool. Monotone: once resolved
    /// a pair never becomes eligible again, which is what lets fully
    /// resolved components retire for good.
    pub fn note_resolved(&mut self, p: PairId) {
        if !self.eligible[p.index()] {
            return;
        }
        self.eligible[p.index()] = false;
        let c = self.comp_of[p.index()] as usize;
        self.eligible_count[c] -= 1;
        self.pending_components.push(c);
    }

    /// Brings every artifact up to date with the queued deltas,
    /// recomputing only the changed region. The first call (and any call
    /// after [`refresh_full`](Self::refresh_full)) rebuilds everything.
    pub fn refresh(&mut self, ctx: &PropagationContext<'_>, par: &Parallelism) -> RefreshOutcome {
        let rebuild = !self.caches_valid;
        self.retired = self.eligible_count.iter().map(|&c| c == 0).collect();
        let retired_components = self.retired.iter().filter(|&&r| r).count();

        // -- Stage 2a: consistency estimation over dirty labels. --------
        // Each stage runs under `time_stage`: the same single
        // measurement lands in `RefreshStats` (→ `loop_stats` JSON) and
        // in the `remp_stage_seconds{stage}` histogram (→ `/metrics`),
        // so the two surfaces cannot drift apart.
        let ((new_seeds, dirty_labels, changed_labels), consistency_s) =
            time_stage("consistency", || {
                let new_seeds = if rebuild {
                    self.pending_seeds.clear();
                    self.obs = vec![Vec::new(); ctx.graph.num_labels()];
                    self.cons = ConsistencyTable::from_entries([]);
                    self.pg = ProbErGraph::empty(ctx.candidates.len());
                    self.inferred = InferredSets::empty(ctx.candidates.len(), self.tau);
                    self.seed_index = index_seeds(ctx.candidates, &self.seeds);
                    self.seeds.clone()
                } else {
                    let mut pending = std::mem::take(&mut self.pending_seeds);
                    pending.sort_unstable();
                    pending.dedup();
                    for &s in &pending {
                        let (u1, u2) = ctx.candidates.pair(s);
                        self.seed_index.entry(u1).or_default().insert(u2);
                    }
                    pending
                };

                // Which (label, seed) observations must be recomputed: every new
                // seed contributes to every label it has values for, and every
                // existing seed with an ER-graph edge into a new seed gains a
                // latent lower bound under the flipped edge label.
                let num_labels = ctx.graph.num_labels();
                let mut to_update: Vec<Vec<PairId>> = vec![new_seeds.clone(); num_labels];
                if !rebuild {
                    for &s in &new_seeds {
                        for &(label, t) in ctx.graph.edges_from(s) {
                            if self.seed_set[t.index()] {
                                let mut flipped = ctx.graph.label(label);
                                flipped.dir = flipped.dir.flip();
                                let id = ctx
                                    .graph
                                    .label_id(flipped)
                                    .expect("both orientations of a label are interned together");
                                to_update[id.index()].push(t);
                            }
                        }
                    }
                }
                struct LabelJob {
                    label: RelPairId,
                    seeds: Vec<PairId>,
                }
                let jobs: Vec<LabelJob> = to_update
                    .into_iter()
                    .enumerate()
                    .filter(|(_, seeds)| !seeds.is_empty())
                    .map(|(l, mut seeds)| {
                        seeds.sort_unstable();
                        seeds.dedup();
                        LabelJob { label: RelPairId(l as u32), seeds }
                    })
                    .collect();
                type LabelUpdate = Option<(Vec<(u32, SizeObservation)>, crate::Consistency)>;
                let updates: Vec<LabelUpdate> = par.par_map(&jobs, |job| {
                    let label = ctx.graph.label(job.label);
                    let cache = &self.obs[job.label.index()];
                    let mut changed: Vec<(u32, SizeObservation)> = Vec::new();
                    for &s in &job.seeds {
                        let fresh = seed_observation(
                            ctx.kb1,
                            ctx.kb2,
                            ctx.candidates,
                            &self.seed_index,
                            s,
                            label,
                        );
                        // `None` is static (empty value sets stay empty), so a
                        // cached entry can only be replaced, never removed.
                        if let Some(o) = fresh {
                            let cached =
                                cache.binary_search_by_key(&s.0, |e| e.0).ok().map(|i| cache[i].1);
                            if cached != Some(o) {
                                changed.push((s.0, o));
                            }
                        }
                    }
                    if changed.is_empty() {
                        return None;
                    }
                    let merged = merged_observations(cache, &changed);
                    Some((changed, estimate_consistency(&merged)))
                });
                let mut dirty_labels = 0usize;
                let mut changed_labels: Vec<RelPairId> = Vec::new();
                for (job, update) in jobs.iter().zip(updates) {
                    let Some((entries, value)) = update else { continue };
                    dirty_labels += 1;
                    let cache = &mut self.obs[job.label.index()];
                    for (seed, o) in entries {
                        match cache.binary_search_by_key(&seed, |e| e.0) {
                            Ok(i) => cache[i].1 = o,
                            Err(i) => cache.insert(i, (seed, o)),
                        }
                    }
                    if self.cons.set(job.label, value) {
                        changed_labels.push(job.label);
                    }
                }
                (new_seeds, dirty_labels, changed_labels)
            });

        // -- Stage 2b: probabilistic edges of dirty vertices. -----------
        let ((component_dirty, dirty_vertices, changed_vertices), propagation_s) =
            time_stage("propagation", || {
                let changed_priors = {
                    let mut priors = std::mem::take(&mut self.pending_priors);
                    priors.sort_unstable();
                    priors.dedup();
                    priors
                };
                let n = ctx.candidates.len();
                let mut vertex_dirty = vec![false; n];
                if rebuild {
                    for v in ctx.candidates.ids() {
                        if !self.retired[ctx.components.component_of(v)] {
                            vertex_dirty[v.index()] = true;
                        }
                    }
                } else {
                    for &label in &changed_labels {
                        for &v in &self.label_vertices[label.index()] {
                            if !self.retired[ctx.components.component_of(v)] {
                                vertex_dirty[v.index()] = true;
                            }
                        }
                    }
                    // A changed prior dirties the pairs it propagates to: the
                    // pair's ER-graph neighbours (adjacency is symmetric).
                    for &w in &changed_priors {
                        for &(_, t) in ctx.graph.edges_from(w) {
                            if !self.retired[ctx.components.component_of(t)] {
                                vertex_dirty[t.index()] = true;
                            }
                        }
                    }
                }
                let dirty_vertices: Vec<PairId> = vertex_dirty
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d)
                    .map(|(i, _)| PairId::from_index(i))
                    .collect();
                let edge_lists: Vec<Vec<(PairId, f64)>> = par.par_map(&dirty_vertices, |&v| {
                    vertex_edges(
                        ctx.kb1,
                        ctx.kb2,
                        ctx.candidates,
                        ctx.graph,
                        &self.cons,
                        &self.config,
                        v,
                    )
                });
                let mut component_dirty = vec![false; ctx.components.len()];
                let mut changed_vertices = 0usize;
                for (&v, list) in dirty_vertices.iter().zip(edge_lists) {
                    if self.pg.replace_edges(v, list) {
                        changed_vertices += 1;
                        component_dirty[ctx.components.component_of(v)] = true;
                    }
                }
                // Fold the replaced rows back into the CSR arena before
                // stage 2c walks the graph: Dijkstra then reads one
                // contiguous allocation instead of per-vertex overlays.
                self.pg.compact();
                if rebuild {
                    // Even unchanged (empty-edge) components need their initial
                    // Dijkstra pass: every source's set contains itself.
                    for (c, dirty) in component_dirty.iter_mut().enumerate() {
                        *dirty = !self.retired[c];
                    }
                }
                (component_dirty, dirty_vertices.len(), changed_vertices)
            });

        // -- Stage 2c: inferred sets of dirty components. ---------------
        let ((dirty_components, recomputed_sources), inferred_s) =
            time_stage("inferred_sets", || {
                let dirty_components: Vec<usize> = component_dirty
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d)
                    .map(|(c, _)| c)
                    .collect();
                let sources: Vec<PairId> = dirty_components
                    .iter()
                    .flat_map(|&c| ctx.components.members(c))
                    .copied()
                    .filter(|&q| self.eligible[q.index()])
                    .collect();
                let zeta = zeta_of(self.tau);
                let n = ctx.candidates.len();
                let rows: Vec<Vec<(PairId, f64)>> = par.par_map_with(
                    &sources,
                    || (vec![f64::INFINITY; n], Vec::<usize>::new()),
                    |(dist, touched), &q| dijkstra_row(&self.pg, zeta, q, dist, touched),
                );
                for (&q, row) in sources.iter().zip(rows) {
                    self.inferred.set_row(q, row);
                }
                (dirty_components, sources.len())
            });

        // Note: components that just retired stay in this list — the
        // caller's selection cache must still observe the retirement
        // (drop the component's cached questions and reachability).
        let selection_dirty: Vec<usize> = if rebuild {
            self.pending_components.clear();
            (0..ctx.components.len()).collect()
        } else {
            let mut comps = std::mem::take(&mut self.pending_components);
            comps.extend(dirty_components.iter().copied());
            comps.sort_unstable();
            comps.dedup();
            comps
        };
        self.caches_valid = true;

        let stats = RefreshStats {
            full_rebuild: rebuild,
            new_seeds: new_seeds.len(),
            dirty_labels,
            changed_labels: changed_labels.len(),
            dirty_vertices,
            changed_vertices,
            dirty_components: dirty_components.len(),
            retired_components,
            recomputed_sources,
            consistency_s,
            propagation_s,
            inferred_s,
        };
        record_refresh_metrics(&stats);
        RefreshOutcome { stats, selection_dirty }
    }

    /// The from-scratch baseline: recomputes every artifact exactly like
    /// the pre-incremental pipeline did each loop, ignoring all caches.
    /// Kept as the reference the incremental path is verified against,
    /// and as the benchmark baseline (`bench_pipeline`'s `loops`
    /// scenario).
    pub fn refresh_full(
        &mut self,
        ctx: &PropagationContext<'_>,
        par: &Parallelism,
    ) -> RefreshOutcome {
        self.retired = self.eligible_count.iter().map(|&c| c == 0).collect();
        let (cons, consistency_s) = time_stage("consistency", || {
            ConsistencyTable::estimate(
                ctx.kb1,
                ctx.kb2,
                ctx.candidates,
                ctx.graph,
                &self.seeds,
                par,
            )
        });
        self.cons = cons;
        let (pg, propagation_s) = time_stage("propagation", || {
            ProbErGraph::build(
                ctx.kb1,
                ctx.kb2,
                ctx.candidates,
                ctx.graph,
                &self.cons,
                &self.config,
                par,
            )
        });
        self.pg = pg;
        let (inferred, inferred_s) =
            time_stage("inferred_sets", || inferred_sets_dijkstra(&self.pg, self.tau, par));
        self.inferred = inferred;
        // The incremental caches no longer mirror the artifacts; force
        // the next incremental refresh (if any) to rebuild.
        self.caches_valid = false;
        self.pending_seeds.clear();
        self.pending_priors.clear();
        self.pending_components.clear();
        let n = ctx.candidates.len();
        let stats = RefreshStats {
            full_rebuild: true,
            new_seeds: 0,
            dirty_labels: ctx.graph.num_labels(),
            changed_labels: ctx.graph.num_labels(),
            dirty_vertices: n,
            changed_vertices: n,
            dirty_components: ctx.components.len(),
            retired_components: self.retired.iter().filter(|&&r| r).count(),
            recomputed_sources: n,
            consistency_s,
            propagation_s,
            inferred_s,
        };
        record_refresh_metrics(&stats);
        RefreshOutcome { stats, selection_dirty: (0..ctx.components.len()).collect() }
    }

    /// Runs the from-scratch stage-2 pipeline on the current seed set and
    /// returns the three artifacts without touching the state.
    pub fn rebuild_reference(
        &self,
        ctx: &PropagationContext<'_>,
        par: &Parallelism,
    ) -> (ConsistencyTable, ProbErGraph, InferredSets) {
        let cons = ConsistencyTable::estimate(
            ctx.kb1,
            ctx.kb2,
            ctx.candidates,
            ctx.graph,
            &self.seeds,
            par,
        );
        let pg = ProbErGraph::build(
            ctx.kb1,
            ctx.kb2,
            ctx.candidates,
            ctx.graph,
            &cons,
            &self.config,
            par,
        );
        let inferred = inferred_sets_dijkstra(&pg, self.tau, par);
        (cons, pg, inferred)
    }

    /// Asserts the incremental artifacts are bit-identical to
    /// [`rebuild_reference`](Self::rebuild_reference) on every slice the
    /// pipeline reads: all labels, all vertices of non-retired
    /// components, and all eligible Dijkstra sources. Returns a
    /// description of the first divergence found.
    pub fn check_reference(
        &self,
        ctx: &PropagationContext<'_>,
        par: &Parallelism,
    ) -> Result<(), String> {
        let (cons, pg, inferred) = self.rebuild_reference(ctx, par);
        for (label, _) in ctx.graph.labels() {
            let (got, want) = (self.cons.get(label), cons.get(label));
            if got != want {
                return Err(format!(
                    "consistency of label {label:?} diverged: incremental {got:?}, reference {want:?}"
                ));
            }
        }
        for (c, members) in ctx.components.iter() {
            if self.retired[c] {
                continue;
            }
            for &v in members {
                if self.pg.edges_from(v) != pg.edges_from(v) {
                    return Err(format!(
                        "probabilistic edges of {v:?} (component {c}) diverged: \
                         incremental {:?}, reference {:?}",
                        self.pg.edges_from(v),
                        pg.edges_from(v)
                    ));
                }
                if self.eligible[v.index()] && self.inferred.inferred(v) != inferred.inferred(v) {
                    return Err(format!(
                        "inferred set of {v:?} (component {c}) diverged: \
                         incremental {:?}, reference {:?}",
                        self.inferred.inferred(v),
                        inferred.inferred(v)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The cached observations of one label overlaid with fresh entries, in
/// seed order — exactly the observation list the from-scratch estimator
/// would build. Both inputs are sorted by seed id; `changed` wins on
/// collisions.
fn merged_observations(
    cache: &[(u32, SizeObservation)],
    changed: &[(u32, SizeObservation)],
) -> Vec<SizeObservation> {
    let mut out = Vec::with_capacity(cache.len() + changed.len());
    let mut fresh = changed.iter().peekable();
    for &(seed, cached) in cache {
        while let Some(&&(k, o)) = fresh.peek() {
            if k >= seed {
                break;
            }
            out.push(o);
            fresh.next();
        }
        match fresh.peek() {
            Some(&&(k, o)) if k == seed => {
                out.push(o);
                fresh.next();
            }
            _ => out.push(cached),
        }
    }
    out.extend(fresh.map(|&(_, o)| o));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_ergraph::{generate_candidates, ErGraph};
    use remp_kb::{EntityId, KbBuilder, Value};

    const SEQ: &Parallelism = &Parallelism::Sequential;

    fn fixture() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let born1 = b1.add_rel("bornIn");
        let born2 = b2.add_rel("birthPlace");
        let acted1 = b1.add_rel("actedIn");
        let acted2 = b2.add_rel("actedIn");
        let lbl1 = b1.add_attr("label");
        let lbl2 = b2.add_attr("label");
        for (b, born, acted, lbl) in
            [(&mut b1, born1, acted1, lbl1), (&mut b2, born2, acted2, lbl2)]
        {
            let joan = b.add_entity("Joan");
            let nyc = b.add_entity("NYC");
            let cradle = b.add_entity("Cradle");
            let player = b.add_entity("Player");
            let solo = b.add_entity("Solo Star");
            for e in [joan, nyc, cradle, player, solo] {
                let label = ["Joan", "NYC", "Cradle", "Player", "Solo Star"][e.index()];
                b.add_attr_triple(e, lbl, Value::text(label));
            }
            b.add_rel_triple(joan, born, nyc);
            b.add_rel_triple(joan, acted, cradle);
            b.add_rel_triple(joan, acted, player);
        }
        (b1.finish(), b2.finish())
    }

    fn state_over<'a>(
        kb1: &'a Kb,
        kb2: &'a Kb,
    ) -> (Candidates, ErGraph, ComponentIndex, Vec<bool>) {
        let cands = generate_candidates(kb1, kb2, 0.3, SEQ);
        let graph = ErGraph::build(kb1, kb2, &cands);
        let components = ComponentIndex::build(&graph);
        let eligible: Vec<bool> = cands.ids().map(|p| !graph.is_isolated_vertex(p)).collect();
        (cands, graph, components, eligible)
    }

    #[test]
    fn incremental_matches_reference_across_seed_growth() {
        let (kb1, kb2) = fixture();
        let (cands, graph, components, eligible) = state_over(&kb1, &kb2);
        let ctx = PropagationContext {
            kb1: &kb1,
            kb2: &kb2,
            candidates: &cands,
            graph: &graph,
            components: &components,
        };
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let nyc = cands.id_of((EntityId(1), EntityId(1))).unwrap();
        let cradle = cands.id_of((EntityId(2), EntityId(2))).unwrap();

        let mut state = LoopState::new(&ctx, 0.9, PropagationConfig::default(), &[joan], eligible);
        let first = state.refresh(&ctx, SEQ);
        assert!(first.stats.full_rebuild);
        state.check_reference(&ctx, SEQ).expect("initial build matches reference");

        // A second loop: one more seed, one prior bumped.
        state.apply_seeds(&[nyc]);
        state.note_prior_changed(cradle);
        let second = state.refresh(&ctx, SEQ);
        assert!(!second.stats.full_rebuild);
        assert_eq!(second.stats.new_seeds, 1);
        state.check_reference(&ctx, SEQ).expect("incremental update matches reference");

        // A third loop with no changes at all recomputes nothing.
        let third = state.refresh(&ctx, SEQ);
        assert_eq!(third.stats.dirty_labels, 0);
        assert_eq!(third.stats.dirty_vertices, 0);
        assert_eq!(third.stats.recomputed_sources, 0);
        assert!(third.selection_dirty.is_empty());
        state.check_reference(&ctx, SEQ).expect("no-op refresh stays exact");
    }

    #[test]
    fn resolved_components_retire_and_stay_retired() {
        let (kb1, kb2) = fixture();
        let (cands, graph, components, eligible) = state_over(&kb1, &kb2);
        let ctx = PropagationContext {
            kb1: &kb1,
            kb2: &kb2,
            candidates: &cands,
            graph: &graph,
            components: &components,
        };
        let mut state =
            LoopState::new(&ctx, 0.9, PropagationConfig::default(), &[], eligible.clone());
        state.refresh(&ctx, SEQ);

        // Resolve every eligible pair: every component retires.
        for (i, &e) in eligible.iter().enumerate() {
            if e {
                state.note_resolved(PairId::from_index(i));
            }
        }
        let outcome = state.refresh(&ctx, SEQ);
        assert_eq!(outcome.stats.retired_components, components.len());
        assert!(
            !outcome.selection_dirty.is_empty(),
            "freshly retired components must be reported so selection caches drop them"
        );
        state.check_reference(&ctx, SEQ).expect("retired slices are excluded from the check");

        // Retired components never reopen: further seeds dirty labels but
        // no vertices or components.
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        state.apply_seeds(&[joan]);
        let after = state.refresh(&ctx, SEQ);
        assert_eq!(after.stats.dirty_vertices, 0);
        assert_eq!(after.stats.dirty_components, 0);
    }

    #[test]
    fn full_mode_tracks_the_reference_by_construction() {
        let (kb1, kb2) = fixture();
        let (cands, graph, components, eligible) = state_over(&kb1, &kb2);
        let ctx = PropagationContext {
            kb1: &kb1,
            kb2: &kb2,
            candidates: &cands,
            graph: &graph,
            components: &components,
        };
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let mut state = LoopState::new(&ctx, 0.9, PropagationConfig::default(), &[joan], eligible);
        let outcome = state.refresh_full(&ctx, SEQ);
        assert!(outcome.stats.full_rebuild);
        state.check_reference(&ctx, SEQ).expect("full refresh is the reference");
        // Switching to incremental after a full refresh rebuilds caches.
        let next = state.refresh(&ctx, SEQ);
        assert!(next.stats.full_rebuild);
        state.check_reference(&ctx, SEQ).expect("rebuilt caches match");
    }

    #[test]
    fn merged_observations_overlays_in_seed_order() {
        let so = |n: usize| SizeObservation::new(n, n, 0, n);
        let cache = vec![(1, so(1)), (3, so(3)), (5, so(5))];
        let merged = merged_observations(&cache, &[(0, so(10)), (3, so(30)), (7, so(70))]);
        assert_eq!(merged, vec![so(10), so(1), so(30), so(5), so(70)]);
        assert_eq!(merged_observations(&cache, &[]).len(), 3);
    }
}
