//! Relational match propagation (paper §V) and inferred-set discovery
//! (§VI-B).
//!
//! Given the ER graph and a labeled match, this crate answers *which other
//! entity pairs can now be inferred, and with what probability*:
//!
//! * [`Consistency`] / [`estimate_consistency`] — the per-relationship-pair
//!   consistency parameters `(ε1, ε2)` (Eq. 3) fitted by maximum likelihood
//!   over latent match counts (Eqs. 4–5). We optimise with hard-EM: the
//!   E-step argmax over the integer latent count is unimodal and closed
//!   form, the M-step is the closed-form ratio `ε_i = ΣL / Σ|N_i|` (see
//!   DESIGN.md §6.1).
//! * [`propagate_to_neighbors`] — the basic case (Eqs. 6–9): posterior
//!   match probabilities of the value-set pairs of one relationship pair,
//!   marginalised over all partial matchings `M_{u1,u2}`; exact enumeration
//!   with a beam-search fallback beyond a configurable budget.
//! * [`ProbErGraph`] — the probabilistic ER graph: every ER-graph edge
//!   weighted with `Pr[m_w | m_v]`, plus distant propagation (Eq. 10) as
//!   shortest paths under `length = −log Pr`, via either the paper's
//!   threshold Floyd–Warshall (Algorithm 2) or an equivalent truncated
//!   Dijkstra.

mod consistency;
mod distant;
mod neighbor;
mod probgraph;

pub use consistency::{estimate_consistency, Consistency, ConsistencyTable};
pub use distant::{inferred_sets_dijkstra, inferred_sets_floyd_warshall, InferredSets};
pub use neighbor::{propagate_to_neighbors, MatchingCandidate, PropagationConfig};
pub use probgraph::ProbErGraph;
