//! Relational match propagation (paper §V) and inferred-set discovery
//! (§VI-B).
//!
//! Given the ER graph and a labeled match, this crate answers *which other
//! entity pairs can now be inferred, and with what probability*:
//!
//! * [`Consistency`] / [`estimate_consistency`] — the per-relationship-pair
//!   consistency parameters `(ε1, ε2)` (Eq. 3) fitted by maximum likelihood
//!   over latent match counts (Eqs. 4–5). We optimise with hard-EM: the
//!   E-step argmax over the integer latent count is unimodal and closed
//!   form, the M-step is the closed-form ratio `ε_i = ΣL / Σ|N_i|` (see
//!   DESIGN.md §6.1).
//! * [`propagate_to_neighbors`] — the basic case (Eqs. 6–9): posterior
//!   match probabilities of the value-set pairs of one relationship pair,
//!   marginalised over all partial matchings `M_{u1,u2}`; exact enumeration
//!   with a beam-search fallback beyond a configurable budget.
//! * [`ProbErGraph`] — the probabilistic ER graph: every ER-graph edge
//!   weighted with `Pr[m_w | m_v]`, plus distant propagation (Eq. 10) as
//!   shortest paths under `length = −log Pr`, via either the paper's
//!   threshold Floyd–Warshall (Algorithm 2) or an equivalent truncated
//!   Dijkstra.
//! * [`LoopState`] — the incremental, component-sharded owner of the
//!   three artifacts above, recomputing only the changed region each
//!   crowd loop while staying bit-identical to the from-scratch path.
//!
//! ## Dirty-tracking invariants (the incremental engine's contract)
//!
//! [`LoopState`] keeps stage 2 exact under these rules; anything touching
//! the propagation data structures must preserve them:
//!
//! 1. **Labels.** A label's consistency depends only on the seed set. A
//!    label is marked dirty when (a) a new seed contributes a non-empty
//!    observation for it, or (b) a new seed lies between the value sets
//!    of an existing seed under it — detectable as an ER-graph edge from
//!    the existing seed into the new one, carrying the flipped label.
//!    Dirty labels re-run hard-EM over cached observations kept in seed
//!    order; only labels whose re-estimated `(ε1, ε2)` actually changed
//!    propagate dirtiness to vertices.
//! 2. **Vertices.** A vertex's probabilistic edges depend only on static
//!    graph structure, the consistencies of its incident labels, and the
//!    priors of its ER-graph neighbours. A vertex is dirty when an
//!    incident label changed or a neighbour's prior changed; only
//!    vertices whose recomputed edge list differs propagate dirtiness to
//!    their component.
//! 3. **Components.** Probabilistic edges are a subset of ER adjacency
//!    and ER adjacency is materialised in both orientations, so no
//!    propagation path leaves a connected component
//!    ([`remp_ergraph::ComponentIndex`]). A component is dirty when any
//!    member's edge list changed; truncated Dijkstra re-runs from its
//!    eligible members only.
//! 4. **Retirement.** A component whose eligible (unresolved,
//!    non-isolated) pairs are exhausted is retired: its edges and
//!    inferred sets are never recomputed again. Safe because resolutions
//!    are never revoked (retired components cannot reopen) and nothing
//!    reads the stage-2 artifacts of resolved pairs — questions come from
//!    eligible pairs, propagation targets are snapshotted at batch
//!    creation, and termination inspects eligible pairs only. Seeds
//!    inside retired components still feed the (global) label estimates.

mod consistency;
mod distant;
mod loopstate;
mod neighbor;
mod probgraph;

pub use consistency::{estimate_consistency, Consistency, ConsistencyTable, SizeObservation};
pub use distant::{inferred_sets_dijkstra, inferred_sets_floyd_warshall, InferredSets};
pub use loopstate::{LoopState, PropagationContext, RefreshOutcome, RefreshStats};
pub use neighbor::{propagate_to_neighbors, MatchingCandidate, PropagationConfig};
pub use probgraph::ProbErGraph;
