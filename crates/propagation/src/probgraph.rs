//! The probabilistic ER graph: ER-graph edges weighted with conditional
//! match probabilities `Pr[m_w | m_v]` from neighbour propagation.

use remp_ergraph::{Candidates, Direction, ErGraph, PairId};
use remp_kb::{EntityId, Kb};
use remp_par::Parallelism;

use crate::{propagate_to_neighbors, ConsistencyTable, MatchingCandidate, PropagationConfig};

/// A directed graph over candidate pairs where each edge `v → w` carries
/// `Pr[m_w | m_v]` (paper §IV-A "probabilistic ER graph").
///
/// Storage is CSR: one contiguous `(target, probability)` arena plus a
/// per-vertex offset array, so truncated Dijkstra walks adjacent memory
/// instead of chasing one heap allocation per vertex. The incremental
/// engine mutates rows through a sparse overlay (`replace_edges`)
/// which `compact` folds back into the arena — one linear rebuild per
/// refresh, after which every read is arena-contiguous again.
#[derive(Clone, Debug)]
pub struct ProbErGraph {
    /// Row starts into `arena`; `offsets[v]..offsets[v + 1]` is `v`'s
    /// edge list, sorted by target, deduplicated to the maximum
    /// probability (the largest lower bound of Eq. 10).
    offsets: Vec<u32>,
    arena: Vec<(PairId, f64)>,
    /// Rows replaced since the last [`compact`](Self::compact); `None`
    /// means the arena row is current.
    overlay: Vec<Option<Vec<(PairId, f64)>>>,
    /// Vertices with a `Some` overlay row.
    dirty: Vec<PairId>,
}

impl ProbErGraph {
    /// Computes edge probabilities for every vertex of `graph` by running
    /// neighbour propagation (Eqs. 6–9) on each relationship-pair group.
    ///
    /// For each vertex `v = (u1, u2)` and each edge label `(r1, r2, dir)`,
    /// the group's targets are the candidate pairs within
    /// `N_{u1}^{r1} × N_{u2}^{r2}`; their posteriors given `m_v` become the
    /// probabilities of the edges `v → target`.
    /// Each vertex's outgoing edges depend only on that vertex's
    /// relationship groups, so the per-vertex propagation runs
    /// data-parallel under `par`; edge lists are sorted by target, making
    /// the result identical in every [`Parallelism`] mode.
    pub fn build(
        kb1: &Kb,
        kb2: &Kb,
        candidates: &Candidates,
        graph: &ErGraph,
        consistencies: &ConsistencyTable,
        config: &PropagationConfig,
        par: &Parallelism,
    ) -> ProbErGraph {
        let vertices: Vec<PairId> = candidates.ids().collect();
        let rows: Vec<Vec<(PairId, f64)>> = par.par_map(&vertices, |&v| {
            vertex_edges(kb1, kb2, candidates, graph, consistencies, config, v)
        });
        Self::from_rows(rows)
    }

    /// Freezes per-vertex rows into the CSR arena.
    fn from_rows(rows: Vec<Vec<(PairId, f64)>>) -> ProbErGraph {
        let n = rows.len();
        let total: usize = rows.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "edge count overflows CSR offsets");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arena = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in &rows {
            arena.extend_from_slice(row);
            offsets.push(arena.len() as u32);
        }
        ProbErGraph { offsets, arena, overlay: vec![None; n], dirty: Vec::new() }
    }

    /// An all-empty graph over `num_vertices` vertices — the starting
    /// point for incremental construction via
    /// [`replace_edges`](Self::replace_edges).
    pub(crate) fn empty(num_vertices: usize) -> ProbErGraph {
        ProbErGraph {
            offsets: vec![0; num_vertices + 1],
            arena: Vec::new(),
            overlay: vec![None; num_vertices],
            dirty: Vec::new(),
        }
    }

    /// Replaces the outgoing edges of `v`, returning `true` when the new
    /// list differs from the stored one — the incremental engine's
    /// cutoff for re-running shortest paths in `v`'s component.
    ///
    /// The row lands in the overlay; call [`compact`](Self::compact)
    /// after a batch of replacements so subsequent traversals read the
    /// contiguous arena.
    pub(crate) fn replace_edges(&mut self, v: PairId, edges: Vec<(PairId, f64)>) -> bool {
        if self.edges_from(v) == edges.as_slice() {
            return false;
        }
        if self.overlay[v.index()].replace(edges).is_none() {
            self.dirty.push(v);
        }
        true
    }

    /// Folds overlay rows back into the CSR arena — O(V + E), a no-op
    /// when nothing changed since the last compaction.
    pub(crate) fn compact(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arena = Vec::with_capacity(self.arena.len());
        offsets.push(0u32);
        for v in 0..n {
            let row = match &self.overlay[v] {
                Some(row) => row.as_slice(),
                None => &self.arena[self.offsets[v] as usize..self.offsets[v + 1] as usize],
            };
            arena.extend_from_slice(row);
            assert!(arena.len() <= u32::MAX as usize, "edge count overflows CSR offsets");
            offsets.push(arena.len() as u32);
        }
        self.offsets = offsets;
        self.arena = arena;
        for v in self.dirty.drain(..) {
            self.overlay[v.index()] = None;
        }
    }

    /// Builds a graph directly from explicit edges (tests, ablations).
    /// Parallel edges keep the maximum probability.
    pub fn from_edges(
        num_vertices: usize,
        edge_list: impl IntoIterator<Item = (PairId, PairId, f64)>,
    ) -> ProbErGraph {
        let mut rows: Vec<Vec<(PairId, f64)>> = vec![Vec::new(); num_vertices];
        for (v, w, p) in edge_list {
            rows[v.index()].push((w, p.clamp(0.0, 1.0)));
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(w, _)| w);
            // Max-merge parallel edges; max is order-independent, so the
            // unstable sort above cannot leak into the result.
            row.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 = b.1.max(a.1);
                    true
                } else {
                    false
                }
            });
        }
        Self::from_rows(rows)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed probabilistic edges.
    pub fn num_edges(&self) -> usize {
        if self.dirty.is_empty() {
            return self.arena.len();
        }
        (0..self.num_vertices()).map(|v| self.edges_from(PairId::from_index(v)).len()).sum()
    }

    /// Outgoing `(target, probability)` edges of `v`.
    pub fn edges_from(&self, v: PairId) -> &[(PairId, f64)] {
        if let Some(row) = &self.overlay[v.index()] {
            return row;
        }
        &self.arena[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// `Pr[m_w | m_v]`, 0.0 when no edge exists.
    pub fn edge_prob(&self, v: PairId, w: PairId) -> f64 {
        let row = self.edges_from(v);
        match row.binary_search_by_key(&w, |&(t, _)| t) {
            Ok(i) => row[i].1,
            Err(_) => 0.0,
        }
    }
}

/// The outgoing probabilistic edges of one vertex: neighbour propagation
/// (Eqs. 6–9) over each of `v`'s relationship-pair groups, keeping the
/// maximum probability per target, sorted by target.
///
/// The single code path behind both [`ProbErGraph::build`] and the
/// incremental per-vertex recomputation in [`crate::LoopState`], so the
/// two are bit-identical by construction. A vertex's edges depend only on
/// static graph structure, the consistencies of its incident labels, and
/// the priors of its ER-graph neighbours — the facts the incremental
/// engine's dirty tracking is built on.
pub(crate) fn vertex_edges(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    graph: &ErGraph,
    consistencies: &ConsistencyTable,
    config: &PropagationConfig,
    v: PairId,
) -> Vec<(PairId, f64)> {
    let (u1, u2) = candidates.pair(v);
    let mut out: Vec<(PairId, f64)> = Vec::new();
    for (label_id, targets) in graph.grouped_from(v) {
        let label = graph.label(label_id);
        let (values1, values2): (Vec<EntityId>, Vec<EntityId>) = match label.dir {
            Direction::Forward => (
                kb1.rel_values(u1, label.r1).iter().map(|&(_, o)| o).collect(),
                kb2.rel_values(u2, label.r2).iter().map(|&(_, o)| o).collect(),
            ),
            Direction::Reverse => (
                kb1.rel_subjects(u1, label.r1).iter().map(|&(_, o)| o).collect(),
                kb2.rel_subjects(u2, label.r2).iter().map(|&(_, o)| o).collect(),
            ),
        };
        let index_of = |values: &[EntityId], e: EntityId| -> Option<usize> {
            values.iter().position(|&x| x == e)
        };
        let mut group = Vec::with_capacity(targets.len());
        for &w in &targets {
            let (o1, o2) = candidates.pair(w);
            let (Some(l), Some(r)) = (index_of(&values1, o1), index_of(&values2, o2)) else {
                continue;
            };
            group.push(MatchingCandidate {
                left: l,
                right: r,
                pair: w,
                prior: candidates.prior(w),
            });
        }
        if group.is_empty() {
            continue;
        }
        let posts = propagate_to_neighbors(
            values1.len(),
            values2.len(),
            &group,
            consistencies.get(label_id),
            config,
        );
        for (w, p) in posts {
            if p > 0.0 {
                out.push((w, p));
            }
        }
    }
    // Sort-then-merge replaces the old per-target map: `max` over the
    // duplicates of a target is order-independent, so the unstable sort
    // yields the same row the map did, bit for bit.
    out.sort_unstable_by_key(|&(w, _)| w);
    out.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 = b.1.max(a.1);
            true
        } else {
            false
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Consistency;
    use remp_ergraph::generate_candidates;
    use remp_kb::{KbBuilder, Value};
    use remp_par::Parallelism as Par;

    /// Two mirrored KBs: person → born-in → city, person → acted-in →
    /// movies (2 movies).
    fn setup() -> (Kb, Kb, Candidates, ErGraph) {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let born1 = b1.add_rel("wasBornIn");
        let born2 = b2.add_rel("birthPlace");
        let acted1 = b1.add_rel("actedIn");
        let acted2 = b2.add_rel("actedIn");
        let lbl1 = b1.add_attr("label");
        let lbl2 = b2.add_attr("label");

        for (b, born, acted, lbl) in
            [(&mut b1, born1, acted1, lbl1), (&mut b2, born2, acted2, lbl2)]
        {
            let joan = b.add_entity("Joan");
            let nyc = b.add_entity("NYC");
            let cradle = b.add_entity("Cradle");
            let player = b.add_entity("Player");
            for e in [joan, nyc, cradle, player] {
                let label = ["Joan", "NYC", "Cradle", "Player"][e.index()];
                b.add_attr_triple(e, lbl, Value::text(label));
            }
            b.add_rel_triple(joan, born, nyc);
            b.add_rel_triple(joan, acted, cradle);
            b.add_rel_triple(joan, acted, player);
        }
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Par::Sequential);
        let graph = ErGraph::build(&kb1, &kb2, &cands);
        (kb1, kb2, cands, graph)
    }

    #[test]
    fn functional_edge_gets_high_probability() {
        let (kb1, kb2, cands, graph) = setup();
        let cons = ConsistencyTable::from_entries(
            graph.labels().map(|(id, _)| (id, Consistency { eps1: 0.95, eps2: 0.95 })),
        );
        let pg = ProbErGraph::build(
            &kb1,
            &kb2,
            &cands,
            &graph,
            &cons,
            &PropagationConfig::default(),
            &Par::Sequential,
        );
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let nyc = cands.id_of((EntityId(1), EntityId(1))).unwrap();
        assert!(pg.edge_prob(joan, nyc) > 0.8, "got {}", pg.edge_prob(joan, nyc));
        // Reverse orientation also present.
        assert!(pg.edge_prob(nyc, joan) > 0.8);
    }

    #[test]
    fn no_edge_means_zero_probability() {
        let (kb1, kb2, cands, graph) = setup();
        let cons = ConsistencyTable::from_entries(
            graph.labels().map(|(id, _)| (id, Consistency { eps1: 0.9, eps2: 0.9 })),
        );
        let pg = ProbErGraph::build(
            &kb1,
            &kb2,
            &cands,
            &graph,
            &cons,
            &PropagationConfig::default(),
            &Par::Sequential,
        );
        let nyc = cands.id_of((EntityId(1), EntityId(1))).unwrap();
        let cradle = cands.id_of((EntityId(2), EntityId(2))).unwrap();
        assert_eq!(pg.edge_prob(nyc, cradle), 0.0);
    }

    #[test]
    fn low_consistency_weakens_edges() {
        let (kb1, kb2, cands, graph) = setup();
        let strong = ConsistencyTable::from_entries(
            graph.labels().map(|(id, _)| (id, Consistency { eps1: 0.95, eps2: 0.95 })),
        );
        let weak = ConsistencyTable::from_entries(
            graph.labels().map(|(id, _)| (id, Consistency { eps1: 0.2, eps2: 0.2 })),
        );
        let cfg = PropagationConfig::default();
        let pg_s = ProbErGraph::build(&kb1, &kb2, &cands, &graph, &strong, &cfg, &Par::Sequential);
        let pg_w = ProbErGraph::build(&kb1, &kb2, &cands, &graph, &weak, &cfg, &Par::Sequential);
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let nyc = cands.id_of((EntityId(1), EntityId(1))).unwrap();
        assert!(pg_w.edge_prob(joan, nyc) < pg_s.edge_prob(joan, nyc));
    }

    #[test]
    fn from_edges_keeps_max_parallel() {
        let pg =
            ProbErGraph::from_edges(3, [(PairId(0), PairId(1), 0.3), (PairId(0), PairId(1), 0.8)]);
        assert_eq!(pg.edge_prob(PairId(0), PairId(1)), 0.8);
        assert_eq!(pg.num_edges(), 1);
    }
}
