//! The crowdsourced collective ER loop (paper §III-B, Fig. 2).

use remp_crowd::{infer_truth, LabelSource, Verdict};
use remp_ergraph::PairId;
use remp_kb::{EntityId, Kb};
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::select_questions;

use crate::{classify_isolated, prepare, PreparedEr, RempConfig};

/// How a pair came to be resolved as a match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchSource {
    /// Labeled a match by the crowd (Eq. 17 verdict).
    Crowd,
    /// Inferred through relational match propagation (Eq. 11).
    Inferred,
    /// Predicted by the isolated-pair classifier (§VII-B).
    Classifier,
}

/// Resolution state of a retained pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Not yet decided.
    Unresolved,
    /// Resolved as a match.
    Match(MatchSource),
    /// Resolved as a non-match.
    NonMatch,
}

/// Result of a pipeline run.
#[derive(Clone, Debug)]
pub struct RempOutcome {
    /// The final entity matches.
    pub matches: Vec<(EntityId, EntityId)>,
    /// Per-retained-pair resolution (parallel to the prepared candidates).
    pub resolutions: Vec<Resolution>,
    /// Questions asked (`#Q`).
    pub questions_asked: usize,
    /// Human-machine loops executed (`#L`).
    pub loops: usize,
    /// `|M_c]` before pruning.
    pub candidate_count: usize,
    /// `|M_rd|` after pruning.
    pub retained_count: usize,
    /// ER-graph edge count.
    pub edge_count: usize,
}

/// The Remp system.
#[derive(Clone, Debug, Default)]
pub struct Remp {
    /// Pipeline configuration.
    pub config: RempConfig,
}

impl Remp {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: RempConfig) -> Remp {
        Remp { config }
    }

    /// Runs the full pipeline. `truth` supplies the hidden ground truth the
    /// simulated `crowd` answers from (a real deployment would replace both
    /// with actual workers).
    pub fn run(
        &self,
        kb1: &Kb,
        kb2: &Kb,
        truth: &dyn Fn(EntityId, EntityId) -> bool,
        crowd: &mut dyn LabelSource,
    ) -> RempOutcome {
        let prep = prepare(kb1, kb2, &self.config);
        self.run_prepared(kb1, kb2, prep, truth, crowd)
    }

    /// Runs stages 2–4 on an already-constructed ER graph (lets the bench
    /// harness share stage 1 across methods, as the paper does: "all
    /// methods take the same retained entity matches M_rd as input").
    pub fn run_prepared(
        &self,
        kb1: &Kb,
        kb2: &Kb,
        prep: PreparedEr,
        truth: &dyn Fn(EntityId, EntityId) -> bool,
        crowd: &mut dyn LabelSource,
    ) -> RempOutcome {
        let config = &self.config;
        let PreparedEr { mut candidates, graph, sim_vectors, initial, .. } = prep.clone();
        let n = candidates.len();
        let mut resolution = vec![Resolution::Unresolved; n];
        let mut seeds: Vec<PairId> = initial;
        let mut questions = 0usize;
        let mut loops = 0usize;

        while loops < config.max_loops {
            // Stage 2: relational match propagation.
            let cons = ConsistencyTable::estimate(kb1, kb2, &candidates, &graph, &seeds);
            let pg = ProbErGraph::build(
                kb1,
                kb2,
                &candidates,
                &graph,
                &cons,
                &config.propagation,
            );
            let inferred = inferred_sets_dijkstra(&pg, config.tau);

            // Stage 3: multiple questions selection. Isolated vertices are
            // excluded — the classifier handles them (§VII-B).
            let eligible: Vec<bool> = (0..n)
                .map(|i| {
                    resolution[i] == Resolution::Unresolved
                        && !graph.is_isolated_vertex(PairId::from_index(i))
                })
                .collect();
            // The paper stops "when there is no unresolved entity pair that
            // can be inferred by relational match propagation": as long as
            // some unresolved pair is reachable from another, the loop
            // continues (benefit-greedy selection prefers the propagating
            // questions); once nothing is reachable any more, remaining
            // pairs go to the classifier instead of the crowd.
            let any_reachable = (0..n).map(PairId::from_index).any(|q| {
                eligible[q.index()]
                    && inferred
                        .inferred(q)
                        .iter()
                        .any(|&(p, _)| p != q && eligible[p.index()])
            });
            if !any_reachable {
                break;
            }
            let question_cands: Vec<PairId> = (0..n)
                .map(PairId::from_index)
                .filter(|p| eligible[p.index()])
                .collect();
            let remaining = config
                .max_questions
                .map(|b| b.saturating_sub(questions))
                .unwrap_or(usize::MAX);
            let mu = config.mu.min(remaining);
            if mu == 0 {
                break;
            }
            let priors: Vec<f64> = candidates.ids().map(|p| candidates.prior(p)).collect();
            let selected = select_questions(&question_cands, &inferred, &priors, &eligible, mu);
            if selected.is_empty() {
                break; // no unresolved pair can be inferred any more
            }

            // Stage 4: crowd labeling + truth inference.
            let mut newly_matched = Vec::new();
            for q in selected {
                let (u1, u2) = candidates.pair(q);
                let labels = crowd.label(truth(u1, u2));
                questions += 1;
                let (verdict, posterior) =
                    infer_truth(candidates.prior(q), &labels, &config.truth);
                match verdict {
                    Verdict::Match => {
                        resolution[q.index()] = Resolution::Match(MatchSource::Crowd);
                        candidates.set_prior(q, 1.0);
                        newly_matched.push(q);
                    }
                    Verdict::NonMatch => {
                        resolution[q.index()] = Resolution::NonMatch;
                        candidates.set_prior(q, 0.0);
                    }
                    Verdict::Inconsistent => {
                        // Hard question: lower its benefit via the prior.
                        candidates.set_prior(q, posterior);
                    }
                }
            }

            // Propagate labeled matches to their inferred sets (Eq. 11).
            for &q in &newly_matched {
                for &(p, _) in inferred.inferred(q) {
                    if resolution[p.index()] == Resolution::Unresolved {
                        resolution[p.index()] = Resolution::Match(MatchSource::Inferred);
                        candidates.set_prior(p, 1.0);
                    }
                }
            }
            // Confirmed matches join the seeds for re-estimating
            // consistencies and edge probabilities next loop.
            seeds.extend(
                (0..n)
                    .map(PairId::from_index)
                    .filter(|p| matches!(resolution[p.index()], Resolution::Match(_))),
            );
            seeds.sort_unstable();
            seeds.dedup();
            loops += 1;
        }

        // Isolated entity pairs: random-forest inference (§VII-B).
        if config.classify_isolated {
            let predicted = classify_isolated(
                kb1,
                kb2,
                &candidates,
                &graph,
                &sim_vectors,
                &prep.alignment,
                &resolution,
                config,
            );
            for p in predicted {
                if resolution[p.index()] == Resolution::Unresolved {
                    resolution[p.index()] = Resolution::Match(MatchSource::Classifier);
                }
            }
        }

        let matches: Vec<(EntityId, EntityId)> = (0..n)
            .filter(|&i| matches!(resolution[i], Resolution::Match(_)))
            .map(|i| candidates.pair(PairId::from_index(i)))
            .collect();

        RempOutcome {
            matches,
            resolutions: resolution,
            questions_asked: questions,
            loops,
            candidate_count: prep.candidate_count,
            retained_count: n,
            edge_count: graph.num_edges(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_matches;
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    #[test]
    fn pipeline_resolves_iimb_with_oracle() {
        let d = generate(&iimb(0.25));
        let remp = Remp::new(RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);

        assert!(outcome.questions_asked > 0, "some questions must be asked");
        assert_eq!(outcome.questions_asked, crowd.questions_asked());
        assert!(outcome.loops > 0);

        let eval = evaluate_matches(outcome.matches.iter().copied(), &d.gold);
        assert!(eval.f1 > 0.7, "oracle-driven IIMB run should do well, F1 = {}", eval.f1);
        // Propagation must contribute: more matches than questions asked.
        let inferred = outcome
            .resolutions
            .iter()
            .filter(|r| matches!(r, Resolution::Match(MatchSource::Inferred)))
            .count();
        assert!(inferred > 0, "relational propagation should infer matches");
    }

    #[test]
    fn budget_caps_questions() {
        let d = generate(&iimb(0.25));
        let remp = Remp::new(RempConfig::default().with_budget(5));
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);
        assert!(outcome.questions_asked <= 5);
    }

    #[test]
    fn mu_one_asks_one_per_loop() {
        let d = generate(&iimb(0.2));
        let remp = Remp::new(RempConfig::default().with_mu(1).with_budget(6));
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);
        assert_eq!(outcome.loops, outcome.questions_asked);
    }

    #[test]
    fn no_candidates_terminates_cleanly() {
        // Two KBs with nothing in common.
        let mut b1 = remp_kb::KbBuilder::new("a");
        let mut b2 = remp_kb::KbBuilder::new("b");
        b1.add_entity("aaa bbb");
        b2.add_entity("zzz yyy");
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let remp = Remp::default();
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&kb1, &kb2, &|_, _| false, &mut crowd);
        assert_eq!(outcome.questions_asked, 0);
        assert!(outcome.matches.is_empty());
    }
}
