//! The crowdsourced collective ER pipeline (paper §III-B, Fig. 2).
//!
//! [`Remp`] is the entry point. The loop itself lives in the resumable
//! [`RempSession`] state machine ([`Remp::begin`]);
//! [`Remp::run`] and [`Remp::run_prepared`] are thin convenience wrappers
//! that drain a session against a simulated [`LabelSource`].

use remp_crowd::LabelSource;
use remp_kb::{EntityId, Kb};

use crate::session::RempSession;
use crate::{prepare, PreparedEr, RempConfig, RempError};

/// How a pair came to be resolved as a match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchSource {
    /// Labeled a match by the crowd (Eq. 17 verdict).
    Crowd,
    /// Inferred through relational match propagation (Eq. 11).
    Inferred,
    /// Predicted by the isolated-pair classifier (§VII-B).
    Classifier,
}

/// Resolution state of a retained pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Not yet decided.
    Unresolved,
    /// Resolved as a match.
    Match(MatchSource),
    /// Resolved as a non-match.
    NonMatch,
}

impl Resolution {
    /// One-character code used by the checkpoint format and the serve
    /// wire protocol: `U`nresolved, `C`rowd match, `I`nferred match,
    /// classi`F`ier match, `N`on-match.
    pub fn code(self) -> char {
        match self {
            Resolution::Unresolved => 'U',
            Resolution::Match(MatchSource::Crowd) => 'C',
            Resolution::Match(MatchSource::Inferred) => 'I',
            Resolution::Match(MatchSource::Classifier) => 'F',
            Resolution::NonMatch => 'N',
        }
    }

    /// Inverse of [`Resolution::code`].
    pub fn from_code(c: char) -> Option<Resolution> {
        match c {
            'U' => Some(Resolution::Unresolved),
            'C' => Some(Resolution::Match(MatchSource::Crowd)),
            'I' => Some(Resolution::Match(MatchSource::Inferred)),
            'F' => Some(Resolution::Match(MatchSource::Classifier)),
            'N' => Some(Resolution::NonMatch),
            _ => None,
        }
    }
}

/// Result of a pipeline run.
#[derive(Clone, Debug, PartialEq)]
pub struct RempOutcome {
    /// The final entity matches.
    pub matches: Vec<(EntityId, EntityId)>,
    /// Per-retained-pair resolution (parallel to the prepared candidates).
    pub resolutions: Vec<Resolution>,
    /// Questions asked (`#Q`).
    pub questions_asked: usize,
    /// Human-machine loops executed (`#L`).
    pub loops: usize,
    /// `|M_c]` before pruning.
    pub candidate_count: usize,
    /// `|M_rd|` after pruning.
    pub retained_count: usize,
    /// ER-graph edge count.
    pub edge_count: usize,
}

/// The Remp system.
#[derive(Clone, Debug, Default)]
pub struct Remp {
    /// Pipeline configuration.
    pub config: RempConfig,
}

impl Remp {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: RempConfig) -> Remp {
        Remp { config }
    }

    /// Runs ER-graph construction (stage 1) and opens a resumable
    /// session over the retained pairs. The caller owns the crowd loop:
    /// see [`RempSession`].
    pub fn begin<'a>(&self, kb1: &'a Kb, kb2: &'a Kb) -> Result<RempSession<'a>, RempError> {
        self.config.validate()?;
        let prep = prepare(kb1, kb2, &self.config);
        Ok(RempSession::new(kb1, kb2, self.config.clone(), prep))
    }

    /// Opens a session over an already-constructed ER graph (lets the
    /// bench harness share stage 1 across methods, as the paper does:
    /// "all methods take the same retained entity matches M_rd as
    /// input").
    pub fn begin_prepared<'a>(
        &self,
        kb1: &'a Kb,
        kb2: &'a Kb,
        prep: PreparedEr,
    ) -> Result<RempSession<'a>, RempError> {
        self.config.validate()?;
        Ok(RempSession::new(kb1, kb2, self.config.clone(), prep))
    }

    /// Runs the full pipeline to completion. `truth` supplies the hidden
    /// ground truth the simulated `crowd` answers from (a real deployment
    /// would own the loop itself via [`Remp::begin`]).
    ///
    /// # Panics
    ///
    /// If the configuration fails [`RempConfig::validate`]; use
    /// [`Remp::begin`] for a `Result`-returning entry point.
    pub fn run(
        &self,
        kb1: &Kb,
        kb2: &Kb,
        truth: &dyn Fn(EntityId, EntityId) -> bool,
        crowd: &mut dyn LabelSource,
    ) -> RempOutcome {
        let prep = prepare(kb1, kb2, &self.config);
        self.run_prepared(kb1, kb2, prep, truth, crowd)
    }

    /// Runs stages 2–4 on an already-constructed ER graph, to
    /// completion, against a simulated crowd.
    ///
    /// # Panics
    ///
    /// If the configuration fails [`RempConfig::validate`]; use
    /// [`Remp::begin_prepared`] for a `Result`-returning entry point.
    pub fn run_prepared(
        &self,
        kb1: &Kb,
        kb2: &Kb,
        prep: PreparedEr,
        truth: &dyn Fn(EntityId, EntityId) -> bool,
        crowd: &mut dyn LabelSource,
    ) -> RempOutcome {
        let mut session = self
            .begin_prepared(kb1, kb2, prep)
            .unwrap_or_else(|e| panic!("Remp::run_prepared: {e}"));
        session
            .drive(truth, crowd)
            .expect("draining a fresh session cannot hit caller-protocol errors");
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_matches;
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    #[test]
    fn pipeline_resolves_iimb_with_oracle() {
        let d = generate(&iimb(0.25));
        let remp = Remp::new(RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);

        assert!(outcome.questions_asked > 0, "some questions must be asked");
        assert_eq!(outcome.questions_asked, crowd.questions_asked());
        assert!(outcome.loops > 0);

        let eval = evaluate_matches(outcome.matches.iter().copied(), &d.gold);
        assert!(eval.f1 > 0.7, "oracle-driven IIMB run should do well, F1 = {}", eval.f1);
        // Propagation must contribute: more matches than questions asked.
        let inferred = outcome
            .resolutions
            .iter()
            .filter(|r| matches!(r, Resolution::Match(MatchSource::Inferred)))
            .count();
        assert!(inferred > 0, "relational propagation should infer matches");
    }

    #[test]
    fn budget_caps_questions() {
        let d = generate(&iimb(0.25));
        let remp = Remp::new(RempConfig::default().with_budget(5));
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);
        assert!(outcome.questions_asked <= 5);
    }

    #[test]
    fn mu_one_asks_one_per_loop() {
        let d = generate(&iimb(0.2));
        let remp = Remp::new(RempConfig::default().with_mu(1).with_budget(6));
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&d.kb1, &d.kb2, &|u1, u2| d.is_match(u1, u2), &mut crowd);
        assert_eq!(outcome.loops, outcome.questions_asked);
    }

    #[test]
    fn no_candidates_terminates_cleanly() {
        // Two KBs with nothing in common.
        let mut b1 = remp_kb::KbBuilder::new("a");
        let mut b2 = remp_kb::KbBuilder::new("b");
        b1.add_entity("aaa bbb");
        b2.add_entity("zzz yyy");
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let remp = Remp::default();
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run(&kb1, &kb2, &|_, _| false, &mut crowd);
        assert_eq!(outcome.questions_asked, 0);
        assert!(outcome.matches.is_empty());
    }

    #[test]
    fn begin_rejects_invalid_config() {
        let d = generate(&iimb(0.1));
        let remp = Remp::new(RempConfig { mu: 0, ..RempConfig::default() });
        assert!(matches!(remp.begin(&d.kb1, &d.kb2), Err(crate::RempError::InvalidConfig(_))));
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn run_panics_on_invalid_config() {
        let d = generate(&iimb(0.1));
        let remp = Remp::new(RempConfig { tau: 2.0, ..RempConfig::default() });
        let mut crowd = OracleCrowd::new();
        let _ = remp.run(&d.kb1, &d.kb2, &|_, _| false, &mut crowd);
    }
}
