//! Pipeline configuration (the paper's §VIII "Setup" defaults).

use remp_crowd::TruthConfig;
use remp_ergraph::AttrMatchConfig;
use remp_forest::{ForestConfig, TreeConfig};
use remp_json::Json;
use remp_par::Parallelism;
use remp_propagation::PropagationConfig;
use remp_selection::BatchStrategy;

use crate::RempError;

/// All knobs of the Remp pipeline, defaulting to the paper's setup:
/// label-similarity threshold 0.3, `k = 4`, `τ = 0.9`, `µ = 10`, truth
/// thresholds 0.8 / 0.2.
#[derive(Clone, Debug, PartialEq)]
pub struct RempConfig {
    /// Label-Jaccard threshold for candidate generation (paper: 0.3).
    pub label_sim_threshold: f64,
    /// Internal `simL` literal threshold (paper: 0.9).
    pub literal_threshold: f64,
    /// k of the partial-order k-NN pruning (paper: 4).
    pub knn_k: usize,
    /// Precision threshold τ for inferring matches (paper: 0.9).
    pub tau: f64,
    /// Questions per human-machine loop µ (paper: 10).
    pub mu: usize,
    /// Question-selection policy per batch (paper: expected benefit;
    /// the §VIII-B heuristics are available for ablations).
    pub strategy: BatchStrategy,
    /// Hard budget on total questions (`None` = run to convergence).
    pub max_questions: Option<usize>,
    /// Safety cap on loops (the paper's termination is benefit-driven).
    pub max_loops: usize,
    /// Attribute-matching options (1:1 constraint etc.).
    pub attr: AttrMatchConfig,
    /// Truth-inference thresholds.
    pub truth: TruthConfig,
    /// Neighbour-propagation enumeration budget.
    pub propagation: PropagationConfig,
    /// Whether to run the isolated-pair classifier after the loop.
    pub classify_isolated: bool,
    /// Random-forest settings for the isolated-pair classifier.
    pub forest: ForestConfig,
    /// Attribute-signature similarity ψ for the classifier's training
    /// neighbourhood (paper: 0.9).
    pub psi: f64,
    /// Forest vote share required to call an isolated pair a match.
    /// Isolated targets are massively imbalanced toward non-matches, so
    /// the default is well above 0.5 (the paper's ψ = 0.9 serves the same
    /// high-precision goal).
    pub classifier_threshold: f64,
    /// Worker-pool policy for the data-parallel pipeline stages
    /// (candidate generation, similarity vectors, pruning, propagation,
    /// batch scoring). Purely an execution knob: every mode produces
    /// bit-identical matches, metrics and question order. The default
    /// [`Parallelism::Auto`] honours the `REMP_THREADS` environment
    /// variable and otherwise uses every available core; use
    /// [`Parallelism::Sequential`] for single-threaded runs.
    pub parallelism: Parallelism,
}

impl Default for RempConfig {
    fn default() -> Self {
        RempConfig {
            label_sim_threshold: 0.3,
            literal_threshold: 0.9,
            knn_k: 4,
            tau: 0.9,
            mu: 10,
            strategy: BatchStrategy::Benefit,
            max_questions: None,
            max_loops: 1000,
            attr: AttrMatchConfig::default(),
            truth: TruthConfig::default(),
            propagation: PropagationConfig::default(),
            classify_isolated: true,
            forest: ForestConfig { n_trees: 50, ..ForestConfig::default() },
            psi: 0.9,
            classifier_threshold: 0.6,
            parallelism: Parallelism::Auto,
        }
    }
}

impl RempConfig {
    /// Overrides µ.
    pub fn with_mu(mut self, mu: usize) -> Self {
        self.mu = mu;
        self
    }

    /// Overrides τ.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Overrides the question budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.max_questions = Some(budget);
        self
    }

    /// Disables the isolated-pair classifier (used by the propagation
    /// ablation, Table VI).
    pub fn without_classifier(mut self) -> Self {
        self.classify_isolated = false;
        self
    }

    /// Overrides the question-selection policy.
    pub fn with_strategy(mut self, strategy: BatchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the worker-pool policy (see [`RempConfig::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Checks every knob for consistency; [`crate::Remp::begin`] and
    /// checkpoint resume run this before touching any data.
    pub fn validate(&self) -> Result<(), RempError> {
        let invalid = |msg: String| Err(RempError::InvalidConfig(msg));
        let unit = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(RempError::InvalidConfig(format!("{name} = {v} must be within [0, 1]")))
            }
        };
        unit("label_sim_threshold", self.label_sim_threshold)?;
        unit("literal_threshold", self.literal_threshold)?;
        unit("psi", self.psi)?;
        unit("classifier_threshold", self.classifier_threshold)?;
        unit("truth.match_threshold", self.truth.match_threshold)?;
        unit("truth.non_match_threshold", self.truth.non_match_threshold)?;
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return invalid(format!("tau = {} must be within (0, 1]", self.tau));
        }
        if self.truth.non_match_threshold >= self.truth.match_threshold {
            return invalid(format!(
                "truth thresholds must satisfy non_match < match, got {} >= {}",
                self.truth.non_match_threshold, self.truth.match_threshold
            ));
        }
        if self.mu == 0 {
            return invalid("mu must be at least 1".into());
        }
        if self.knn_k == 0 {
            return invalid("knn_k must be at least 1".into());
        }
        if self.max_loops == 0 {
            return invalid("max_loops must be at least 1".into());
        }
        if self.forest.n_trees == 0 {
            return invalid("forest.n_trees must be at least 1".into());
        }
        if self.propagation.beam_width == 0 {
            return invalid("propagation.beam_width must be at least 1".into());
        }
        if self.propagation.max_candidates == 0 {
            return invalid("propagation.max_candidates must be at least 1".into());
        }
        if self.parallelism == Parallelism::Fixed(0) {
            return invalid(
                "parallelism = fixed:0 is meaningless; use `sequential` (or fixed:1)".into(),
            );
        }
        Ok(())
    }

    /// Encodes the configuration as a JSON value (checkpoint format).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label_sim_threshold".into(), Json::from(self.label_sim_threshold)),
            ("literal_threshold".into(), Json::from(self.literal_threshold)),
            ("knn_k".into(), Json::from(self.knn_k)),
            ("tau".into(), Json::from(self.tau)),
            ("mu".into(), Json::from(self.mu)),
            ("strategy".into(), Json::from(self.strategy.name())),
            ("max_questions".into(), self.max_questions.map_or(Json::Null, Json::from)),
            ("max_loops".into(), Json::from(self.max_loops)),
            (
                "attr".into(),
                Json::Obj(vec![
                    ("literal_threshold".into(), Json::from(self.attr.literal_threshold)),
                    ("min_similarity".into(), Json::from(self.attr.min_similarity)),
                    ("one_to_one".into(), Json::from(self.attr.one_to_one)),
                ]),
            ),
            (
                "truth".into(),
                Json::Obj(vec![
                    ("match_threshold".into(), Json::from(self.truth.match_threshold)),
                    ("non_match_threshold".into(), Json::from(self.truth.non_match_threshold)),
                ]),
            ),
            (
                "propagation".into(),
                Json::Obj(vec![
                    ("enumeration_budget".into(), Json::from(self.propagation.enumeration_budget)),
                    ("beam_width".into(), Json::from(self.propagation.beam_width)),
                    ("max_candidates".into(), Json::from(self.propagation.max_candidates)),
                ]),
            ),
            ("classify_isolated".into(), Json::from(self.classify_isolated)),
            (
                "forest".into(),
                Json::Obj(vec![
                    ("n_trees".into(), Json::from(self.forest.n_trees)),
                    ("seed".into(), Json::from(self.forest.seed)),
                    ("max_depth".into(), self.forest.tree.max_depth.map_or(Json::Null, Json::from)),
                    ("min_samples_split".into(), Json::from(self.forest.tree.min_samples_split)),
                    (
                        "max_features".into(),
                        self.forest.tree.max_features.map_or(Json::Null, Json::from),
                    ),
                ]),
            ),
            ("psi".into(), Json::from(self.psi)),
            ("classifier_threshold".into(), Json::from(self.classifier_threshold)),
            ("parallelism".into(), Json::Str(self.parallelism.label())),
        ])
    }

    /// Decodes a configuration from its JSON encoding.
    pub fn from_json(doc: &Json) -> Result<RempConfig, RempError> {
        use crate::jsonio::{get, get_bool, get_f64, get_opt_usize, get_str, get_u64, get_usize};

        let attr = get(doc, "attr")?;
        let truth = get(doc, "truth")?;
        let propagation = get(doc, "propagation")?;
        let forest = get(doc, "forest")?;

        let strategy_name = get_str(doc, "strategy")?;
        let strategy = BatchStrategy::from_name(strategy_name).ok_or_else(|| {
            RempError::MalformedCheckpoint(format!("unknown strategy '{strategy_name}'"))
        })?;

        // Execution-only knob, absent from pre-parallelism checkpoints:
        // missing means the default policy, present must parse.
        let parallelism = match doc.get("parallelism") {
            None => Parallelism::default(),
            Some(v) => {
                let raw = v.as_str().ok_or_else(|| {
                    RempError::MalformedCheckpoint("field 'parallelism' is not a string".into())
                })?;
                Parallelism::from_label(raw).ok_or_else(|| {
                    RempError::MalformedCheckpoint(format!("unknown parallelism '{raw}'"))
                })?
            }
        };

        Ok(RempConfig {
            label_sim_threshold: get_f64(doc, "label_sim_threshold")?,
            literal_threshold: get_f64(doc, "literal_threshold")?,
            knn_k: get_usize(doc, "knn_k")?,
            tau: get_f64(doc, "tau")?,
            mu: get_usize(doc, "mu")?,
            strategy,
            max_questions: get_opt_usize(doc, "max_questions")?,
            max_loops: get_usize(doc, "max_loops")?,
            attr: AttrMatchConfig {
                literal_threshold: get_f64(attr, "literal_threshold")?,
                min_similarity: get_f64(attr, "min_similarity")?,
                one_to_one: get_bool(attr, "one_to_one")?,
            },
            truth: TruthConfig {
                match_threshold: get_f64(truth, "match_threshold")?,
                non_match_threshold: get_f64(truth, "non_match_threshold")?,
            },
            propagation: PropagationConfig {
                enumeration_budget: get_usize(propagation, "enumeration_budget")?,
                beam_width: get_usize(propagation, "beam_width")?,
                max_candidates: get_usize(propagation, "max_candidates")?,
            },
            classify_isolated: get_bool(doc, "classify_isolated")?,
            forest: ForestConfig {
                n_trees: get_usize(forest, "n_trees")?,
                seed: get_u64(forest, "seed")?,
                tree: TreeConfig {
                    max_depth: get_opt_usize(forest, "max_depth")?,
                    min_samples_split: get_usize(forest, "min_samples_split")?,
                    max_features: get_opt_usize(forest, "max_features")?,
                },
            },
            psi: get_f64(doc, "psi")?,
            classifier_threshold: get_f64(doc, "classifier_threshold")?,
            parallelism,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = RempConfig::default();
        assert_eq!(c.knn_k, 4);
        assert_eq!(c.mu, 10);
        assert!((c.tau - 0.9).abs() < 1e-12);
        assert!((c.label_sim_threshold - 0.3).abs() < 1e-12);
        assert!((c.truth.match_threshold - 0.8).abs() < 1e-12);
    }

    #[test]
    fn builders_override() {
        let c = RempConfig::default().with_mu(1).with_tau(0.8).with_budget(64);
        assert_eq!(c.mu, 1);
        assert!((c.tau - 0.8).abs() < 1e-12);
        assert_eq!(c.max_questions, Some(64));
        assert!(!RempConfig::default().without_classifier().classify_isolated);
        let c = RempConfig::default().with_strategy(BatchStrategy::MaxPr);
        assert_eq!(c.strategy, BatchStrategy::MaxPr);
    }

    #[test]
    fn default_config_validates() {
        RempConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_names_the_broken_knob() {
        let broken = [
            (RempConfig { tau: 0.0, ..RempConfig::default() }, "tau"),
            (RempConfig { tau: 1.5, ..RempConfig::default() }, "tau"),
            (RempConfig { mu: 0, ..RempConfig::default() }, "mu"),
            (RempConfig { knn_k: 0, ..RempConfig::default() }, "knn_k"),
            (RempConfig { max_loops: 0, ..RempConfig::default() }, "max_loops"),
            (RempConfig { label_sim_threshold: -0.1, ..RempConfig::default() }, "label_sim"),
            (RempConfig { psi: 7.0, ..RempConfig::default() }, "psi"),
            (
                RempConfig { parallelism: Parallelism::Fixed(0), ..RempConfig::default() },
                "parallelism",
            ),
        ];
        for (config, field) in broken {
            match config.validate() {
                Err(RempError::InvalidConfig(msg)) => {
                    assert!(msg.contains(field), "message {msg:?} should mention {field}")
                }
                other => panic!("{field}: expected InvalidConfig, got {other:?}"),
            }
        }
        // Swapped truth thresholds are rejected too.
        let mut config = RempConfig::default();
        config.truth.non_match_threshold = 0.9;
        assert!(matches!(config.validate(), Err(RempError::InvalidConfig(_))));
    }

    #[test]
    fn json_round_trips_non_default_config() {
        let mut config = RempConfig::default()
            .with_mu(3)
            .with_tau(0.85)
            .with_budget(128)
            .with_strategy(BatchStrategy::MaxInf)
            .without_classifier();
        config.forest.tree.max_depth = Some(7);
        config.attr.one_to_one = false;
        let decoded = RempConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(decoded, config);

        let defaults = RempConfig::default();
        assert_eq!(RempConfig::from_json(&defaults.to_json()).unwrap(), defaults);
    }

    #[test]
    fn json_rejects_missing_fields() {
        let err = RempConfig::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(matches!(err, RempError::MalformedCheckpoint(_)));
    }

    #[test]
    fn parallelism_round_trips_and_defaults_when_absent() {
        let config = RempConfig::default().with_parallelism(Parallelism::Fixed(4));
        let decoded = RempConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(decoded, config);

        // Pre-parallelism checkpoints carry no such field: decode to the
        // default policy instead of failing.
        let mut doc = RempConfig::default().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(key, _)| key != "parallelism");
        }
        assert_eq!(RempConfig::from_json(&doc).unwrap().parallelism, Parallelism::Auto);

        // A present-but-bogus value is still an error.
        let mut doc = RempConfig::default().to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "parallelism" {
                    *value = Json::Str("warp-speed".into());
                }
            }
        }
        assert!(matches!(RempConfig::from_json(&doc), Err(RempError::MalformedCheckpoint(_))));
    }
}
