//! Pipeline configuration (the paper's §VIII "Setup" defaults).

use remp_crowd::TruthConfig;
use remp_ergraph::AttrMatchConfig;
use remp_forest::ForestConfig;
use remp_propagation::PropagationConfig;

/// All knobs of the Remp pipeline, defaulting to the paper's setup:
/// label-similarity threshold 0.3, `k = 4`, `τ = 0.9`, `µ = 10`, truth
/// thresholds 0.8 / 0.2.
#[derive(Clone, Debug)]
pub struct RempConfig {
    /// Label-Jaccard threshold for candidate generation (paper: 0.3).
    pub label_sim_threshold: f64,
    /// Internal `simL` literal threshold (paper: 0.9).
    pub literal_threshold: f64,
    /// k of the partial-order k-NN pruning (paper: 4).
    pub knn_k: usize,
    /// Precision threshold τ for inferring matches (paper: 0.9).
    pub tau: f64,
    /// Questions per human-machine loop µ (paper: 10).
    pub mu: usize,
    /// Hard budget on total questions (`None` = run to convergence).
    pub max_questions: Option<usize>,
    /// Safety cap on loops (the paper's termination is benefit-driven).
    pub max_loops: usize,
    /// Attribute-matching options (1:1 constraint etc.).
    pub attr: AttrMatchConfig,
    /// Truth-inference thresholds.
    pub truth: TruthConfig,
    /// Neighbour-propagation enumeration budget.
    pub propagation: PropagationConfig,
    /// Whether to run the isolated-pair classifier after the loop.
    pub classify_isolated: bool,
    /// Random-forest settings for the isolated-pair classifier.
    pub forest: ForestConfig,
    /// Attribute-signature similarity ψ for the classifier's training
    /// neighbourhood (paper: 0.9).
    pub psi: f64,
    /// Forest vote share required to call an isolated pair a match.
    /// Isolated targets are massively imbalanced toward non-matches, so
    /// the default is well above 0.5 (the paper's ψ = 0.9 serves the same
    /// high-precision goal).
    pub classifier_threshold: f64,
}

impl Default for RempConfig {
    fn default() -> Self {
        RempConfig {
            label_sim_threshold: 0.3,
            literal_threshold: 0.9,
            knn_k: 4,
            tau: 0.9,
            mu: 10,
            max_questions: None,
            max_loops: 1000,
            attr: AttrMatchConfig::default(),
            truth: TruthConfig::default(),
            propagation: PropagationConfig::default(),
            classify_isolated: true,
            forest: ForestConfig { n_trees: 50, ..ForestConfig::default() },
            psi: 0.9,
            classifier_threshold: 0.6,
        }
    }
}

impl RempConfig {
    /// Overrides µ.
    pub fn with_mu(mut self, mu: usize) -> Self {
        self.mu = mu;
        self
    }

    /// Overrides τ.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Overrides the question budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.max_questions = Some(budget);
        self
    }

    /// Disables the isolated-pair classifier (used by the propagation
    /// ablation, Table VI).
    pub fn without_classifier(mut self) -> Self {
        self.classify_isolated = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = RempConfig::default();
        assert_eq!(c.knn_k, 4);
        assert_eq!(c.mu, 10);
        assert!((c.tau - 0.9).abs() < 1e-12);
        assert!((c.label_sim_threshold - 0.3).abs() < 1e-12);
        assert!((c.truth.match_threshold - 0.8).abs() < 1e-12);
    }

    #[test]
    fn builders_override() {
        let c = RempConfig::default().with_mu(1).with_tau(0.8).with_budget(64);
        assert_eq!(c.mu, 1);
        assert!((c.tau - 0.8).abs() < 1e-12);
        assert_eq!(c.max_questions, Some(64));
        assert!(!RempConfig::default().without_classifier().classify_isolated);
    }
}
