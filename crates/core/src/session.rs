//! The resumable crowd session — the paper's human-machine loop (§III-B,
//! Fig. 2) with the control flow inverted.
//!
//! [`Remp::run`](crate::Remp::run) drives a *simulated* crowd through a
//! closure, but a real deployment posts questions to a crowd platform and
//! answers trickle back asynchronously. [`RempSession`] makes the caller
//! the owner of that loop:
//!
//! ```text
//! let mut session = remp.begin(&kb1, &kb2)?;         // stage 1
//! while let Some(batch) = session.next_batch()? {    // stages 2–3
//!     for q in &batch.questions {
//!         post_to_platform(q);                       // e.g. MTurk HITs
//!     }
//!     for (id, labels) in collect_answers() {
//!         session.submit(id, labels)?;               // stage 4 + Eq. 11
//!     }
//! }
//! let outcome = session.finish();                    // §VII-B classifier
//! ```
//!
//! Truth inference (Eq. 17) and relational propagation (Eq. 11) run
//! *incrementally* as each answer lands; answers within a batch may be
//! submitted in any order, and the final state is identical to the
//! synchronous loop (each question's posterior uses the prior snapshotted
//! at batch creation, exactly as the synchronous loop computed all
//! posteriors before propagating).
//!
//! Long campaigns can stop and resume: [`RempSession::checkpoint`]
//! captures the dynamic state (resolutions, priors, seeds, the open
//! batch) as a small JSON document, and [`RempSession::resume`] rebuilds
//! the session from the checkpoint plus the original knowledge bases —
//! stage 1 is deterministic, so the heavyweight prepared structures are
//! reconstructed rather than stored.

use std::fmt;
use std::time::Instant;

use remp_crowd::{infer_truth, Label, LabelSource, Verdict};
use remp_ergraph::PairId;
use remp_json::Json;
use remp_kb::{EntityId, Kb};
use remp_propagation::{LoopState, PropagationContext, RefreshStats};
use remp_selection::ComponentSelector;

use crate::jsonio::{get, get_bool, get_f64, get_str, get_u64, get_usize, malformed};
use crate::pipeline::{MatchSource, Resolution};
use crate::{classify_isolated, prepare, PreparedEr, RempConfig, RempError, RempOutcome};

/// Environment variable enabling the incremental-equivalence debug mode:
/// when set to `1`, every [`RempSession::next_batch`] asserts the
/// incremental stage-2 state is bit-identical to a from-scratch rebuild
/// ([`LoopState::check_reference`]) and panics on the first divergence.
pub const CHECK_INCREMENTAL_ENV: &str = "REMP_CHECK_INCREMENTAL";

/// Opaque identifier of a posted question, unique within a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuestionId(pub u64);

impl fmt::Display for QuestionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Error returned when a string is not a `q{n}` question id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseQuestionIdError {
    raw: String,
}

impl fmt::Display for ParseQuestionIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid question id {:?} (expected the form \"q0\", \"q17\", ...)", self.raw)
    }
}

impl std::error::Error for ParseQuestionIdError {}

/// Round-trips the [`Display`](fmt::Display) form `q{n}`, so wire
/// protocols can reuse the id format humans already see in logs and
/// error messages instead of inventing a second encoding.
impl std::str::FromStr for QuestionId {
    type Err = ParseQuestionIdError;

    fn from_str(s: &str) -> Result<QuestionId, ParseQuestionIdError> {
        let err = || ParseQuestionIdError { raw: s.to_owned() };
        let digits = s.strip_prefix('q').ok_or_else(err)?;
        // Reject forms Display never produces: empty, signs, leading
        // zeros ("q007" must not alias "q7" on the wire).
        if digits.is_empty() || (digits.len() > 1 && digits.starts_with('0')) {
            return Err(err());
        }
        if !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err());
        }
        digits.parse::<u64>().map(QuestionId).map_err(|_| err())
    }
}

/// Human-readable context a crowd UI shows alongside a question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuestionContext {
    /// Label of the left entity in its knowledge base.
    pub label1: String,
    /// Label of the right entity in its knowledge base.
    pub label2: String,
    /// Which human-machine loop posted the question (0-based).
    pub loop_index: usize,
}

/// One pairwise question to put before workers.
#[derive(Clone, Debug, PartialEq)]
pub struct Question {
    /// Handle to pass back to [`RempSession::submit`].
    pub id: QuestionId,
    /// The entity pair being asked about.
    pub pair: (EntityId, EntityId),
    /// Current match probability estimate (snapshotted at batch
    /// creation; also the prior of the Eq. 17 posterior).
    pub prior: f64,
    /// Display context.
    pub context: QuestionContext,
}

/// One loop's worth of questions (at most µ of them).
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// The loop index that selected this batch (0-based).
    pub loop_index: usize,
    /// The selected questions, in selection (benefit) order.
    pub questions: Vec<Question>,
}

/// What one submitted answer changed.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitOutcome {
    /// The Eq. 17 verdict for the question itself.
    pub verdict: Verdict,
    /// The Eq. 17 posterior match probability.
    pub posterior: f64,
    /// Entity pairs newly resolved through relational propagation
    /// (Eq. 11) because this answer confirmed a match.
    pub propagated: Vec<(EntityId, EntityId)>,
    /// `true` once every question of the open batch is answered — the
    /// session is ready for [`RempSession::next_batch`] again.
    pub batch_complete: bool,
}

/// Where one human-machine loop's stage-2/3 time went, and how much of
/// the graph it actually had to touch — the observability counterpart of
/// the incremental engine ([`RempSession::loop_stats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoopStat {
    /// The loop whose batch this refresh prepared (0-based; equals the
    /// batch's `loop_index` when one was produced).
    pub loop_index: usize,
    /// Stage-2 counters and timings from the incremental engine.
    pub refresh: RefreshStats,
    /// Wall-clock of question scoring + selection for this loop.
    pub selection_s: f64,
}

impl LoopStat {
    /// Total stage-2 + selection wall-clock of this loop.
    pub fn total_s(&self) -> f64 {
        self.refresh.stage_total_s() + self.selection_s
    }

    /// Encodes the stat for reports (`rempd` status, `bench_pipeline`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("loop".into(), Json::from(self.loop_index)),
            ("full_rebuild".into(), Json::from(self.refresh.full_rebuild)),
            ("new_seeds".into(), Json::from(self.refresh.new_seeds)),
            ("dirty_labels".into(), Json::from(self.refresh.dirty_labels)),
            ("changed_labels".into(), Json::from(self.refresh.changed_labels)),
            ("dirty_vertices".into(), Json::from(self.refresh.dirty_vertices)),
            ("changed_vertices".into(), Json::from(self.refresh.changed_vertices)),
            ("dirty_components".into(), Json::from(self.refresh.dirty_components)),
            ("retired_components".into(), Json::from(self.refresh.retired_components)),
            ("recomputed_sources".into(), Json::from(self.refresh.recomputed_sources)),
            ("consistency_s".into(), Json::from(self.refresh.consistency_s)),
            ("propagation_s".into(), Json::from(self.refresh.propagation_s)),
            ("inferred_s".into(), Json::from(self.refresh.inferred_s)),
            ("selection_s".into(), Json::from(self.selection_s)),
            ("total_s".into(), Json::from(self.total_s())),
        ])
    }
}

/// Bookkeeping for one question of the open batch.
#[derive(Clone, Debug)]
struct PendingQuestion {
    id: u64,
    pair: PairId,
    /// Prior at batch creation: the posterior's prior, regardless of
    /// what same-batch propagation did to the live prior since.
    prior: f64,
    /// Snapshot of this question's inferred set at batch creation.
    inferred: Vec<(PairId, f64)>,
    answered: bool,
}

/// A paused, resumable run of the Remp pipeline (stages 2–4).
///
/// Create with [`Remp::begin`](crate::Remp::begin) /
/// [`Remp::begin_prepared`](crate::Remp::begin_prepared), drive with
/// [`next_batch`](Self::next_batch) / [`submit`](Self::submit), close
/// with [`finish`](Self::finish). The session borrows the two knowledge
/// bases; everything else it owns.
#[derive(Clone, Debug)]
pub struct RempSession<'a> {
    kb1: &'a Kb,
    kb2: &'a Kb,
    config: RempConfig,
    prep: PreparedEr,
    resolution: Vec<Resolution>,
    /// The incremental stage-2 engine; also owns the seed set.
    state: LoopState,
    /// Per-component question-selection cache.
    selector: ComponentSelector,
    /// Matches confirmed in the open batch, merged into the seeds at
    /// finalization (instead of rescanning all resolutions).
    batch_matches: Vec<PairId>,
    /// `false` forces a from-scratch stage-2 rebuild every loop — the
    /// benchmark baseline and a debugging escape hatch.
    incremental: bool,
    /// Assert incremental ≡ from-scratch every loop (see
    /// [`CHECK_INCREMENTAL_ENV`]).
    check_incremental: bool,
    loop_stats: Vec<LoopStat>,
    questions_asked: usize,
    loops: usize,
    drained: bool,
    pending: Vec<PendingQuestion>,
    next_question_id: u64,
}

/// Builds the read-only context the loop engine works against. A macro
/// instead of a method so the borrow stays field-precise: the session
/// mutates `state` and `selector` while the context borrows `prep`.
macro_rules! propagation_ctx {
    ($session:expr) => {
        PropagationContext {
            kb1: $session.kb1,
            kb2: $session.kb2,
            candidates: &$session.prep.candidates,
            graph: &$session.prep.graph,
            components: &$session.prep.components,
        }
    };
}

impl<'a> RempSession<'a> {
    pub(crate) fn new(
        kb1: &'a Kb,
        kb2: &'a Kb,
        config: RempConfig,
        prep: PreparedEr,
    ) -> RempSession<'a> {
        let n = prep.candidates.len();
        RempSession::with_state(kb1, kb2, config, prep, vec![Resolution::Unresolved; n], None)
    }

    /// Shared constructor behind [`new`](Self::new) and
    /// [`resume`](Self::resume): builds the incremental engine over the
    /// given resolutions, seeding from `seeds` (the stage-1 initial
    /// matches when `None`).
    fn with_state(
        kb1: &'a Kb,
        kb2: &'a Kb,
        config: RempConfig,
        prep: PreparedEr,
        resolution: Vec<Resolution>,
        seeds: Option<Vec<PairId>>,
    ) -> RempSession<'a> {
        let eligible: Vec<bool> = resolution
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                r == Resolution::Unresolved && !prep.graph.is_isolated_vertex(PairId::from_index(i))
            })
            .collect();
        let seeds = seeds.unwrap_or_else(|| prep.initial.clone());
        let ctx = PropagationContext {
            kb1,
            kb2,
            candidates: &prep.candidates,
            graph: &prep.graph,
            components: &prep.components,
        };
        let state = LoopState::new(&ctx, config.tau, config.propagation, &seeds, eligible);
        let selector = ComponentSelector::new(prep.components.len(), config.mu);
        RempSession {
            kb1,
            kb2,
            config,
            prep,
            resolution,
            state,
            selector,
            batch_matches: Vec::new(),
            incremental: true,
            check_incremental: false,
            loop_stats: Vec::new(),
            questions_asked: 0,
            loops: 0,
            drained: false,
            pending: Vec::new(),
            next_question_id: 0,
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &RempConfig {
        &self.config
    }

    /// Questions asked so far (the paper's `#Q`).
    pub fn questions_asked(&self) -> usize {
        self.questions_asked
    }

    /// Completed human-machine loops so far (the paper's `#L`).
    pub fn loops(&self) -> usize {
        self.loops
    }

    /// Per-pair resolution state (parallel to the retained candidates).
    pub fn resolutions(&self) -> &[Resolution] {
        &self.resolution
    }

    /// `true` once no further batch can be produced: the loop converged,
    /// the budget ran out, or `max_loops` was hit.
    pub fn is_drained(&self) -> bool {
        self.drained
    }

    /// Per-loop stage-2/3 timings and dirty-region counters, one entry
    /// per [`next_batch`](Self::next_batch) call that ran propagation
    /// (including the terminating call). This is how `rempctl run` and
    /// `rempd` report where a campaign's compute time goes.
    pub fn loop_stats(&self) -> &[LoopStat] {
        &self.loop_stats
    }

    /// Switches between the incremental engine (default) and a
    /// from-scratch stage-2 rebuild every loop. The two produce
    /// bit-identical campaigns; the full mode exists as the benchmark
    /// baseline (`bench_pipeline`'s `loops` scenario) and a debugging
    /// escape hatch.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// Makes every loop assert incremental ≡ from-scratch
    /// ([`LoopState::check_reference`]), like running under
    /// [`CHECK_INCREMENTAL_ENV`]`=1`. Expensive: for tests and debugging.
    pub fn set_check_incremental(&mut self, check: bool) {
        self.check_incremental = check;
    }

    /// The still-unanswered questions of the open batch.
    pub fn open_questions(&self) -> Vec<QuestionId> {
        self.pending.iter().filter(|p| !p.answered).map(|p| QuestionId(p.id)).collect()
    }

    /// Total questions issued over the session's lifetime; ids `0..n`
    /// have all been handed out (and all but the open batch answered).
    /// External drivers use this to tell "never existed" from "already
    /// answered" without mutating the session.
    pub fn issued_questions(&self) -> u64 {
        self.next_question_id
    }

    /// Full [`Question`] payloads for the still-unanswered questions of
    /// the open batch, in batch order.
    ///
    /// This is what a crowd-serving frontend needs to re-post questions
    /// after [`resume`](Self::resume): the checkpoint stores only raw
    /// pair ids, and this accessor rebuilds the display context from the
    /// knowledge bases.
    pub fn open_question_details(&self) -> Vec<Question> {
        self.pending
            .iter()
            .filter(|p| !p.answered)
            .map(|p| {
                let pair = self.prep.candidates.pair(p.pair);
                Question {
                    id: QuestionId(p.id),
                    pair,
                    prior: p.prior,
                    context: QuestionContext {
                        label1: self.kb1.label(pair.0).to_owned(),
                        label2: self.kb2.label(pair.1).to_owned(),
                        loop_index: self.loops,
                    },
                }
            })
            .collect()
    }

    /// Runs stages 2–3 and selects the next batch of questions.
    ///
    /// Stage 2 is *incremental*: the [`LoopState`] engine re-estimates
    /// only the labels whose seed support changed, rebuilds probabilistic
    /// edges only around changed consistencies and priors, and re-runs
    /// truncated Dijkstra only inside dirty components — with results
    /// bit-identical to a from-scratch rebuild
    /// ([`LoopState::rebuild_reference`]; set [`CHECK_INCREMENTAL_ENV`]
    /// to `1` to assert it every loop). Question selection is likewise
    /// cached per component and rescored only where a batch landed.
    ///
    /// Returns `Ok(None)` when the loop has terminated (the paper's
    /// stopping rule: no unresolved pair is propagation-reachable any
    /// more, the question budget is exhausted, or `max_loops` is hit) —
    /// call [`finish`](Self::finish) then. Errors with
    /// [`RempError::BatchOutstanding`] while the previous batch still
    /// has unanswered questions.
    pub fn next_batch(&mut self) -> Result<Option<Batch>, RempError> {
        let unanswered = self.pending.iter().filter(|p| !p.answered).count();
        if unanswered > 0 {
            return Err(RempError::BatchOutstanding { unanswered });
        }
        debug_assert!(self.pending.is_empty(), "answered batches are finalized eagerly");
        if self.drained {
            return Ok(None);
        }
        if self.loops >= self.config.max_loops {
            self.drained = true;
            return Ok(None);
        }

        // Stage 2: relational match propagation over the changed region,
        // scheduled across the configured worker pool (results are
        // identical in every parallelism mode).
        let par = self.config.parallelism;
        let ctx = propagation_ctx!(self);
        let outcome = if self.incremental {
            self.state.refresh(&ctx, &par)
        } else {
            self.state.refresh_full(&ctx, &par)
        };
        if self.check_incremental
            || std::env::var(CHECK_INCREMENTAL_ENV).is_ok_and(|v| v.trim() == "1")
        {
            if let Err(divergence) = self.state.check_reference(&ctx, &par) {
                panic!(
                    "incremental propagation diverged from the from-scratch reference \
                     at loop {}: {divergence}",
                    self.loops
                );
            }
        }

        // Stage 3: multiple questions selection, rescored only in the
        // components the last batch touched. Isolated vertices are never
        // eligible — the classifier handles them (§VII-B).
        let selection_started = Instant::now();
        // One Instant feeds both the `loop_stats` JSON and the
        // `remp_stage_seconds{stage="selection"}` histogram — the two
        // surfaces can never drift apart.
        let record = |started: Instant| {
            let selection_s = started.elapsed().as_secs_f64();
            remp_obs::record_stage("selection", started, selection_s);
            LoopStat { loop_index: self.loops, refresh: outcome.stats, selection_s }
        };
        // An exhausted question budget drains the session no matter what
        // is still reachable — check it before paying for a scoring pass.
        let remaining = self
            .config
            .max_questions
            .map(|b| b.saturating_sub(self.questions_asked))
            .unwrap_or(usize::MAX);
        let mu = self.config.mu.min(remaining);
        if mu == 0 {
            let stat = record(selection_started);
            self.loop_stats.push(stat);
            self.drained = true;
            return Ok(None);
        }
        if outcome.stats.full_rebuild {
            self.selector.invalidate_all();
        }
        for &c in &outcome.selection_dirty {
            self.selector.invalidate(c);
        }
        self.selector.refresh(
            self.config.strategy,
            &self.prep.components,
            self.state.inferred(),
            self.prep.candidates.priors(),
            self.state.eligible(),
            self.state.retired(),
            &par,
        );
        // The paper stops "when there is no unresolved entity pair that
        // can be inferred by relational match propagation": as long as
        // some unresolved pair is reachable from another, the loop
        // continues; once nothing is reachable any more, remaining pairs
        // go to the classifier instead of the crowd.
        if !self.selector.any_reachable() {
            let stat = record(selection_started);
            self.loop_stats.push(stat);
            self.drained = true;
            return Ok(None);
        }
        let selected = self.selector.select(mu);
        let stat = record(selection_started);
        self.loop_stats.push(stat);
        if selected.is_empty() {
            // No unresolved pair can be inferred any more.
            self.drained = true;
            return Ok(None);
        }

        let loop_index = self.loops;
        let candidates = &self.prep.candidates;
        let inferred = self.state.inferred();
        let questions = selected
            .into_iter()
            .map(|q| {
                let id = self.next_question_id;
                self.next_question_id += 1;
                let pair = candidates.pair(q);
                let prior = candidates.prior(q);
                self.pending.push(PendingQuestion {
                    id,
                    pair: q,
                    prior,
                    inferred: inferred.inferred(q).to_vec(),
                    answered: false,
                });
                Question {
                    id: QuestionId(id),
                    pair,
                    prior,
                    context: QuestionContext {
                        label1: self.kb1.label(pair.0).to_owned(),
                        label2: self.kb2.label(pair.1).to_owned(),
                        loop_index,
                    },
                }
            })
            .collect::<Vec<Question>>();
        if remp_obs::enabled() {
            remp_obs::global()
                .counter(
                    remp_obs::names::QUESTIONS_ASKED_TOTAL,
                    "Questions issued to the crowd.",
                    &[],
                )
                .add(questions.len() as u64);
            remp_obs::event(remp_obs::Level::Info, "session", None, || {
                (
                    "batch selected".to_owned(),
                    vec![
                        ("loop", Json::from(loop_index)),
                        ("questions", Json::from(questions.len())),
                    ],
                )
            });
        }
        Ok(Some(Batch { loop_index, questions }))
    }

    /// Ingests the crowd's labels for one question of the open batch.
    ///
    /// Runs Eq. 17 truth inference against the prior snapshotted at batch
    /// creation, updates the pair's resolution, and — on a match verdict —
    /// immediately propagates to the question's inferred set (Eq. 11).
    /// Answers may arrive in any order; once the last one lands the batch
    /// is folded into the seeds and [`next_batch`](Self::next_batch)
    /// becomes available again.
    pub fn submit(
        &mut self,
        id: QuestionId,
        labels: Vec<Label>,
    ) -> Result<SubmitOutcome, RempError> {
        let Some(idx) = self.pending.iter().position(|p| p.id == id.0) else {
            // Ids are issued densely, so anything below the counter was a
            // real question whose batch has been finalized — a duplicate
            // submit, not an unknown id. External drivers (e.g. an HTTP
            // server mapping this to 409 vs 404) rely on the distinction.
            return Err(if id.0 < self.next_question_id {
                RempError::AlreadyAnswered(id)
            } else {
                RempError::UnknownQuestion(id)
            });
        };
        if self.pending[idx].answered {
            return Err(RempError::AlreadyAnswered(id));
        }
        if labels.is_empty() {
            return Err(RempError::EmptyLabels(id));
        }
        // Truth inference + same-batch propagation, under the "submit"
        // stage label of the shared stage histogram.
        let _span = remp_obs::Span::enter("submit");
        if remp_obs::enabled() {
            remp_obs::global()
                .counter(
                    remp_obs::names::ANSWERS_SUBMITTED_TOTAL,
                    "Crowd answers ingested by sessions.",
                    &[],
                )
                .inc();
        }

        let q = self.pending[idx].pair;
        let snapshot_prior = self.pending[idx].prior;
        self.questions_asked += 1;
        let (verdict, posterior) = infer_truth(snapshot_prior, &labels, &self.config.truth);
        let mut propagated = Vec::new();
        match verdict {
            Verdict::Match => {
                // The crowd verdict overrides a same-batch propagation
                // mark, as in the synchronous loop where all verdicts
                // land before any propagation.
                self.resolution[q.index()] = Resolution::Match(MatchSource::Crowd);
                self.prep.candidates.set_prior(q, 1.0);
                self.state.note_prior_changed(q);
                self.state.note_resolved(q);
                self.batch_matches.push(q);
                for i in 0..self.pending[idx].inferred.len() {
                    let p = self.pending[idx].inferred[i].0;
                    if self.resolution[p.index()] == Resolution::Unresolved {
                        self.resolution[p.index()] = Resolution::Match(MatchSource::Inferred);
                        self.prep.candidates.set_prior(p, 1.0);
                        self.state.note_prior_changed(p);
                        self.state.note_resolved(p);
                        self.batch_matches.push(p);
                        propagated.push(self.prep.candidates.pair(p));
                    }
                }
            }
            Verdict::NonMatch => {
                self.resolution[q.index()] = Resolution::NonMatch;
                self.prep.candidates.set_prior(q, 0.0);
                self.state.note_prior_changed(q);
                self.state.note_resolved(q);
            }
            Verdict::Inconsistent => {
                // Hard question: lower its benefit via the prior — unless
                // same-batch propagation already resolved it (then the
                // synchronous loop would also have kept that resolution).
                if self.resolution[q.index()] == Resolution::Unresolved {
                    self.prep.candidates.set_prior(q, posterior);
                    self.state.note_prior_changed(q);
                }
            }
        }
        self.pending[idx].answered = true;

        let batch_complete = self.pending.iter().all(|p| p.answered);
        if batch_complete {
            self.finalize_batch();
        }
        Ok(SubmitOutcome { verdict, posterior, propagated, batch_complete })
    }

    /// Folds a fully answered batch into the loop state: the matches this
    /// batch confirmed (tracked as they landed — no rescan of all n
    /// pairs) are merged into the already-sorted seed set, and the loop
    /// counter advances.
    fn finalize_batch(&mut self) {
        let _span = remp_obs::Span::enter("finalize");
        let mut fresh = std::mem::take(&mut self.batch_matches);
        // A same-batch crowd NonMatch overrides an earlier propagation
        // mark (as in the synchronous loop); only pairs still resolved
        // as matches may seed future propagation.
        fresh.retain(|&p| matches!(self.resolution[p.index()], Resolution::Match(_)));
        self.state.apply_seeds(&fresh);
        self.loops += 1;
        self.pending.clear();
    }

    /// Drains the session against a [`LabelSource`]: posts every batch,
    /// answers each question from `crowd` (whose workers see the hidden
    /// `truth`), and submits the labels — the adapter that keeps the
    /// simulated-crowd path [`Remp::run`](crate::Remp::run) alive on top
    /// of the session API.
    pub fn drive(
        &mut self,
        truth: &dyn Fn(EntityId, EntityId) -> bool,
        crowd: &mut dyn LabelSource,
    ) -> Result<(), RempError> {
        while let Some(batch) = self.next_batch()? {
            for q in &batch.questions {
                let labels = crowd.label(truth(q.pair.0, q.pair.1));
                self.submit(q.id, labels)?;
            }
        }
        Ok(())
    }

    /// Closes the session: classifies the remaining isolated pairs
    /// (§VII-B, if enabled) and returns the final [`RempOutcome`].
    ///
    /// May be called at any point — also before the loop converges, in
    /// which case still-open questions simply stay unresolved.
    pub fn finish(mut self) -> RempOutcome {
        if self.config.classify_isolated {
            let predicted = classify_isolated(
                self.kb1,
                self.kb2,
                &self.prep.candidates,
                &self.prep.graph,
                &self.prep.sim_vectors,
                &self.prep.alignment,
                &self.resolution,
                &self.config,
            );
            for p in predicted {
                if self.resolution[p.index()] == Resolution::Unresolved {
                    self.resolution[p.index()] = Resolution::Match(MatchSource::Classifier);
                }
            }
        }

        let n = self.prep.candidates.len();
        let matches: Vec<(EntityId, EntityId)> = (0..n)
            .filter(|&i| matches!(self.resolution[i], Resolution::Match(_)))
            .map(|i| self.prep.candidates.pair(PairId::from_index(i)))
            .collect();

        RempOutcome {
            matches,
            resolutions: self.resolution,
            questions_asked: self.questions_asked,
            loops: self.loops,
            candidate_count: self.prep.candidate_count,
            retained_count: n,
            edge_count: self.prep.graph.num_edges(),
        }
    }

    /// Serializes the session's dynamic state for later
    /// [`resume`](Self::resume).
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            config: self.config.clone(),
            kb1_fingerprint: KbFingerprint::of(self.kb1),
            kb2_fingerprint: KbFingerprint::of(self.kb2),
            resolutions: self.resolution.clone(),
            priors: self.prep.candidates.priors().to_vec(),
            seeds: self.state.seeds().iter().map(|p| p.0).collect(),
            questions_asked: self.questions_asked,
            loops: self.loops,
            drained: self.drained,
            next_question_id: self.next_question_id,
            pending: self
                .pending
                .iter()
                .map(|p| PendingCheckpoint {
                    id: p.id,
                    pair: p.pair.0,
                    prior: p.prior,
                    answered: p.answered,
                    inferred: p.inferred.iter().map(|&(t, pr)| (t.0, pr)).collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a session from a checkpoint and the *original* knowledge
    /// bases. Stage 1 is re-run deterministically from the checkpointed
    /// configuration; the checkpoint carries only the dynamic state.
    pub fn resume(
        kb1: &'a Kb,
        kb2: &'a Kb,
        checkpoint: SessionCheckpoint,
    ) -> Result<RempSession<'a>, RempError> {
        checkpoint.config.validate()?;
        KbFingerprint::of(kb1).check("kb1", &checkpoint.kb1_fingerprint)?;
        KbFingerprint::of(kb2).check("kb2", &checkpoint.kb2_fingerprint)?;
        let mut prep = prepare(kb1, kb2, &checkpoint.config);
        let n = prep.candidates.len();
        if n != checkpoint.resolutions.len() || n != checkpoint.priors.len() {
            return Err(RempError::CheckpointMismatch(format!(
                "stage 1 produced {n} retained pairs but the checkpoint has {} resolutions / {} priors",
                checkpoint.resolutions.len(),
                checkpoint.priors.len()
            )));
        }
        let valid_pair = |raw: u32| (raw as usize) < n;
        if !checkpoint.seeds.iter().copied().all(valid_pair)
            || !checkpoint
                .pending
                .iter()
                .all(|p| valid_pair(p.pair) && p.inferred.iter().all(|&(t, _)| valid_pair(t)))
        {
            return Err(RempError::CheckpointMismatch(
                "checkpoint references pair ids outside the retained set".into(),
            ));
        }
        let valid_prior = |p: f64| (0.0..=1.0).contains(&p);
        if !checkpoint.priors.iter().copied().all(valid_prior)
            || !checkpoint.pending.iter().all(|p| valid_prior(p.prior))
        {
            return Err(RempError::CheckpointMismatch(
                "checkpoint contains priors outside [0, 1]".into(),
            ));
        }
        if !checkpoint.pending.is_empty() && checkpoint.pending.iter().all(|p| p.answered) {
            // A live session finalizes a batch the moment its last answer
            // lands, so this state is only reachable through tampering.
            return Err(RempError::MalformedCheckpoint(
                "pending batch is fully answered but was never finalized".into(),
            ));
        }
        for (i, &prior) in checkpoint.priors.iter().enumerate() {
            prep.candidates.set_prior(PairId::from_index(i), prior);
        }
        let mut session = RempSession::with_state(
            kb1,
            kb2,
            checkpoint.config,
            prep,
            checkpoint.resolutions,
            Some(checkpoint.seeds.into_iter().map(PairId).collect()),
        );
        session.questions_asked = checkpoint.questions_asked;
        session.loops = checkpoint.loops;
        session.drained = checkpoint.drained;
        session.pending = checkpoint
            .pending
            .into_iter()
            .map(|p| PendingQuestion {
                id: p.id,
                pair: PairId(p.pair),
                prior: p.prior,
                inferred: p.inferred.into_iter().map(|(t, pr)| (PairId(t), pr)).collect(),
                answered: p.answered,
            })
            .collect();
        session.next_question_id = checkpoint.next_question_id;
        // Matches confirmed by already-answered questions of the open
        // batch are not folded into the seeds until the batch finalizes;
        // reconstruct them so finalization after resume merges exactly
        // what an uninterrupted session would have (pairs already seeded
        // are filtered out by the merge).
        session.batch_matches = session
            .resolution
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Resolution::Match(_)))
            .map(|(i, _)| PairId::from_index(i))
            .collect();
        Ok(session)
    }
}

/// Shape summary guarding against resuming with the wrong KBs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KbFingerprint {
    /// KB name.
    pub name: String,
    /// Entity count.
    pub entities: usize,
    /// Attribute-triple count.
    pub attr_triples: usize,
    /// Relationship-triple count.
    pub rel_triples: usize,
}

impl KbFingerprint {
    fn of(kb: &Kb) -> KbFingerprint {
        KbFingerprint {
            name: kb.name().to_owned(),
            entities: kb.num_entities(),
            attr_triples: kb.num_attr_triples(),
            rel_triples: kb.num_rel_triples(),
        }
    }

    fn check(&self, side: &str, expected: &KbFingerprint) -> Result<(), RempError> {
        if self != expected {
            return Err(RempError::CheckpointMismatch(format!(
                "{side} does not match the checkpointed knowledge base: got {self:?}, checkpoint has {expected:?}"
            )));
        }
        Ok(())
    }
}

/// One pending question as stored in a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingCheckpoint {
    /// Question id.
    pub id: u64,
    /// Raw retained pair id.
    pub pair: u32,
    /// Prior snapshot at batch creation.
    pub prior: f64,
    /// Whether the answer already landed.
    pub answered: bool,
    /// Snapshot of the inferred set: `(raw pair id, probability)`.
    pub inferred: Vec<(u32, f64)>,
}

/// A serialized session: everything [`RempSession::resume`] needs beyond
/// the knowledge bases themselves.
///
/// Serialization is a stable, versioned JSON document produced by
/// [`to_json_string`](Self::to_json_string) — the environment this
/// reproduction builds in has no crates.io access, so the format is
/// implemented on the dependency-free `remp-json` crate rather than
/// serde, with the same shape a serde derive would emit.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionCheckpoint {
    /// Full pipeline configuration (stage 1 is re-run from it).
    pub config: RempConfig,
    /// Shape of the left knowledge base.
    pub kb1_fingerprint: KbFingerprint,
    /// Shape of the right knowledge base.
    pub kb2_fingerprint: KbFingerprint,
    /// Per-retained-pair resolution state.
    pub resolutions: Vec<Resolution>,
    /// Per-retained-pair live match probability.
    pub priors: Vec<f64>,
    /// Current propagation seeds (raw pair ids).
    pub seeds: Vec<u32>,
    /// Questions asked so far.
    pub questions_asked: usize,
    /// Completed loops so far.
    pub loops: usize,
    /// Whether the loop already terminated.
    pub drained: bool,
    /// Next fresh question id.
    pub next_question_id: u64,
    /// The open batch, if any.
    pub pending: Vec<PendingCheckpoint>,
}

/// Checkpoint format version written by this build.
pub const CHECKPOINT_VERSION: u64 = 1;

fn fingerprint_json(fp: &KbFingerprint) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::from(fp.name.as_str())),
        ("entities".into(), Json::from(fp.entities)),
        ("attr_triples".into(), Json::from(fp.attr_triples)),
        ("rel_triples".into(), Json::from(fp.rel_triples)),
    ])
}

fn fingerprint_from_json(doc: &Json) -> Result<KbFingerprint, RempError> {
    Ok(KbFingerprint {
        name: get_str(doc, "name")?.to_owned(),
        entities: get_usize(doc, "entities")?,
        attr_triples: get_usize(doc, "attr_triples")?,
        rel_triples: get_usize(doc, "rel_triples")?,
    })
}

impl SessionCheckpoint {
    /// Encodes the checkpoint as a JSON value.
    pub fn to_json(&self) -> Json {
        let resolutions: String = self.resolutions.iter().map(|r| r.code()).collect();
        Json::Obj(vec![
            ("version".into(), Json::UInt(CHECKPOINT_VERSION)),
            ("config".into(), self.config.to_json()),
            ("kb1".into(), fingerprint_json(&self.kb1_fingerprint)),
            ("kb2".into(), fingerprint_json(&self.kb2_fingerprint)),
            ("resolutions".into(), Json::Str(resolutions)),
            ("priors".into(), self.priors.iter().copied().collect()),
            ("seeds".into(), self.seeds.iter().copied().collect()),
            ("questions_asked".into(), Json::from(self.questions_asked)),
            ("loops".into(), Json::from(self.loops)),
            ("drained".into(), Json::from(self.drained)),
            ("next_question_id".into(), Json::from(self.next_question_id)),
            (
                "pending".into(),
                Json::Arr(
                    self.pending
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("id".into(), Json::from(p.id)),
                                ("pair".into(), Json::from(p.pair)),
                                ("prior".into(), Json::from(p.prior)),
                                ("answered".into(), Json::from(p.answered)),
                                (
                                    "inferred".into(),
                                    Json::Arr(
                                        p.inferred
                                            .iter()
                                            .map(|&(t, pr)| {
                                                Json::Arr(vec![Json::from(t), Json::from(pr)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Encodes the checkpoint as a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Encodes the checkpoint as indented JSON — the form to use for
    /// files an operator may need to inspect; decodes identically to
    /// [`to_json_string`](Self::to_json_string).
    pub fn to_json_string_pretty(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Decodes a checkpoint from a JSON value.
    pub fn from_json(doc: &Json) -> Result<SessionCheckpoint, RempError> {
        let version = get_u64(doc, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(malformed(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            )));
        }
        let resolutions = get_str(doc, "resolutions")?
            .chars()
            .map(|c| {
                Resolution::from_code(c)
                    .ok_or_else(|| malformed(format!("bad resolution code '{c}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let priors = get(doc, "priors")?
            .as_array()
            .ok_or_else(|| malformed("field 'priors' is not an array"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| malformed("non-numeric prior")))
            .collect::<Result<Vec<_>, _>>()?;
        let seeds = get(doc, "seeds")?
            .as_array()
            .ok_or_else(|| malformed("field 'seeds' is not an array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| malformed("bad seed id"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pending = get(doc, "pending")?
            .as_array()
            .ok_or_else(|| malformed("field 'pending' is not an array"))?
            .iter()
            .map(|p| {
                let inferred = get(p, "inferred")?
                    .as_array()
                    .ok_or_else(|| malformed("field 'inferred' is not an array"))?
                    .iter()
                    .map(|entry| {
                        let parts =
                            entry.as_array().ok_or_else(|| malformed("bad inferred entry"))?;
                        match parts {
                            [t, pr] => Ok((
                                t.as_u64()
                                    .and_then(|n| u32::try_from(n).ok())
                                    .ok_or_else(|| malformed("bad inferred target"))?,
                                pr.as_f64().ok_or_else(|| malformed("bad inferred probability"))?,
                            )),
                            _ => Err(malformed("inferred entry is not a pair")),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(PendingCheckpoint {
                    id: get_u64(p, "id")?,
                    pair: u32::try_from(get_u64(p, "pair")?)
                        .map_err(|_| malformed("bad pending pair id"))?,
                    prior: get_f64(p, "prior")?,
                    answered: get_bool(p, "answered")?,
                    inferred,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SessionCheckpoint {
            config: RempConfig::from_json(get(doc, "config")?)?,
            kb1_fingerprint: fingerprint_from_json(get(doc, "kb1")?)?,
            kb2_fingerprint: fingerprint_from_json(get(doc, "kb2")?)?,
            resolutions,
            priors,
            seeds,
            questions_asked: get_usize(doc, "questions_asked")?,
            loops: get_usize(doc, "loops")?,
            drained: get_bool(doc, "drained")?,
            next_question_id: get_u64(doc, "next_question_id")?,
            pending,
        })
    }

    /// Decodes a checkpoint from a JSON string.
    pub fn from_json_str(text: &str) -> Result<SessionCheckpoint, RempError> {
        let doc = Json::parse(text).map_err(|e| malformed(e.to_string()))?;
        SessionCheckpoint::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Remp;
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    fn oracle_labels(is_match: bool) -> Vec<Label> {
        vec![Label::new(0.999, is_match)]
    }

    #[test]
    fn session_walks_the_loop_by_hand() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();

        let mut batches = 0usize;
        let mut questions = 0usize;
        while let Some(batch) = session.next_batch().unwrap() {
            assert_eq!(batch.loop_index, batches);
            assert!(!batch.questions.is_empty());
            assert!(batch.questions.len() <= session.config().mu);
            batches += 1;
            for q in &batch.questions {
                assert_eq!(q.context.label1, d.kb1.label(q.pair.0));
                assert_eq!(q.context.loop_index, batch.loop_index);
                assert!((0.0..=1.0).contains(&q.prior));
                questions += 1;
                let outcome =
                    session.submit(q.id, oracle_labels(d.is_match(q.pair.0, q.pair.1))).unwrap();
                assert!((0.0..=1.0).contains(&outcome.posterior));
            }
        }
        assert!(session.is_drained());
        assert_eq!(session.questions_asked(), questions);
        assert_eq!(session.loops(), batches);
        let outcome = session.finish();
        assert_eq!(outcome.questions_asked, questions);
        assert!(!outcome.matches.is_empty());
    }

    #[test]
    fn submit_rejects_bad_input() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let batch = session.next_batch().unwrap().expect("IIMB produces at least one batch");
        let q = batch.questions[0].id;

        assert_eq!(
            session.submit(QuestionId(u64::MAX), oracle_labels(true)),
            Err(RempError::UnknownQuestion(QuestionId(u64::MAX)))
        );
        assert_eq!(session.submit(q, Vec::new()), Err(RempError::EmptyLabels(q)));
        session.submit(q, oracle_labels(true)).unwrap();
        assert_eq!(session.submit(q, oracle_labels(true)), Err(RempError::AlreadyAnswered(q)));
    }

    #[test]
    fn question_id_round_trips_display_form() {
        for id in [QuestionId(0), QuestionId(7), QuestionId(u64::MAX)] {
            let text = id.to_string();
            assert_eq!(text.parse::<QuestionId>(), Ok(id), "{text}");
        }
        for bad in ["", "q", "7", "q-1", "q07", "q1x", "x1", "q18446744073709551616"] {
            assert!(bad.parse::<QuestionId>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn resubmitting_a_finalized_question_is_already_answered() {
        // Regression: a duplicate submit for a question whose batch was
        // already finalized used to surface as UnknownQuestion, which an
        // HTTP frontend would wrongly map to 404 instead of 409.
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let first = session.next_batch().unwrap().unwrap();
        for q in &first.questions {
            session.submit(q.id, oracle_labels(d.is_match(q.pair.0, q.pair.1))).unwrap();
        }
        // The batch is finalized; its ids are gone from the pending set.
        let old = first.questions[0].id;
        assert_eq!(
            session.submit(old, oracle_labels(true)),
            Err(RempError::AlreadyAnswered(old)),
            "finalized questions are duplicates, not unknowns"
        );
        // Ids never handed out stay unknown.
        let fresh = QuestionId(session.issued_questions());
        assert_eq!(
            session.submit(fresh, oracle_labels(true)),
            Err(RempError::UnknownQuestion(fresh))
        );
    }

    #[test]
    fn open_question_details_mirror_the_batch() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let batch = session.next_batch().unwrap().unwrap();
        assert_eq!(session.open_question_details(), batch.questions);
        session.submit(batch.questions[0].id, oracle_labels(true)).unwrap();
        assert_eq!(session.open_question_details(), batch.questions[1..].to_vec());
        assert_eq!(session.issued_questions(), batch.questions.len() as u64);
    }

    #[test]
    fn next_batch_requires_all_answers() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let batch = session.next_batch().unwrap().unwrap();
        assert!(batch.questions.len() > 1, "default µ should select several questions");
        session.submit(batch.questions[0].id, oracle_labels(true)).unwrap();
        let err = session.next_batch().unwrap_err();
        assert_eq!(err, RempError::BatchOutstanding { unanswered: batch.questions.len() - 1 });
        assert_eq!(session.open_questions().len(), batch.questions.len() - 1);
    }

    #[test]
    fn same_batch_non_match_override_never_seeds() {
        // Regression: a pair propagated to Match(Inferred) early in a
        // batch whose own later answer comes back NonMatch is overridden
        // (the crowd wins) — and must NOT be folded into the propagation
        // seeds at finalization, exactly as the old rescan-by-resolution
        // finalize behaved.
        use std::collections::HashSet;
        let d = generate(&iimb(0.25));
        // MaxPr packs same-component questions into one batch (Benefit
        // deliberately scatters), making the override scenario routine.
        let config =
            RempConfig::default().with_strategy(remp_selection::BatchStrategy::MaxPr).with_mu(20);
        let remp = Remp::new(config);
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut overridden = 0usize;
        while let Some(batch) = session.next_batch().unwrap() {
            let mut propagated: HashSet<(remp_kb::EntityId, remp_kb::EntityId)> = HashSet::new();
            for (i, q) in batch.questions.iter().enumerate() {
                // First question of each batch: match; the rest: non-match.
                let says_match = i == 0;
                if !says_match && propagated.contains(&q.pair) {
                    overridden += 1;
                }
                let outcome = session.submit(q.id, oracle_labels(says_match)).unwrap();
                propagated.extend(outcome.propagated.iter().copied());
            }
        }
        assert!(overridden > 0, "scenario must trigger at least one same-batch override");

        let checkpoint = session.checkpoint();
        let initial: HashSet<u32> =
            prepare(&d.kb1, &d.kb2, session.config()).initial.iter().map(|p| p.0).collect();
        for &s in &checkpoint.seeds {
            let still_match = matches!(checkpoint.resolutions[s as usize], Resolution::Match(_));
            assert!(
                still_match || initial.contains(&s),
                "pair p{s} is a seed but is neither an initial match nor resolved as a match"
            );
        }
    }

    #[test]
    fn out_of_order_submission_matches_in_order() {
        let d = generate(&iimb(0.25));
        let remp = Remp::default();
        let drive = |reverse: bool| {
            let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
            while let Some(batch) = session.next_batch().unwrap() {
                let mut questions = batch.questions;
                if reverse {
                    questions.reverse();
                }
                for q in &questions {
                    session.submit(q.id, oracle_labels(d.is_match(q.pair.0, q.pair.1))).unwrap();
                }
            }
            session.finish()
        };
        let forward = drive(false);
        let backward = drive(true);
        assert_eq!(forward, backward);
    }

    #[test]
    fn early_finish_is_allowed() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let batch = session.next_batch().unwrap().unwrap();
        // Answer only the first question, then walk away mid-batch.
        session.submit(batch.questions[0].id, oracle_labels(true)).unwrap();
        let outcome = session.finish();
        assert_eq!(outcome.questions_asked, 1);
        assert_eq!(outcome.loops, 0, "incomplete batches do not count as loops");
    }

    #[test]
    fn drive_equals_run() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut crowd = OracleCrowd::new();
        session.drive(&|a, b| d.is_match(a, b), &mut crowd).unwrap();
        let via_session = session.finish();
        let mut crowd = OracleCrowd::new();
        let via_run = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
        assert_eq!(via_session, via_run);
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        // Leave a half-answered batch open so the pending state is
        // exercised too.
        let batch = session.next_batch().unwrap().unwrap();
        session.submit(batch.questions[0].id, oracle_labels(true)).unwrap();

        let checkpoint = session.checkpoint();
        let text = checkpoint.to_json_string();
        let decoded = SessionCheckpoint::from_json_str(&text).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn resume_rejects_wrong_kbs() {
        let d = generate(&iimb(0.2));
        let other = generate(&iimb(0.3));
        let remp = Remp::default();
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let checkpoint = session.checkpoint();
        let err = RempSession::resume(&other.kb1, &other.kb2, checkpoint).unwrap_err();
        assert!(matches!(err, RempError::CheckpointMismatch(_)), "{err}");
    }

    #[test]
    fn resume_rejects_out_of_range_priors() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let mut checkpoint = session.checkpoint();
        checkpoint.priors[0] = 5.0;
        let err = RempSession::resume(&d.kb1, &d.kb2, checkpoint).unwrap_err();
        assert!(matches!(err, RempError::CheckpointMismatch(_)), "{err}");
    }

    #[test]
    fn resume_rejects_unfinalized_answered_batch() {
        let d = generate(&iimb(0.2));
        let remp = Remp::default();
        let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
        let batch = session.next_batch().unwrap().unwrap();
        session.submit(batch.questions[0].id, oracle_labels(true)).unwrap();
        let mut checkpoint = session.checkpoint();
        // Forge the state a live session can never write: every pending
        // question answered but the batch not folded into the seeds.
        for p in &mut checkpoint.pending {
            p.answered = true;
        }
        let err = RempSession::resume(&d.kb1, &d.kb2, checkpoint).unwrap_err();
        assert!(matches!(err, RempError::MalformedCheckpoint(_)), "{err}");
    }

    #[test]
    fn malformed_checkpoints_are_reported() {
        assert!(matches!(
            SessionCheckpoint::from_json_str("not json"),
            Err(RempError::MalformedCheckpoint(_))
        ));
        assert!(matches!(
            SessionCheckpoint::from_json_str("{\"version\": 99}"),
            Err(RempError::MalformedCheckpoint(_))
        ));
    }
}
