//! Evaluation metrics (paper §III-A and §VIII-B): precision, recall, F1,
//! pair completeness (PC) and reduction ratio (RR).

use std::collections::HashSet;

use remp_kb::EntityId;

/// Precision / recall / F1 of a predicted match set against a gold
/// standard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of predictions that are correct.
    pub precision: f64,
    /// Fraction of gold matches recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of predictions.
    pub predicted: usize,
    /// Gold-standard size.
    pub expected: usize,
    /// Correct predictions.
    pub correct: usize,
}

impl PrecisionRecall {
    /// JSON form, as reported by `rempctl run` and the `remp-sim`
    /// robustness reports.
    pub fn to_json(&self) -> remp_json::Json {
        use remp_json::Json;
        Json::Obj(vec![
            ("precision".into(), Json::from(self.precision)),
            ("recall".into(), Json::from(self.recall)),
            ("f1".into(), Json::from(self.f1)),
            ("predicted".into(), Json::from(self.predicted)),
            ("expected".into(), Json::from(self.expected)),
            ("correct".into(), Json::from(self.correct)),
        ])
    }
}

/// Evaluates predicted entity matches against the gold standard.
/// Duplicate predictions are counted once.
pub fn evaluate_matches(
    predicted: impl IntoIterator<Item = (EntityId, EntityId)>,
    gold: &HashSet<(EntityId, EntityId)>,
) -> PrecisionRecall {
    let predicted: HashSet<(EntityId, EntityId)> = predicted.into_iter().collect();
    let correct = predicted.iter().filter(|p| gold.contains(p)).count();
    let precision =
        if predicted.is_empty() { 0.0 } else { correct as f64 / predicted.len() as f64 };
    let recall = if gold.is_empty() { 0.0 } else { correct as f64 / gold.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
        predicted: predicted.len(),
        expected: gold.len(),
        correct,
    }
}

/// Pair completeness: the fraction of gold matches preserved in a
/// candidate/retained pair set (Table V).
pub fn pair_completeness(
    pairs: impl IntoIterator<Item = (EntityId, EntityId)>,
    gold: &HashSet<(EntityId, EntityId)>,
) -> f64 {
    if gold.is_empty() {
        return 0.0;
    }
    let pairs: HashSet<(EntityId, EntityId)> = pairs.into_iter().collect();
    gold.iter().filter(|g| pairs.contains(g)).count() as f64 / gold.len() as f64
}

/// Reduction ratio: the fraction of pairs removed by pruning (Table V).
pub fn reduction_ratio(before: usize, after: usize) -> f64 {
    if before == 0 {
        return 0.0;
    }
    1.0 - after as f64 / before as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold(pairs: &[(u32, u32)]) -> HashSet<(EntityId, EntityId)> {
        pairs.iter().map(|&(a, b)| (EntityId(a), EntityId(b))).collect()
    }

    fn pred(pairs: &[(u32, u32)]) -> Vec<(EntityId, EntityId)> {
        pairs.iter().map(|&(a, b)| (EntityId(a), EntityId(b))).collect()
    }

    #[test]
    fn perfect_prediction() {
        let g = gold(&[(0, 0), (1, 1)]);
        let m = evaluate_matches(pred(&[(0, 0), (1, 1)]), &g);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.correct, 2);
    }

    #[test]
    fn partial_prediction() {
        let g = gold(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let m = evaluate_matches(pred(&[(0, 0), (1, 1), (9, 9)]), &g);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        let expected_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((m.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let g = gold(&[(0, 0)]);
        let m = evaluate_matches(pred(&[]), &g);
        assert_eq!(m.f1, 0.0);
        let m2 = evaluate_matches(pred(&[(0, 0)]), &gold(&[]));
        assert_eq!(m2.recall, 0.0);
    }

    #[test]
    fn duplicates_counted_once() {
        let g = gold(&[(0, 0)]);
        let m = evaluate_matches(pred(&[(0, 0), (0, 0)]), &g);
        assert_eq!(m.predicted, 1);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn pair_completeness_basics() {
        let g = gold(&[(0, 0), (1, 1)]);
        assert_eq!(pair_completeness(pred(&[(0, 0), (5, 5)]), &g), 0.5);
        assert_eq!(pair_completeness(pred(&[]), &g), 0.0);
        assert_eq!(pair_completeness(pred(&[(0, 0)]), &gold(&[])), 0.0);
    }

    #[test]
    fn reduction_ratio_basics() {
        assert!((reduction_ratio(100, 25) - 0.75).abs() < 1e-12);
        assert_eq!(reduction_ratio(0, 0), 0.0);
        assert_eq!(reduction_ratio(10, 10), 0.0);
    }
}
