//! ER graph construction stage (§IV) bundled into one reusable step.

use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune,
    AttrAlignment, Candidates, ComponentIndex, ErGraph, PairId,
};
use remp_kb::Kb;
use remp_obs::time_stage;
use remp_simil::SimVec;

use crate::RempConfig;

/// Everything stage 1 produces: the retained candidate set with its
/// similarity vectors, attribute alignment, seed matches and ER graph.
#[derive(Clone, Debug)]
pub struct PreparedEr {
    /// Retained candidate pairs `M_rd` (densely re-indexed).
    pub candidates: Candidates,
    /// `|M_c|` before pruning (Table V's "candidate matches").
    pub candidate_count: usize,
    /// The full pre-pruning candidate set (kept for PC evaluation).
    pub pre_candidates: Candidates,
    /// Initial exact-label matches `M_in`, in retained ids.
    pub initial: Vec<PairId>,
    /// The attribute alignment `M_at`.
    pub alignment: AttrAlignment,
    /// One similarity vector per retained pair.
    pub sim_vectors: Vec<SimVec>,
    /// The ER graph over the retained pairs.
    pub graph: ErGraph,
    /// Connected components of the ER graph — the propagation shards the
    /// incremental loop engine schedules and retires independently.
    pub components: ComponentIndex,
}

/// Runs ER graph construction (§IV): candidates → initial matches →
/// attribute matching → similarity vectors → Algorithm 1 pruning → graph.
///
/// The heavy stages (candidate generation, similarity vectors, pruning)
/// run on the worker pool selected by `config.parallelism`; the output is
/// identical in every mode.
pub fn prepare(kb1: &Kb, kb2: &Kb, config: &RempConfig) -> PreparedEr {
    let par = &config.parallelism;
    // Each stage runs under `time_stage`, feeding the `remp_stage_seconds`
    // histogram (and the active trace, if any) — observation only, the
    // computation is byte-identical with instrumentation on or off.
    let (pre_candidates, _) =
        time_stage("candidates", || generate_candidates(kb1, kb2, config.label_sim_threshold, par));
    let ((initial_full, alignment), _) = time_stage("attr_alignment", || {
        let initial = initial_matches(kb1, kb2, &pre_candidates);
        let alignment = match_attributes(kb1, kb2, &pre_candidates, &initial, &config.attr);
        (initial, alignment)
    });
    let (vectors_full, _) = time_stage("sim_vectors", || {
        build_sim_vectors(kb1, kb2, &pre_candidates, &alignment, config.literal_threshold, par)
    });
    let (retained, _) =
        time_stage("prune", || prune(&pre_candidates, &vectors_full, config.knn_k, par));
    let ((candidates, sim_vectors, initial, graph, components), _) = time_stage("graph", || {
        let (candidates, mapping) = pre_candidates.restrict(&retained);
        let mut sim_vectors = vec![SimVec::new(Vec::new()); candidates.len()];
        for &old in &retained {
            sim_vectors[mapping[&old].index()] = vectors_full[old.index()].clone();
        }
        let initial: Vec<PairId> =
            initial_full.iter().filter_map(|old| mapping.get(old).copied()).collect();
        let graph = ErGraph::build(kb1, kb2, &candidates);
        let components = ComponentIndex::build(&graph);
        (candidates, sim_vectors, initial, graph, components)
    });

    PreparedEr {
        candidates,
        candidate_count: pre_candidates.len(),
        pre_candidates,
        initial,
        alignment,
        sim_vectors,
        graph,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_datasets::{generate, iimb};

    #[test]
    fn prepare_produces_consistent_stage() {
        let d = generate(&iimb(0.3));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        assert!(prep.candidates.len() <= prep.candidate_count);
        assert_eq!(prep.sim_vectors.len(), prep.candidates.len());
        assert_eq!(prep.graph.num_vertices(), prep.candidates.len());
        assert!(!prep.initial.is_empty(), "IIMB has exact-label seeds");
        // Initial ids are valid in the retained space.
        for &s in &prep.initial {
            assert!(s.index() < prep.candidates.len());
        }
        // Attribute alignment found the identical-schema matches.
        assert!(prep.alignment.len() >= 6, "got {:?}", prep.alignment.pairs);
    }

    #[test]
    fn pruning_respects_k() {
        let d = generate(&iimb(0.3));
        let mut config = RempConfig { knn_k: 1, ..RempConfig::default() };
        let strict = prepare(&d.kb1, &d.kb2, &config);
        config.knn_k = 8;
        let loose = prepare(&d.kb1, &d.kb2, &config);
        assert!(strict.candidates.len() <= loose.candidates.len());
    }
}
