//! Experiment drivers shared by the integration tests, examples and the
//! bench harness.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use remp_crowd::LabelSource;
use remp_datasets::GeneratedDataset;
use remp_ergraph::PairId;
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};

use crate::{evaluate_matches, prepare, LoopStat, PrecisionRecall, Remp, RempConfig};

/// One experiment's outcome: quality plus cost.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Precision / recall / F1 against the dataset's gold standard.
    pub eval: PrecisionRecall,
    /// Questions asked (`#Q`).
    pub questions: usize,
    /// Human-machine loops (`#L`).
    pub loops: usize,
    /// Per-loop stage-2/3 timings and dirty-region counters from the
    /// incremental engine (one entry per propagation pass).
    pub loop_stats: Vec<LoopStat>,
}

/// Runs the full Remp pipeline on a generated dataset with the given crowd.
pub fn run_on_dataset(
    dataset: &GeneratedDataset,
    config: &RempConfig,
    crowd: &mut dyn LabelSource,
) -> ExperimentResult {
    let remp = Remp::new(config.clone());
    let mut session =
        remp.begin(&dataset.kb1, &dataset.kb2).unwrap_or_else(|e| panic!("run_on_dataset: {e}"));
    session
        .drive(&|u1, u2| dataset.is_match(u1, u2), crowd)
        .expect("draining a fresh session cannot hit caller-protocol errors");
    let loop_stats = session.loop_stats().to_vec();
    let outcome = session.finish();
    ExperimentResult {
        eval: evaluate_matches(outcome.matches.iter().copied(), &dataset.gold),
        questions: outcome.questions_asked,
        loops: outcome.loops,
        loop_stats,
    }
}

/// The Table VI protocol: seed a fraction of the gold matches and measure
/// pure propagation quality (no crowd, no classifier).
///
/// Seeds are sampled from the gold matches that survived pruning; two
/// propagation rounds run (estimate → infer → re-estimate with the new
/// matches → infer), mirroring the pipeline's update loop.
pub fn propagation_only_f1(
    dataset: &GeneratedDataset,
    config: &RempConfig,
    seed_fraction: f64,
    rng_seed: u64,
) -> PrecisionRecall {
    let prep = prepare(&dataset.kb1, &dataset.kb2, config);
    let mut gold_retained: Vec<PairId> = prep
        .candidates
        .ids()
        .filter(|&p| {
            let (u1, u2) = prep.candidates.pair(p);
            dataset.is_match(u1, u2)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    gold_retained.shuffle(&mut rng);
    let n_seeds = ((gold_retained.len() as f64) * seed_fraction).round() as usize;
    let seeds: Vec<PairId> = gold_retained.into_iter().take(n_seeds).collect();

    let mut candidates = prep.candidates.clone();
    let mut matched: Vec<PairId> = seeds.clone();
    for &s in &seeds {
        candidates.set_prior(s, 1.0);
    }

    let mut prev_count = 0usize;
    for _round in 0..8 {
        if matched.len() == prev_count && _round > 0 {
            break; // fixpoint reached
        }
        prev_count = matched.len();
        let par = &config.parallelism;
        let cons = ConsistencyTable::estimate(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            &prep.graph,
            &matched,
            par,
        );
        let pg = ProbErGraph::build(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            &prep.graph,
            &cons,
            &config.propagation,
            par,
        );
        let inferred = inferred_sets_dijkstra(&pg, config.tau, par);
        let mut new_matches = Vec::new();
        for &s in &matched {
            for &(p, _) in inferred.inferred(s) {
                new_matches.push(p);
            }
        }
        matched.extend(new_matches);
        matched.sort_unstable();
        matched.dedup();
        for &m in &matched {
            candidates.set_prior(m, 1.0);
        }
    }

    let predictions = matched.iter().map(|&p| candidates.pair(p));
    evaluate_matches(predictions, &dataset.gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    #[test]
    fn run_on_dataset_smoke() {
        let d = generate(&iimb(0.2));
        let mut crowd = OracleCrowd::new();
        let r = run_on_dataset(&d, &RempConfig::default(), &mut crowd);
        assert!(r.eval.f1 > 0.5, "F1 = {}", r.eval.f1);
        assert!(r.questions > 0);
        assert!(r.loops > 0);
    }

    #[test]
    fn more_seeds_no_worse_propagation() {
        let d = generate(&iimb(0.25));
        let config = RempConfig::default().without_classifier();
        let low = propagation_only_f1(&d, &config, 0.2, 7);
        let high = propagation_only_f1(&d, &config, 0.8, 7);
        assert!(
            high.f1 >= low.f1 - 0.05,
            "more seeds should help: 20% → {}, 80% → {}",
            low.f1,
            high.f1
        );
        assert!(high.f1 > 0.5, "80% seeds should resolve most: {}", high.f1);
    }

    #[test]
    fn propagation_only_is_deterministic() {
        let d = generate(&iimb(0.2));
        let config = RempConfig::default().without_classifier();
        let a = propagation_only_f1(&d, &config, 0.4, 3);
        let b = propagation_only_f1(&d, &config, 0.4, 3);
        assert_eq!(a, b);
    }
}
