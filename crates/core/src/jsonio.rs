//! Shared JSON field accessors for the checkpoint format.
//!
//! One place maps "missing field" / "wrong type" onto
//! [`RempError::MalformedCheckpoint`] for both the session and config
//! decoders.

use remp_json::Json;

use crate::RempError;

pub(crate) fn malformed(what: impl Into<String>) -> RempError {
    RempError::MalformedCheckpoint(what.into())
}

pub(crate) fn get<'j>(doc: &'j Json, key: &str) -> Result<&'j Json, RempError> {
    doc.get(key).ok_or_else(|| malformed(format!("missing field '{key}'")))
}

pub(crate) fn get_usize(doc: &Json, key: &str) -> Result<usize, RempError> {
    get(doc, key)?.as_usize().ok_or_else(|| malformed(format!("field '{key}' is not an integer")))
}

pub(crate) fn get_u64(doc: &Json, key: &str) -> Result<u64, RempError> {
    get(doc, key)?.as_u64().ok_or_else(|| malformed(format!("field '{key}' is not an integer")))
}

pub(crate) fn get_f64(doc: &Json, key: &str) -> Result<f64, RempError> {
    get(doc, key)?.as_f64().ok_or_else(|| malformed(format!("field '{key}' is not a number")))
}

pub(crate) fn get_bool(doc: &Json, key: &str) -> Result<bool, RempError> {
    get(doc, key)?.as_bool().ok_or_else(|| malformed(format!("field '{key}' is not a bool")))
}

pub(crate) fn get_str<'j>(doc: &'j Json, key: &str) -> Result<&'j str, RempError> {
    get(doc, key)?.as_str().ok_or_else(|| malformed(format!("field '{key}' is not a string")))
}

/// `null` → `None`, integer → `Some(n)`, anything else is an error.
pub(crate) fn get_opt_usize(doc: &Json, key: &str) -> Result<Option<usize>, RempError> {
    match get(doc, key)? {
        Json::Null => Ok(None),
        v => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| malformed(format!("field '{key}' is not an integer or null"))),
    }
}
