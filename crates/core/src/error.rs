//! Typed errors for the session API.
//!
//! The original monolithic pipeline asserted or silently clamped on bad
//! input; the session API surfaces every recoverable condition as a
//! [`RempError`] so external crowd drivers (which cannot "just fix the
//! closure") can react programmatically.

use std::fmt;

use crate::session::QuestionId;

/// Everything that can go wrong while driving a
/// [`RempSession`](crate::RempSession).
#[derive(Clone, Debug, PartialEq)]
pub enum RempError {
    /// The submitted id does not belong to the currently open batch.
    UnknownQuestion(QuestionId),
    /// The question already received its answers.
    AlreadyAnswered(QuestionId),
    /// An answer was submitted with no labels at all.
    EmptyLabels(QuestionId),
    /// `next_batch` was called while the open batch still has unanswered
    /// questions; submit those (or abandon via `finish`) first.
    BatchOutstanding {
        /// How many questions of the open batch still await answers.
        unanswered: usize,
    },
    /// The configuration fails validation (message names the field).
    InvalidConfig(String),
    /// A checkpoint does not belong to the supplied knowledge bases /
    /// configuration (message explains the mismatch).
    CheckpointMismatch(String),
    /// A checkpoint document cannot be decoded.
    MalformedCheckpoint(String),
}

impl fmt::Display for RempError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RempError::UnknownQuestion(id) => {
                write!(f, "question {id} is not part of the open batch")
            }
            RempError::AlreadyAnswered(id) => {
                write!(f, "question {id} was already answered")
            }
            RempError::EmptyLabels(id) => {
                write!(f, "no labels submitted for question {id}")
            }
            RempError::BatchOutstanding { unanswered } => {
                write!(f, "the open batch still has {unanswered} unanswered question(s)")
            }
            RempError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RempError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            RempError::MalformedCheckpoint(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for RempError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_question() {
        let err = RempError::UnknownQuestion(QuestionId(42));
        assert!(err.to_string().contains("q42"), "{err}");
        let err = RempError::BatchOutstanding { unanswered: 3 };
        assert!(err.to_string().contains('3'), "{err}");
    }
}
