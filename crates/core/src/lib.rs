//! The Remp pipeline — crowdsourced collective entity resolution with
//! relational match propagation (the paper's contribution, §III-B).
//!
//! [`Remp::run`] executes the four-stage human-machine loop end to end:
//!
//! 1. **ER graph construction** (`remp-ergraph`): candidate generation,
//!    initial matches, attribute matching, similarity vectors,
//!    partial-order pruning, graph building.
//! 2. **Relational match propagation** (`remp-propagation`): consistency
//!    estimation and the probabilistic ER graph.
//! 3. **Multiple questions selection** (`remp-selection`): lazy-greedy
//!    submodular maximisation of the expected inferred matches.
//! 4. **Truth inference** (`remp-crowd`): Eq. 17 posteriors, thresholds,
//!    hard-question prior downdating; inferred matches propagate through
//!    `inferred(q)`.
//!
//! The loop stops when no beneficial question remains (or the budget is
//! hit); isolated pairs are then resolved by a random-forest classifier
//! (§VII-B). [`metrics`] carries the evaluation machinery shared by the
//! test suite and the bench harness.

pub mod config;
pub mod experiment;
pub mod isolated;
pub mod metrics;
pub mod pipeline;
pub mod prepared;

pub use config::RempConfig;
pub use experiment::{propagation_only_f1, run_on_dataset, ExperimentResult};
pub use isolated::classify_isolated;
pub use metrics::{evaluate_matches, pair_completeness, reduction_ratio, PrecisionRecall};
pub use pipeline::{MatchSource, Remp, RempOutcome, Resolution};
pub use prepared::{prepare, PreparedEr};
