//! The Remp pipeline — crowdsourced collective entity resolution with
//! relational match propagation (the paper's contribution, §III-B).
//!
//! The primary interface is the resumable [`RempSession`] state machine
//! ([`Remp::begin`]): the caller owns the crowd loop, pulling question
//! [`Batch`]es and submitting worker labels as they arrive, with
//! checkpoint/resume for long campaigns. [`Remp::run`] is the
//! convenience wrapper that drains a session against a simulated
//! [`remp_crowd::LabelSource`]. Either way the four stages are:
//!
//! 1. **ER graph construction** (`remp-ergraph`): candidate generation,
//!    initial matches, attribute matching, similarity vectors,
//!    partial-order pruning, graph building.
//! 2. **Relational match propagation** (`remp-propagation`): consistency
//!    estimation and the probabilistic ER graph.
//! 3. **Multiple questions selection** (`remp-selection`): lazy-greedy
//!    submodular maximisation of the expected inferred matches.
//! 4. **Truth inference** (`remp-crowd`): Eq. 17 posteriors, thresholds,
//!    hard-question prior downdating; inferred matches propagate through
//!    `inferred(q)`.
//!
//! The loop stops when no beneficial question remains (or the budget is
//! hit); isolated pairs are then resolved by a random-forest classifier
//! (§VII-B). [`metrics`] carries the evaluation machinery shared by the
//! test suite and the bench harness.

pub mod config;
pub mod error;
pub mod experiment;
pub mod isolated;
mod jsonio;
pub mod metrics;
pub mod pipeline;
pub mod prepared;
pub mod profile;
pub mod session;

pub use config::RempConfig;
pub use error::RempError;
pub use experiment::{propagation_only_f1, run_on_dataset, ExperimentResult};
pub use isolated::classify_isolated;
pub use metrics::{evaluate_matches, pair_completeness, reduction_ratio, PrecisionRecall};
pub use pipeline::{MatchSource, Remp, RempOutcome, Resolution};
pub use prepared::{prepare, PreparedEr};
pub use profile::{run_pipeline_bench, PipelineBenchOptions, PipelineBenchReport, StageProfile};
pub use remp_par::Parallelism;
pub use remp_propagation::{LoopState, PropagationContext, RefreshStats};
pub use session::{
    Batch, KbFingerprint, LoopStat, ParseQuestionIdError, Question, QuestionContext, QuestionId,
    RempSession, SessionCheckpoint, SubmitOutcome, CHECKPOINT_VERSION, CHECK_INCREMENTAL_ENV,
};
