//! Random-forest inference for isolated entity pairs (paper §VII-B).
//!
//! Pairs whose ER-graph vertex has no edges can never be reached by match
//! propagation; polling them one by one would waste the budget. The paper
//! instead trains a random forest on the similarity vectors of *resolved*
//! pairs with attribute signatures similar to the target pair
//! (`Jaccard(A_p, A_p') ≥ ψ`) and predicts the isolated ones, treating
//! unresolved pairs as non-matches to balance the classes.
//!
//! ## Documented deviation
//! Training one forest per isolated pair (or per signature group)
//! fragments the training data badly at reproduction scale. We train one
//! *global* forest whose features include, besides the similarity vector,
//! the per-attribute **presence bits** (the signature `A_p` itself) and
//! the prior label similarity — the forest partitions on signatures
//! internally, which subsumes the paper's ψ-neighbourhood selection while
//! seeing all the evidence. Class balance is enforced by capping the
//! majority class, mirroring the paper's balancing intent.

use remp_ergraph::{AttrAlignment, Candidates, ErGraph, PairId};
use remp_forest::RandomForest;
use remp_kb::Kb;
use remp_simil::SimVec;

use crate::{RempConfig, Resolution};

/// Feature vector for one pair: similarity components plus presence bits
/// of each aligned attribute (the signature `A_p`). The label-similarity
/// prior is deliberately *not* a feature — the paper trains on similarity
/// vectors only, and isolated matches with noisy labels (low prior, strong
/// attributes) are exactly the cases the classifier must recover.
fn features(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    alignment: &AttrAlignment,
    sim_vectors: &[SimVec],
    p: PairId,
) -> Vec<f64> {
    let (u1, u2) = candidates.pair(p);
    let mut out = sim_vectors[p.index()].components().to_vec();
    for &(a1, a2, _) in &alignment.pairs {
        let both = kb1.has_attr(u1, a1) && kb2.has_attr(u2, a2);
        out.push(if both { 1.0 } else { 0.0 });
    }
    out
}

/// Classifies the unresolved isolated pairs, returning those predicted to
/// be matches.
///
/// Positives: resolved matches (crowd + inferred). Negatives: resolved
/// non-matches and unresolved non-isolated pairs (the paper's balancing
/// device). The majority class is capped at the minority size by
/// deterministic striding.
#[allow(clippy::too_many_arguments)]
pub fn classify_isolated(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    graph: &ErGraph,
    sim_vectors: &[SimVec],
    alignment: &AttrAlignment,
    resolution: &[Resolution],
    config: &RempConfig,
) -> Vec<PairId> {
    let n = candidates.len();
    if n == 0 || alignment.is_empty() {
        return Vec::new();
    }

    // Targets: every pair still unresolved when the loop terminated —
    // primarily isolated vertices (the paper's case), plus connected pairs
    // the propagation terminally could not reach with Pr ≥ τ (a small
    // extension; without it those pairs silently count as non-matches).
    let targets: Vec<PairId> = (0..n)
        .map(PairId::from_index)
        .filter(|&p| resolution[p.index()] == Resolution::Unresolved)
        .collect();
    if targets.is_empty() {
        return Vec::new();
    }

    // Positives: resolved matches. Negatives, in preference order (the
    // paper treats unresolved N_p pairs as non-matches to balance):
    //   1. crowd-confirmed non-matches,
    //   2. unresolved *non-isolated* pairs with prior < 0.8 (propagation
    //      had its chance — these are overwhelmingly true non-matches),
    //   3. unresolved isolated pairs with the lowest priors, only to fill
    //      the quota (they are partially contaminated with exactly the
    //      matches we want to predict).
    let positives: Vec<PairId> = (0..n)
        .map(PairId::from_index)
        .filter(|&p| matches!(resolution[p.index()], Resolution::Match(_)))
        .collect();
    let mut negatives: Vec<PairId> = (0..n)
        .map(PairId::from_index)
        .filter(|&p| {
            resolution[p.index()] == Resolution::NonMatch
                || (resolution[p.index()] == Resolution::Unresolved
                    && !graph.is_isolated_vertex(p)
                    && candidates.prior(p) < 0.8)
        })
        .collect();
    if negatives.len() < positives.len() {
        // Fill from unresolved isolated pairs: stratified by prior so the
        // forest sees the whole junk spectrum, skipping pairs that agree
        // strongly on ≥ 2 attributes (likely the very matches we want to
        // predict — training on them as negatives poisons the boundary).
        let mut fill: Vec<PairId> = (0..n)
            .map(PairId::from_index)
            .filter(|&p| {
                resolution[p.index()] == Resolution::Unresolved
                    && graph.is_isolated_vertex(p)
                    && candidates.prior(p) < 0.8
                    && sim_vectors[p.index()].components().iter().filter(|&&c| c >= 0.9).count() < 2
            })
            .collect();
        fill.sort_by(|&a, &b| {
            candidates
                .prior(a)
                .partial_cmp(&candidates.prior(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        let need = positives.len() - negatives.len();
        if fill.len() > need {
            let stride = fill.len() as f64 / need as f64;
            fill = (0..need).map(|k| fill[(k as f64 * stride) as usize]).collect();
        }
        negatives.extend(fill);
    }
    if positives.is_empty() || negatives.is_empty() || positives.len() + negatives.len() < 8 {
        return Vec::new();
    }

    // Cap the majority class at the minority count by striding.
    let cap = |members: &[PairId], quota: usize| -> Vec<PairId> {
        if members.len() <= quota {
            return members.to_vec();
        }
        let stride = members.len() as f64 / quota as f64;
        (0..quota).map(|k| members[(k as f64 * stride) as usize]).collect()
    };
    let quota = positives.len().min(negatives.len());
    let mut keep: Vec<(PairId, bool)> =
        cap(&positives, quota).into_iter().map(|p| (p, true)).collect();
    keep.extend(cap(&negatives, quota).into_iter().map(|p| (p, false)));
    keep.sort_unstable_by_key(|&(p, _)| p);
    let bal_x: Vec<Vec<f64>> = keep
        .iter()
        .map(|&(p, _)| features(kb1, kb2, candidates, alignment, sim_vectors, p))
        .collect();
    let bal_y: Vec<bool> = keep.iter().map(|&(_, y)| y).collect();
    // Tree training and per-target scoring are both data-parallel; the
    // seeded forest (and so every prediction) is identical in every mode.
    let forest = RandomForest::fit_par(&bal_x, &bal_y, &config.forest, &config.parallelism);

    let scores: Vec<bool> = config.parallelism.par_map(&targets, |&t| {
        forest.predict_proba(&features(kb1, kb2, candidates, alignment, sim_vectors, t))
            >= config.classifier_threshold
    });
    let mut predicted: Vec<PairId> =
        targets.iter().zip(&scores).filter(|&(_, &hit)| hit).map(|(&t, _)| t).collect();
    predicted.sort_unstable();
    predicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, Remp, RempConfig};
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    #[test]
    fn classifier_targets_only_isolated_unresolved() {
        let d = generate(&iimb(0.3));
        let config = RempConfig::default();
        let prep = prepare(&d.kb1, &d.kb2, &config);
        let remp = Remp::new(config.clone());
        let mut crowd = OracleCrowd::new();
        let outcome = remp.run_prepared(
            &d.kb1,
            &d.kb2,
            prep.clone(),
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
        );

        let predicted = classify_isolated(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.graph,
            &prep.sim_vectors,
            &prep.alignment,
            &outcome.resolutions,
            &config,
        );
        for p in predicted {
            assert!(prep.graph.is_isolated_vertex(p), "classifier only targets isolated pairs");
        }
    }

    #[test]
    fn no_alignment_no_predictions() {
        let d = generate(&iimb(0.1));
        let config = RempConfig::default();
        let prep = prepare(&d.kb1, &d.kb2, &config);
        let resolution = vec![Resolution::Unresolved; prep.candidates.len()];
        let out = classify_isolated(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.graph,
            &prep.sim_vectors,
            &remp_ergraph::AttrAlignment::default(),
            &resolution,
            &config,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn single_class_training_yields_nothing() {
        // All pairs unresolved → no positives → no predictions.
        let d = generate(&iimb(0.1));
        let config = RempConfig::default();
        let prep = prepare(&d.kb1, &d.kb2, &config);
        let resolution = vec![Resolution::Unresolved; prep.candidates.len()];
        let out = classify_isolated(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.graph,
            &prep.sim_vectors,
            &prep.alignment,
            &resolution,
            &config,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn feature_vector_has_expected_dimension() {
        let d = generate(&iimb(0.1));
        let config = RempConfig::default();
        let prep = prepare(&d.kb1, &d.kb2, &config);
        let p = prep.candidates.ids().next().unwrap();
        let f = features(&d.kb1, &d.kb2, &prep.candidates, &prep.alignment, &prep.sim_vectors, p);
        assert_eq!(f.len(), 2 * prep.alignment.len());
    }
}
