//! Per-stage wall-clock profiling of the pipeline — the shared engine
//! behind `rempctl bench` and the `bench_pipeline` binary.
//!
//! One [`run_pipeline_bench`] call generates a preset dataset, then runs
//! the hot stages (candidate generation, attribute alignment, similarity
//! vectors, pruning, graph construction, consistency estimation, neighbour
//! propagation, inferred-set discovery, batch scoring) plus one full
//! oracle-driven campaign at each requested thread count, timing each
//! stage. The report serializes to the `BENCH_pipeline.json` document the
//! CI bench job uploads and gates on, and doubles as an equivalence smoke
//! check: a run whose question count or F1 differs across thread counts is
//! an error, not a report.

use std::time::Instant;

use remp_crowd::OracleCrowd;
use remp_datasets::{generate, preset_by_name, GeneratedDataset};
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune, ErGraph,
    PairId,
};
use remp_json::Json;
use remp_par::Parallelism;
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::select_batch;

use crate::{evaluate_matches, Remp, RempConfig};

/// Parses a `--threads` list like `"1,2,4"` into thread counts — shared
/// by the `rempctl bench` and `bench_pipeline` front-ends.
pub fn parse_thread_list(raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|part| {
            part.trim().parse::<usize>().map_err(|_| format!("--threads: bad count {part:?}"))
        })
        .collect()
}

/// What to measure: which preset, at which scale, at which thread counts.
#[derive(Clone, Debug)]
pub struct PipelineBenchOptions {
    /// Dataset preset name (`IIMB`, `D-A`, `I-Y`, `D-Y`, `TINY`).
    pub preset: String,
    /// Preset scale multiplier.
    pub scale: f64,
    /// Thread counts to profile, in order; `1` runs the sequential mode.
    /// The speedup summary compares the sequential (or first) run against
    /// the run with the most threads.
    pub thread_counts: Vec<usize>,
}

impl Default for PipelineBenchOptions {
    fn default() -> Self {
        // D-A at 8x scale: the mid-size workload — a couple of seconds of
        // sequential end-to-end, so stage times dominate thread-pool
        // overhead, while the whole 1/2/4-thread sweep stays CI-friendly.
        PipelineBenchOptions { preset: "D-A".to_owned(), scale: 8.0, thread_counts: vec![1, 2, 4] }
    }
}

/// Wall-clock numbers for one thread count.
#[derive(Clone, Debug)]
pub struct StageProfile {
    /// Worker threads this run was measured with.
    pub threads: usize,
    /// `(stage name, seconds)` in pipeline order.
    pub stages: Vec<(&'static str, f64)>,
    /// Sum of the per-stage times (one pass over stages 1–3).
    pub stage_total: f64,
    /// Full campaign (stage 1 + crowd loop + classifier) wall time.
    pub end_to_end: f64,
    /// Questions the campaign asked (must agree across thread counts).
    pub questions: usize,
    /// Campaign F1 against gold (must agree across thread counts).
    pub f1: f64,
}

/// The full measurement: one [`StageProfile`] per requested thread count.
#[derive(Clone, Debug)]
pub struct PipelineBenchReport {
    /// Preset that was measured.
    pub preset: String,
    /// Scale it was generated at.
    pub scale: f64,
    /// `std::thread::available_parallelism` on the measuring host — the
    /// context needed to read the speedup numbers (a 4-thread run cannot
    /// beat sequential on a single-core host).
    pub host_threads: usize,
    /// One profile per thread count, in the order requested.
    pub runs: Vec<StageProfile>,
}

impl PipelineBenchReport {
    /// The baseline run: the first with one thread, else the first.
    pub fn sequential(&self) -> &StageProfile {
        self.runs.iter().find(|r| r.threads <= 1).unwrap_or(&self.runs[0])
    }

    /// The most-parallel run (largest thread count).
    pub fn parallel(&self) -> &StageProfile {
        self.runs.iter().max_by_key(|r| r.threads).expect("at least one run")
    }

    /// End-to-end speedup of the most-parallel run over the baseline.
    pub fn speedup(&self) -> f64 {
        let par = self.parallel().end_to_end;
        if par <= 0.0 {
            return 1.0;
        }
        self.sequential().end_to_end / par
    }

    /// The regression gate shared by `rempctl bench` and `bench_pipeline`:
    /// errors when the end-to-end speedup of the most-parallel run over
    /// the *sequential* run falls below `floor`.
    ///
    /// Requires an actual 1-thread run in the report — without one the
    /// "baseline" would be some parallel run (in the degenerate single
    /// thread-count case the most-parallel run itself, speedup ≡ 1.0) and
    /// the gate could never fail, silently waving regressions through.
    pub fn check_min_speedup(&self, floor: f64) -> Result<(), String> {
        if !self.runs.iter().any(|r| r.threads <= 1) {
            return Err(
                "the speedup gate needs a sequential baseline: include 1 in --threads".into()
            );
        }
        let speedup = self.speedup();
        if speedup < floor {
            return Err(format!(
                "regression gate failed: end-to-end speedup {speedup:.2}x at {} threads is \
                 below the required {floor:.2}x",
                self.parallel().threads
            ));
        }
        Ok(())
    }

    /// Human-readable per-run summary, one line per entry — shared by the
    /// two front-end binaries so their output stays identical.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "pipeline bench: {} (scale {}) on a host with {} hardware thread(s)",
            self.preset, self.scale, self.host_threads
        )];
        for run in &self.runs {
            lines.push(format!(
                "  {} thread(s): stages {:.2}s, end-to-end {:.2}s ({} questions, F1 {:.3})",
                run.threads, run.stage_total, run.end_to_end, run.questions, run.f1
            ));
        }
        lines.push(format!(
            "  speedup at {} threads vs sequential: {:.2}x",
            self.parallel().threads,
            self.speedup()
        ));
        lines
    }

    /// The `BENCH_pipeline.json` document.
    pub fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("threads".into(), Json::from(r.threads)),
                    (
                        "stages_s".into(),
                        Json::Obj(
                            r.stages
                                .iter()
                                .map(|&(name, secs)| (name.to_owned(), Json::from(secs)))
                                .collect(),
                        ),
                    ),
                    ("stage_total_s".into(), Json::from(r.stage_total)),
                    ("end_to_end_s".into(), Json::from(r.end_to_end)),
                    ("questions".into(), Json::from(r.questions)),
                    ("f1".into(), Json::from(r.f1)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("preset".into(), Json::from(self.preset.as_str())),
            ("scale".into(), Json::from(self.scale)),
            ("host_threads".into(), Json::from(self.host_threads)),
            ("runs".into(), Json::Arr(runs)),
            ("sequential_end_to_end_s".into(), Json::from(self.sequential().end_to_end)),
            ("parallel_threads".into(), Json::from(self.parallel().threads)),
            ("parallel_end_to_end_s".into(), Json::from(self.parallel().end_to_end)),
            ("speedup_parallel_vs_sequential".into(), Json::from(self.speedup())),
        ])
    }
}

fn timed<T>(stages: &mut Vec<(&'static str, f64)>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let out = f();
    stages.push((name, started.elapsed().as_secs_f64()));
    out
}

/// Profiles every hot stage plus one full campaign at one thread count.
fn profile_run(dataset: &GeneratedDataset, threads: usize) -> StageProfile {
    let par = if threads <= 1 { Parallelism::Sequential } else { Parallelism::Fixed(threads) };
    let config = RempConfig::default().with_parallelism(par);
    let (kb1, kb2) = (&dataset.kb1, &dataset.kb2);
    let mut stages: Vec<(&'static str, f64)> = Vec::new();

    // Stage 1, piece by piece (mirrors `prepare`).
    let pre = timed(&mut stages, "candidates", || {
        generate_candidates(kb1, kb2, config.label_sim_threshold, &par)
    });
    let (initial_full, alignment) = timed(&mut stages, "attr_alignment", || {
        let initial = initial_matches(kb1, kb2, &pre);
        let alignment = match_attributes(kb1, kb2, &pre, &initial, &config.attr);
        (initial, alignment)
    });
    let vectors = timed(&mut stages, "sim_vectors", || {
        build_sim_vectors(kb1, kb2, &pre, &alignment, config.literal_threshold, &par)
    });
    let retained = timed(&mut stages, "prune", || prune(&pre, &vectors, config.knn_k, &par));
    let (candidates, initial, graph) = timed(&mut stages, "graph", || {
        let (candidates, mapping) = pre.restrict(&retained);
        let initial: Vec<PairId> =
            initial_full.iter().filter_map(|old| mapping.get(old).copied()).collect();
        let graph = ErGraph::build(kb1, kb2, &candidates);
        (candidates, initial, graph)
    });

    // Stages 2–3, one loop's worth over the initial seeds.
    let cons = timed(&mut stages, "consistency", || {
        ConsistencyTable::estimate(kb1, kb2, &candidates, &graph, &initial, &par)
    });
    let pg = timed(&mut stages, "propagation", || {
        ProbErGraph::build(kb1, kb2, &candidates, &graph, &cons, &config.propagation, &par)
    });
    let inferred =
        timed(&mut stages, "inferred_sets", || inferred_sets_dijkstra(&pg, config.tau, &par));
    timed(&mut stages, "selection", || {
        let eligible: Vec<bool> = candidates.ids().map(|p| !graph.is_isolated_vertex(p)).collect();
        let question_cands: Vec<PairId> =
            candidates.ids().filter(|&p| eligible[p.index()]).collect();
        let priors: Vec<f64> = candidates.ids().map(|p| candidates.prior(p)).collect();
        select_batch(
            config.strategy,
            &question_cands,
            &inferred,
            &priors,
            &eligible,
            config.mu,
            &par,
        )
    });
    let stage_total = stages.iter().map(|&(_, s)| s).sum();

    // The full campaign (stage 1 rebuilt + every loop + classifier),
    // driven by an oracle so the workload is identical per thread count.
    let started = Instant::now();
    let remp = Remp::new(config);
    let mut crowd = OracleCrowd::new();
    let outcome = remp.run(kb1, kb2, &|u1, u2| dataset.is_match(u1, u2), &mut crowd);
    let end_to_end = started.elapsed().as_secs_f64();
    let f1 = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold).f1;

    StageProfile {
        threads,
        stages,
        stage_total,
        end_to_end,
        questions: outcome.questions_asked,
        f1,
    }
}

/// Runs the pipeline benchmark: one [`StageProfile`] per thread count on
/// a freshly generated preset.
///
/// Errors on an unknown preset, an empty thread list, or — the built-in
/// equivalence smoke check — when any run's question count or F1 deviates
/// from the baseline's.
pub fn run_pipeline_bench(opts: &PipelineBenchOptions) -> Result<PipelineBenchReport, String> {
    if opts.thread_counts.is_empty() {
        return Err("no thread counts requested".into());
    }
    let spec = preset_by_name(&opts.preset, opts.scale)
        .ok_or_else(|| format!("unknown preset {:?}", opts.preset))?;
    let dataset = generate(&spec);

    let runs: Vec<StageProfile> =
        opts.thread_counts.iter().map(|&t| profile_run(&dataset, t)).collect();
    let baseline = &runs[0];
    for run in &runs[1..] {
        if run.questions != baseline.questions || (run.f1 - baseline.f1).abs() > 1e-12 {
            return Err(format!(
                "thread-count equivalence violated: {} threads asked {} questions (F1 {}), \
                 {} threads asked {} (F1 {})",
                baseline.threads,
                baseline.questions,
                baseline.f1,
                run.threads,
                run.questions,
                run.f1
            ));
        }
    }

    Ok(PipelineBenchReport {
        preset: opts.preset.clone(),
        scale: opts.scale,
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_on_the_tiny_preset() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![1, 2] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.sequential().threads, 1);
        assert_eq!(report.parallel().threads, 2);
        assert!(report.speedup() > 0.0);
        let doc = report.to_json();
        assert!(doc.get("runs").is_some());
        assert!(doc.get("speedup_parallel_vs_sequential").is_some());
        // Stage names are stable — the CI gate and docs key off them.
        let names: Vec<&str> = report.runs[0].stages.iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "candidates",
                "attr_alignment",
                "sim_vectors",
                "prune",
                "graph",
                "consistency",
                "propagation",
                "inferred_sets",
                "selection"
            ]
        );
    }

    #[test]
    fn speedup_gate_requires_a_sequential_baseline() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![2, 4] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");
        // Without a 1-thread run the gate must refuse rather than compare
        // the most-parallel run against another parallel run.
        let err = report.check_min_speedup(1.0).unwrap_err();
        assert!(err.contains("sequential baseline"), "{err}");

        let with_baseline =
            run_pipeline_bench(&PipelineBenchOptions { thread_counts: vec![1, 2], ..opts })
                .expect("TINY bench runs");
        assert!(with_baseline.check_min_speedup(0.0).is_ok());
        let err = with_baseline.check_min_speedup(f64::INFINITY).unwrap_err();
        assert!(err.contains("regression gate failed"), "{err}");
    }

    #[test]
    fn thread_lists_parse() {
        assert_eq!(parse_thread_list("1,2,4").unwrap(), vec![1, 2, 4]);
        assert_eq!(parse_thread_list(" 8 ").unwrap(), vec![8]);
        assert!(parse_thread_list("1,x").is_err());
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let opts =
            PipelineBenchOptions { preset: "NOPE".into(), ..PipelineBenchOptions::default() };
        assert!(run_pipeline_bench(&opts).is_err());
        let empty = PipelineBenchOptions { thread_counts: vec![], ..Default::default() };
        assert!(run_pipeline_bench(&empty).is_err());
    }
}
