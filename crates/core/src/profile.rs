//! Per-stage wall-clock profiling of the pipeline — the shared engine
//! behind `rempctl bench` and the `bench_pipeline` binary.
//!
//! One [`run_pipeline_bench`] call generates a preset dataset, then runs
//! the hot stages (candidate generation, attribute alignment, similarity
//! vectors, pruning, graph construction, consistency estimation, neighbour
//! propagation, inferred-set discovery, batch scoring) plus one full
//! oracle-driven campaign at each requested thread count, timing each
//! stage. The report serializes to the `BENCH_pipeline.json` document the
//! CI bench job uploads and gates on, and doubles as an equivalence smoke
//! check: a run whose question count or F1 differs across thread counts is
//! an error, not a report.

use std::time::Instant;

use remp_crowd::OracleCrowd;
use remp_datasets::{generate, preset_by_name, GeneratedDataset};
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune, ErGraph,
    PairId,
};
use remp_json::Json;
use remp_par::Parallelism;
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::select_batch;

use crate::{evaluate_matches, LoopStat, Remp, RempConfig};

/// Parses a `--threads` list like `"1,2,4"` into thread counts — shared
/// by the `rempctl bench` and `bench_pipeline` front-ends.
pub fn parse_thread_list(raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|part| {
            part.trim().parse::<usize>().map_err(|_| format!("--threads: bad count {part:?}"))
        })
        .collect()
}

/// Parses a `--min-stage-speedup` list like
/// `"prune=1.3,candidates=1.3,sim_vectors=1.2"` into `(stage, floor)`
/// pairs — shared by the `rempctl bench` and `bench_pipeline` front-ends.
pub fn parse_min_stage_speedup(raw: &str) -> Result<Vec<(String, f64)>, String> {
    raw.split(',')
        .map(|part| {
            let part = part.trim();
            let (stage, floor) = part.split_once('=').ok_or_else(|| {
                format!("--min-stage-speedup: expected STAGE=FLOOR, got {part:?}")
            })?;
            let floor: f64 = floor
                .trim()
                .parse()
                .map_err(|_| format!("--min-stage-speedup: bad floor in {part:?}"))?;
            Ok((stage.trim().to_owned(), floor))
        })
        .collect()
}

/// The frozen per-stage sequential wall-clock a later bench run is gated
/// against — extracted from a committed `BENCH_pipeline.json`.
#[derive(Clone, Debug)]
pub struct StageBaseline {
    /// Preset the baseline was measured on.
    pub preset: String,
    /// Scale it was generated at.
    pub scale: f64,
    /// `(stage name, seconds)` of the baseline's sequential run.
    pub stages: Vec<(String, f64)>,
}

impl StageBaseline {
    /// Reads the frozen baseline out of a prior report document.
    ///
    /// A report that already carries a `"baseline"` section (it was
    /// itself gated against one) yields that section verbatim, so the
    /// frozen row survives any number of regenerations. Otherwise the
    /// report's own sequential (1-thread) run becomes the baseline —
    /// errors when there is none: gating against a parallel run would
    /// conflate layout wins with thread-pool overhead.
    pub fn from_report_json(doc: &Json) -> Result<StageBaseline, String> {
        let (context, stages_doc) = match doc.get("baseline") {
            Some(section) => (section, section.get("stages_s")),
            None => {
                let runs = doc
                    .get("runs")
                    .and_then(Json::as_array)
                    .ok_or("baseline report has no \"runs\" array")?;
                let sequential = runs
                    .iter()
                    .find(|r| r.get("threads").and_then(Json::as_usize).is_some_and(|t| t <= 1))
                    .ok_or("baseline report has no sequential (1-thread) run")?;
                (doc, sequential.get("stages_s"))
            }
        };
        let stages = stages_doc
            .and_then(Json::as_object)
            .ok_or("baseline has no \"stages_s\" object")?
            .iter()
            .map(|(name, secs)| {
                secs.as_f64()
                    .map(|s| (name.clone(), s))
                    .ok_or_else(|| format!("baseline stage {name:?} is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StageBaseline {
            preset: context.get("preset").and_then(Json::as_str).unwrap_or("?").to_owned(),
            scale: context.get("scale").and_then(Json::as_f64).unwrap_or(0.0),
            stages,
        })
    }

    /// The `"baseline"` section a gated report embeds so the frozen row
    /// persists across regenerations.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("preset".into(), Json::from(self.preset.as_str())),
            ("scale".into(), Json::from(self.scale)),
            (
                "stages_s".into(),
                Json::Obj(self.stages.iter().map(|(n, s)| (n.clone(), Json::from(*s))).collect()),
            ),
        ])
    }

    fn stage(&self, name: &str) -> Option<f64> {
        self.stages.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }
}

/// What to measure: which preset, at which scale, at which thread counts.
#[derive(Clone, Debug)]
pub struct PipelineBenchOptions {
    /// Dataset preset name (`IIMB`, `D-A`, `I-Y`, `D-Y`, `TINY`).
    pub preset: String,
    /// Preset scale multiplier.
    pub scale: f64,
    /// Thread counts to profile, in order; `1` runs the sequential mode.
    /// The speedup summary compares the sequential (or first) run against
    /// the run with the most threads.
    pub thread_counts: Vec<usize>,
}

impl Default for PipelineBenchOptions {
    fn default() -> Self {
        // D-A at 8x scale: the mid-size workload — a couple of seconds of
        // sequential end-to-end, so stage times dominate thread-pool
        // overhead, while the whole 1/2/4-thread sweep stays CI-friendly.
        PipelineBenchOptions { preset: "D-A".to_owned(), scale: 8.0, thread_counts: vec![1, 2, 4] }
    }
}

/// Wall-clock numbers for one thread count.
#[derive(Clone, Debug)]
pub struct StageProfile {
    /// Worker threads this run was measured with.
    pub threads: usize,
    /// `(stage name, seconds)` in pipeline order.
    pub stages: Vec<(&'static str, f64)>,
    /// Sum of the per-stage times (one pass over stages 1–3).
    pub stage_total: f64,
    /// Full campaign (stage 1 + crowd loop + classifier) wall time.
    pub end_to_end: f64,
    /// Questions the campaign asked (must agree across thread counts).
    pub questions: usize,
    /// Campaign F1 against gold (must agree across thread counts).
    pub f1: f64,
}

/// One human-machine loop of the `loops` scenario: stage-2/3 wall-clock
/// under the incremental engine vs a from-scratch rebuild.
#[derive(Clone, Copy, Debug)]
pub struct LoopBenchRow {
    /// Loop index (0 = the initial full build).
    pub loop_index: usize,
    /// Stage-2 + selection seconds with the incremental engine.
    pub incremental_s: f64,
    /// Stage-2 + selection seconds rebuilding from scratch.
    pub full_s: f64,
    /// Vertices the incremental engine recomputed edges for.
    pub dirty_vertices: usize,
    /// Dijkstra sources the incremental engine re-ran.
    pub recomputed_sources: usize,
}

/// The `loops` scenario: the same oracle campaign driven twice — once on
/// the incremental engine, once forcing a from-scratch stage-2 rebuild
/// every loop — with per-loop wall-clock side by side. The campaigns are
/// bit-identical (question counts are verified); only the time to produce
/// each batch differs.
#[derive(Clone, Debug)]
pub struct LoopsBench {
    /// Worker threads the scenario ran with.
    pub threads: usize,
    /// Questions both campaigns asked (must agree — equivalence check).
    pub questions: usize,
    /// One row per propagation pass.
    pub rows: Vec<LoopBenchRow>,
    /// Full per-loop stats of the incremental campaign.
    pub incremental_stats: Vec<LoopStat>,
}

impl LoopsBench {
    /// Mean per-loop seconds after the first loop, `(incremental, full)` —
    /// the headline of the scenario: from loop 1 on, the incremental
    /// engine pays for the changed region only.
    pub fn steady_state_means(&self) -> Option<(f64, f64)> {
        let tail = self.rows.get(1..)?;
        if tail.is_empty() {
            return None;
        }
        let n = tail.len() as f64;
        Some((
            tail.iter().map(|r| r.incremental_s).sum::<f64>() / n,
            tail.iter().map(|r| r.full_s).sum::<f64>() / n,
        ))
    }

    /// The scenario's JSON section in `BENCH_pipeline.json`.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("loop".into(), Json::from(r.loop_index)),
                    ("incremental_s".into(), Json::from(r.incremental_s)),
                    ("full_s".into(), Json::from(r.full_s)),
                    ("dirty_vertices".into(), Json::from(r.dirty_vertices)),
                    ("recomputed_sources".into(), Json::from(r.recomputed_sources)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("threads".into(), Json::from(self.threads)),
            ("questions".into(), Json::from(self.questions)),
            ("rows".into(), Json::Arr(rows)),
            (
                "incremental_total_s".into(),
                Json::from(self.rows.iter().map(|r| r.incremental_s).sum::<f64>()),
            ),
            ("full_total_s".into(), Json::from(self.rows.iter().map(|r| r.full_s).sum::<f64>())),
            (
                "incremental_detail".into(),
                Json::Arr(self.incremental_stats.iter().map(LoopStat::to_json).collect()),
            ),
        ];
        if let Some((inc, full)) = self.steady_state_means() {
            fields.push(("steady_state_incremental_s".into(), Json::from(inc)));
            fields.push(("steady_state_full_s".into(), Json::from(full)));
            fields.push((
                "steady_state_speedup".into(),
                Json::from(if inc > 0.0 { full / inc } else { 1.0 }),
            ));
        }
        Json::Obj(fields)
    }
}

/// The `observability` scenario: the same oracle campaign end-to-end
/// with instrumentation enabled vs disabled (best of
/// [`OBS_OVERHEAD_ATTEMPTS`] runs each) — the guard on the tracing
/// layer's "negligible when on, free when off" claim.
#[derive(Clone, Copy, Debug)]
pub struct ObsOverheadBench {
    /// Best end-to-end campaign seconds with metrics/spans recording on.
    pub instrumented_s: f64,
    /// Best end-to-end campaign seconds with the global switch off.
    pub disabled_s: f64,
}

impl ObsOverheadBench {
    /// Instrumentation overhead in percent (negative when the
    /// instrumented run happened to be faster — measurement noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.disabled_s <= 0.0 {
            return 0.0;
        }
        (self.instrumented_s / self.disabled_s - 1.0) * 100.0
    }

    /// The scenario's JSON section in `BENCH_pipeline.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("instrumented_s".into(), Json::from(self.instrumented_s)),
            ("disabled_s".into(), Json::from(self.disabled_s)),
            ("overhead_pct".into(), Json::from(self.overhead_pct())),
        ])
    }
}

/// The full measurement: one [`StageProfile`] per requested thread count,
/// plus the `loops` scenario (incremental vs from-scratch per-loop cost).
#[derive(Clone, Debug)]
pub struct PipelineBenchReport {
    /// Preset that was measured.
    pub preset: String,
    /// Scale it was generated at.
    pub scale: f64,
    /// `std::thread::available_parallelism` on the measuring host — the
    /// context needed to read the speedup numbers (a 4-thread run cannot
    /// beat sequential on a single-core host).
    pub host_threads: usize,
    /// One profile per thread count, in the order requested.
    pub runs: Vec<StageProfile>,
    /// The `loops` scenario, run at the first requested thread count.
    pub loops: LoopsBench,
    /// The `observability` scenario: instrumented vs disabled overhead,
    /// run at the first requested thread count.
    pub observability: ObsOverheadBench,
    /// The frozen baseline this run was gated against, when one was
    /// supplied — serialized into the report so the row persists across
    /// regenerations and the document carries its own before/after rows.
    pub baseline: Option<StageBaseline>,
    /// Peak resident set size of the measuring process (`VmHWM`), in
    /// bytes, sampled after the runs — `None` off Linux. Memory context
    /// for the timings, same source as the `remp_peak_rss_bytes` gauge.
    pub peak_rss_bytes: Option<u64>,
}

impl PipelineBenchReport {
    /// The baseline run: the first with one thread, else the first.
    pub fn sequential(&self) -> &StageProfile {
        self.runs.iter().find(|r| r.threads <= 1).unwrap_or(&self.runs[0])
    }

    /// The most-parallel run (largest thread count).
    pub fn parallel(&self) -> &StageProfile {
        self.runs.iter().max_by_key(|r| r.threads).expect("at least one run")
    }

    /// End-to-end speedup of the most-parallel run over the baseline.
    pub fn speedup(&self) -> f64 {
        let par = self.parallel().end_to_end;
        if par <= 0.0 {
            return 1.0;
        }
        self.sequential().end_to_end / par
    }

    /// The regression gate shared by `rempctl bench` and `bench_pipeline`:
    /// errors when the end-to-end speedup of the most-parallel run over
    /// the *sequential* run falls below `floor`.
    ///
    /// Requires an actual 1-thread run in the report — without one the
    /// "baseline" would be some parallel run (in the degenerate single
    /// thread-count case the most-parallel run itself, speedup ≡ 1.0) and
    /// the gate could never fail, silently waving regressions through.
    pub fn check_min_speedup(&self, floor: f64) -> Result<(), String> {
        if !self.runs.iter().any(|r| r.threads <= 1) {
            return Err(
                "the speedup gate needs a sequential baseline: include 1 in --threads".into()
            );
        }
        let speedup = self.speedup();
        if speedup < floor {
            return Err(format!(
                "regression gate failed: end-to-end speedup {speedup:.2}x at {} threads is \
                 below the required {floor:.2}x",
                self.parallel().threads
            ));
        }
        Ok(())
    }

    /// Per-stage before/after rows of this report's *sequential* run
    /// against a frozen [`StageBaseline`]: `(stage, baseline_s,
    /// current_s, speedup)`, in this report's stage order. Stages absent
    /// from the baseline (new stages) carry no speedup.
    pub fn stage_delta(
        &self,
        baseline: &StageBaseline,
    ) -> Vec<(String, Option<f64>, f64, Option<f64>)> {
        self.sequential()
            .stages
            .iter()
            .map(|&(name, current_s)| {
                let baseline_s = baseline.stage(name);
                let speedup =
                    baseline_s.filter(|_| current_s > 0.0).map(|before| before / current_s);
                (name.to_owned(), baseline_s, current_s, speedup)
            })
            .collect()
    }

    /// The `BENCH_stage_delta.json` document the CI bench job uploads:
    /// one row per stage of the sequential run, before/after/speedup.
    pub fn stage_delta_json(&self, baseline: &StageBaseline) -> Json {
        let rows = self
            .stage_delta(baseline)
            .into_iter()
            .map(|(stage, baseline_s, current_s, speedup)| {
                let opt = |v: Option<f64>| v.map(Json::from).unwrap_or(Json::Null);
                Json::Obj(vec![
                    ("stage".into(), Json::from(stage.as_str())),
                    ("baseline_s".into(), opt(baseline_s)),
                    ("current_s".into(), Json::from(current_s)),
                    ("speedup".into(), opt(speedup)),
                ])
            })
            .collect();
        let baseline_total: f64 = baseline.stages.iter().map(|&(_, s)| s).sum();
        let current_total = self.sequential().stage_total;
        Json::Obj(vec![
            ("preset".into(), Json::from(self.preset.as_str())),
            ("scale".into(), Json::from(self.scale)),
            ("baseline_preset".into(), Json::from(baseline.preset.as_str())),
            ("baseline_scale".into(), Json::from(baseline.scale)),
            ("rows".into(), Json::Arr(rows)),
            ("baseline_stage_total_s".into(), Json::from(baseline_total)),
            ("current_stage_total_s".into(), Json::from(current_total)),
            (
                "stage_total_speedup".into(),
                Json::from(if current_total > 0.0 { baseline_total / current_total } else { 1.0 }),
            ),
        ])
    }

    /// The per-stage regression gate: for every `(stage, floor)` pair the
    /// sequential run must be at least `floor`× faster than the baseline's
    /// sequential time for that stage. A floor naming a stage missing from
    /// either side is an error too — a renamed stage must not silently
    /// disarm its gate. Requires an actual 1-thread run, like
    /// [`check_min_speedup`](Self::check_min_speedup).
    pub fn check_min_stage_speedup(
        &self,
        baseline: &StageBaseline,
        floors: &[(String, f64)],
    ) -> Result<(), String> {
        if !self.runs.iter().any(|r| r.threads <= 1) {
            return Err(
                "the stage-speedup gate needs a sequential baseline: include 1 in --threads".into(),
            );
        }
        if baseline.preset != self.preset || baseline.scale != self.scale {
            return Err(format!(
                "stage-speedup gate compares different workloads: baseline is {} (scale {}), \
                 this run is {} (scale {})",
                baseline.preset, baseline.scale, self.preset, self.scale
            ));
        }
        let delta = self.stage_delta(baseline);
        let mut failures = Vec::new();
        for (stage, floor) in floors {
            let Some((_, baseline_s, current_s, speedup)) =
                delta.iter().find(|(name, ..)| name == stage)
            else {
                failures.push(format!("stage {stage:?} is not in this report"));
                continue;
            };
            let Some(before) = baseline_s else {
                failures.push(format!("stage {stage:?} is not in the baseline report"));
                continue;
            };
            let speedup = speedup.unwrap_or(f64::INFINITY);
            if speedup < *floor {
                failures.push(format!(
                    "stage {stage}: {before:.4}s -> {current_s:.4}s is {speedup:.2}x, \
                     below the required {floor:.2}x"
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(format!("per-stage regression gate failed: {}", failures.join("; ")))
        }
    }

    /// The observability-overhead gate: errors when the instrumented
    /// campaign is more than `max_pct` percent slower than the same
    /// campaign with instrumentation disabled.
    pub fn check_max_obs_overhead(&self, max_pct: f64) -> Result<(), String> {
        let pct = self.observability.overhead_pct();
        if pct > max_pct {
            return Err(format!(
                "observability overhead gate failed: instrumented campaign is {pct:.1}% slower \
                 than disabled ({:.3}s vs {:.3}s), above the allowed {max_pct:.1}%",
                self.observability.instrumented_s, self.observability.disabled_s
            ));
        }
        Ok(())
    }

    /// Human-readable per-run summary, one line per entry — shared by the
    /// two front-end binaries so their output stays identical.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "pipeline bench: {} (scale {}) on a host with {} hardware thread(s)",
            self.preset, self.scale, self.host_threads
        )];
        for run in &self.runs {
            lines.push(format!(
                "  {} thread(s): stages {:.2}s, end-to-end {:.2}s ({} questions, F1 {:.3})",
                run.threads, run.stage_total, run.end_to_end, run.questions, run.f1
            ));
        }
        lines.push(format!(
            "  speedup at {} threads vs sequential: {:.2}x",
            self.parallel().threads,
            self.speedup()
        ));
        lines.push(format!(
            "  loops scenario ({} loops, {} questions): first loop {:.3}s",
            self.loops.rows.len(),
            self.loops.questions,
            self.loops.rows.first().map(|r| r.incremental_s).unwrap_or(0.0),
        ));
        if let Some((inc, full)) = self.loops.steady_state_means() {
            lines.push(format!(
                "  per-loop stage 2+3 after the first loop: incremental {:.4}s vs \
                 from-scratch {:.4}s ({:.1}x)",
                inc,
                full,
                if inc > 0.0 { full / inc } else { 1.0 }
            ));
        }
        lines.push(format!(
            "  observability overhead: instrumented {:.3}s vs disabled {:.3}s ({:+.1}%)",
            self.observability.instrumented_s,
            self.observability.disabled_s,
            self.observability.overhead_pct()
        ));
        lines
    }

    /// The `BENCH_pipeline.json` document.
    pub fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("threads".into(), Json::from(r.threads)),
                    (
                        "stages_s".into(),
                        Json::Obj(
                            r.stages
                                .iter()
                                .map(|&(name, secs)| (name.to_owned(), Json::from(secs)))
                                .collect(),
                        ),
                    ),
                    ("stage_total_s".into(), Json::from(r.stage_total)),
                    ("end_to_end_s".into(), Json::from(r.end_to_end)),
                    ("questions".into(), Json::from(r.questions)),
                    ("f1".into(), Json::from(r.f1)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("preset".into(), Json::from(self.preset.as_str())),
            ("scale".into(), Json::from(self.scale)),
            ("host_threads".into(), Json::from(self.host_threads)),
            ("runs".into(), Json::Arr(runs)),
            ("sequential_end_to_end_s".into(), Json::from(self.sequential().end_to_end)),
            ("parallel_threads".into(), Json::from(self.parallel().threads)),
            ("parallel_end_to_end_s".into(), Json::from(self.parallel().end_to_end)),
            ("speedup_parallel_vs_sequential".into(), Json::from(self.speedup())),
            ("loops".into(), self.loops.to_json()),
            ("observability".into(), self.observability.to_json()),
        ];
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".into(), Json::from(rss)));
        }
        if let Some(baseline) = &self.baseline {
            fields.push(("baseline".into(), baseline.to_json()));
            fields.push(("stage_delta".into(), self.stage_delta_json(baseline)));
        }
        Json::Obj(fields)
    }
}

/// Times one stage through [`remp_obs::time_stage`], so a bench run feeds
/// the same `remp_stage_seconds` histogram (and any active trace) as a
/// production campaign, while the report keeps its own copy of the
/// measurement.
fn timed<T>(stages: &mut Vec<(&'static str, f64)>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let (out, secs) = remp_obs::time_stage(name, f);
    stages.push((name, secs));
    out
}

/// Profiles every hot stage plus one full campaign at one thread count.
fn profile_run(dataset: &GeneratedDataset, threads: usize) -> StageProfile {
    let par = if threads <= 1 { Parallelism::Sequential } else { Parallelism::Fixed(threads) };
    let config = RempConfig::default().with_parallelism(par);
    let (kb1, kb2) = (&dataset.kb1, &dataset.kb2);
    let mut stages: Vec<(&'static str, f64)> = Vec::new();

    // Stage 1, piece by piece (mirrors `prepare`).
    let pre = timed(&mut stages, "candidates", || {
        generate_candidates(kb1, kb2, config.label_sim_threshold, &par)
    });
    let (initial_full, alignment) = timed(&mut stages, "attr_alignment", || {
        let initial = initial_matches(kb1, kb2, &pre);
        let alignment = match_attributes(kb1, kb2, &pre, &initial, &config.attr);
        (initial, alignment)
    });
    let vectors = timed(&mut stages, "sim_vectors", || {
        build_sim_vectors(kb1, kb2, &pre, &alignment, config.literal_threshold, &par)
    });
    let retained = timed(&mut stages, "prune", || prune(&pre, &vectors, config.knn_k, &par));
    let (candidates, initial, graph) = timed(&mut stages, "graph", || {
        let (candidates, mapping) = pre.restrict(&retained);
        let initial: Vec<PairId> =
            initial_full.iter().filter_map(|old| mapping.get(old).copied()).collect();
        let graph = ErGraph::build(kb1, kb2, &candidates);
        (candidates, initial, graph)
    });

    // Stages 2–3, one loop's worth over the initial seeds.
    let cons = timed(&mut stages, "consistency", || {
        ConsistencyTable::estimate(kb1, kb2, &candidates, &graph, &initial, &par)
    });
    let pg = timed(&mut stages, "propagation", || {
        ProbErGraph::build(kb1, kb2, &candidates, &graph, &cons, &config.propagation, &par)
    });
    let inferred =
        timed(&mut stages, "inferred_sets", || inferred_sets_dijkstra(&pg, config.tau, &par));
    timed(&mut stages, "selection", || {
        let eligible: Vec<bool> = candidates.ids().map(|p| !graph.is_isolated_vertex(p)).collect();
        let question_cands: Vec<PairId> =
            candidates.ids().filter(|&p| eligible[p.index()]).collect();
        let priors: Vec<f64> = candidates.ids().map(|p| candidates.prior(p)).collect();
        select_batch(
            config.strategy,
            &question_cands,
            &inferred,
            &priors,
            &eligible,
            config.mu,
            &par,
        )
    });
    let stage_total = stages.iter().map(|&(_, s)| s).sum();

    // The full campaign (stage 1 rebuilt + every loop + classifier),
    // driven by an oracle so the workload is identical per thread count.
    let started = Instant::now();
    let remp = Remp::new(config);
    let mut crowd = OracleCrowd::new();
    let outcome = remp.run(kb1, kb2, &|u1, u2| dataset.is_match(u1, u2), &mut crowd);
    let end_to_end = started.elapsed().as_secs_f64();
    let f1 = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold).f1;

    StageProfile {
        threads,
        stages,
        stage_total,
        end_to_end,
        questions: outcome.questions_asked,
        f1,
    }
}

/// Drives one oracle campaign through the session API and returns its
/// per-loop stats and question count.
fn campaign_loop_stats(
    dataset: &GeneratedDataset,
    threads: usize,
    incremental: bool,
) -> (Vec<LoopStat>, usize) {
    let par = if threads <= 1 { Parallelism::Sequential } else { Parallelism::Fixed(threads) };
    let config = RempConfig::default().with_parallelism(par);
    let remp = Remp::new(config);
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("default config is valid");
    session.set_incremental(incremental);
    let mut crowd = OracleCrowd::new();
    session
        .drive(&|u1, u2| dataset.is_match(u1, u2), &mut crowd)
        .expect("draining a fresh session cannot hit caller-protocol errors");
    (session.loop_stats().to_vec(), session.questions_asked())
}

/// Runs each overhead mode this many times and keeps the fastest run —
/// the standard way to cut scheduler noise out of a small timing delta.
pub const OBS_OVERHEAD_ATTEMPTS: usize = 3;

/// One full oracle campaign, returning its wall-clock and question count.
fn campaign_seconds(dataset: &GeneratedDataset, threads: usize) -> (f64, usize) {
    let par = if threads <= 1 { Parallelism::Sequential } else { Parallelism::Fixed(threads) };
    let remp = Remp::new(RempConfig::default().with_parallelism(par));
    let mut crowd = OracleCrowd::new();
    let started = Instant::now();
    let outcome =
        remp.run(&dataset.kb1, &dataset.kb2, &|u1, u2| dataset.is_match(u1, u2), &mut crowd);
    (started.elapsed().as_secs_f64(), outcome.questions_asked)
}

/// The `observability` scenario: the same campaign, best of
/// [`OBS_OVERHEAD_ATTEMPTS`] runs with instrumentation on, then off.
/// Restores the global instrumentation switch it found. Errors when the
/// two modes disagree on the question count — instrumentation must be
/// observation-only.
fn profile_obs_overhead(
    dataset: &GeneratedDataset,
    threads: usize,
) -> Result<ObsOverheadBench, String> {
    let previous = remp_obs::enabled();
    let best_of = |enabled: bool| {
        remp_obs::set_enabled(enabled);
        let mut best = f64::INFINITY;
        let mut questions = 0usize;
        for _ in 0..OBS_OVERHEAD_ATTEMPTS {
            let (secs, q) = campaign_seconds(dataset, threads);
            best = best.min(secs);
            questions = q;
        }
        (best, questions)
    };
    let (instrumented_s, instrumented_q) = best_of(true);
    let (disabled_s, disabled_q) = best_of(false);
    remp_obs::set_enabled(previous);
    if instrumented_q != disabled_q {
        return Err(format!(
            "observability equivalence violated: instrumented campaign asked {instrumented_q} \
             questions, disabled asked {disabled_q}"
        ));
    }
    Ok(ObsOverheadBench { instrumented_s, disabled_s })
}

/// The `loops` scenario: the campaign once incremental, once from
/// scratch, rows zipped per loop. Errors when the two campaigns disagree
/// on questions or loop count (they must be bit-identical).
fn profile_loops(dataset: &GeneratedDataset, threads: usize) -> Result<LoopsBench, String> {
    let (incremental_stats, incremental_questions) = campaign_loop_stats(dataset, threads, true);
    let (full_stats, full_questions) = campaign_loop_stats(dataset, threads, false);
    if incremental_questions != full_questions || incremental_stats.len() != full_stats.len() {
        return Err(format!(
            "loops scenario equivalence violated: incremental asked {incremental_questions} \
             questions over {} loops, from-scratch {full_questions} over {}",
            incremental_stats.len(),
            full_stats.len()
        ));
    }
    let rows = incremental_stats
        .iter()
        .zip(&full_stats)
        .map(|(inc, full)| LoopBenchRow {
            loop_index: inc.loop_index,
            incremental_s: inc.total_s(),
            full_s: full.total_s(),
            dirty_vertices: inc.refresh.dirty_vertices,
            recomputed_sources: inc.refresh.recomputed_sources,
        })
        .collect();
    Ok(LoopsBench { threads, questions: incremental_questions, rows, incremental_stats })
}

/// Runs the pipeline benchmark: one [`StageProfile`] per thread count on
/// a freshly generated preset, plus the `loops` scenario at the first
/// requested thread count.
///
/// Errors on an unknown preset, an empty thread list, or — the built-in
/// equivalence smoke check — when any run's question count or F1 deviates
/// from the baseline's.
pub fn run_pipeline_bench(opts: &PipelineBenchOptions) -> Result<PipelineBenchReport, String> {
    if opts.thread_counts.is_empty() {
        return Err("no thread counts requested".into());
    }
    let spec = preset_by_name(&opts.preset, opts.scale)
        .ok_or_else(|| format!("unknown preset {:?}", opts.preset))?;
    let dataset = generate(&spec);

    let runs: Vec<StageProfile> =
        opts.thread_counts.iter().map(|&t| profile_run(&dataset, t)).collect();
    let loops = profile_loops(&dataset, opts.thread_counts[0])?;
    let observability = profile_obs_overhead(&dataset, opts.thread_counts[0])?;
    let baseline = &runs[0];
    for run in &runs[1..] {
        if run.questions != baseline.questions || (run.f1 - baseline.f1).abs() > 1e-12 {
            return Err(format!(
                "thread-count equivalence violated: {} threads asked {} questions (F1 {}), \
                 {} threads asked {} (F1 {})",
                baseline.threads,
                baseline.questions,
                baseline.f1,
                run.threads,
                run.questions,
                run.f1
            ));
        }
    }

    Ok(PipelineBenchReport {
        preset: opts.preset.clone(),
        scale: opts.scale,
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        runs,
        loops,
        observability,
        baseline: None,
        peak_rss_bytes: remp_obs::sample_peak_rss(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_on_the_tiny_preset() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![1, 2] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.sequential().threads, 1);
        assert_eq!(report.parallel().threads, 2);
        assert!(report.speedup() > 0.0);
        let doc = report.to_json();
        assert!(doc.get("runs").is_some());
        assert!(doc.get("speedup_parallel_vs_sequential").is_some());
        // The loops scenario is part of every report: both campaigns ran,
        // agreed on the question count, and produced per-loop rows.
        let loops = doc.get("loops").expect("loops scenario in the report");
        assert!(loops.get("rows").and_then(Json::as_array).is_some_and(|r| !r.is_empty()));
        assert_eq!(loops.get("questions").and_then(Json::as_usize), Some(report.runs[0].questions));
        // The observability scenario is part of every report: both modes
        // ran and the overhead row is serialized.
        let obs = doc.get("observability").expect("observability scenario in the report");
        assert!(obs.get("instrumented_s").and_then(Json::as_f64).is_some_and(|s| s > 0.0));
        assert!(obs.get("disabled_s").and_then(Json::as_f64).is_some_and(|s| s > 0.0));
        assert!(obs.get("overhead_pct").and_then(Json::as_f64).is_some());
        // A generous gate always passes; an impossible one always fails.
        assert!(report.check_max_obs_overhead(f64::INFINITY).is_ok());
        assert!(report.check_max_obs_overhead(f64::NEG_INFINITY).is_err());
        // Stage names are stable — the CI gate and docs key off them.
        let names: Vec<&str> = report.runs[0].stages.iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "candidates",
                "attr_alignment",
                "sim_vectors",
                "prune",
                "graph",
                "consistency",
                "propagation",
                "inferred_sets",
                "selection"
            ]
        );
    }

    #[test]
    fn speedup_gate_requires_a_sequential_baseline() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![2, 4] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");
        // Without a 1-thread run the gate must refuse rather than compare
        // the most-parallel run against another parallel run.
        let err = report.check_min_speedup(1.0).unwrap_err();
        assert!(err.contains("sequential baseline"), "{err}");

        let with_baseline =
            run_pipeline_bench(&PipelineBenchOptions { thread_counts: vec![1, 2], ..opts })
                .expect("TINY bench runs");
        assert!(with_baseline.check_min_speedup(0.0).is_ok());
        let err = with_baseline.check_min_speedup(f64::INFINITY).unwrap_err();
        assert!(err.contains("regression gate failed"), "{err}");
    }

    #[test]
    fn thread_lists_parse() {
        assert_eq!(parse_thread_list("1,2,4").unwrap(), vec![1, 2, 4]);
        assert_eq!(parse_thread_list(" 8 ").unwrap(), vec![8]);
        assert!(parse_thread_list("1,x").is_err());
    }

    #[test]
    fn stage_speedup_lists_parse() {
        assert_eq!(
            parse_min_stage_speedup("prune=1.3, candidates=1.3,sim_vectors=1.2").unwrap(),
            vec![
                ("prune".to_owned(), 1.3),
                ("candidates".to_owned(), 1.3),
                ("sim_vectors".to_owned(), 1.2)
            ]
        );
        assert!(parse_min_stage_speedup("prune").is_err());
        assert!(parse_min_stage_speedup("prune=fast").is_err());
    }

    #[test]
    fn stage_gate_compares_against_a_frozen_baseline() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![1] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");

        // Round-trip the report through its own JSON as the "committed"
        // baseline: every stage is then exactly 1.0x.
        let doc = Json::parse(&report.to_json().to_string()).expect("report JSON parses");
        let baseline = StageBaseline::from_report_json(&doc).expect("sequential run present");
        assert_eq!(baseline.preset, "TINY");
        assert_eq!(baseline.stages.len(), report.sequential().stages.len());

        // A 1.0x-vs-itself comparison passes any floor <= 1 and fails any
        // floor > 1 (modulo f64 round-trip jitter, hence 0.5/2.0).
        report
            .check_min_stage_speedup(&baseline, &[("prune".into(), 0.5)])
            .expect("self-comparison clears a 0.5x floor");
        let err = report
            .check_min_stage_speedup(&baseline, &[("prune".into(), 2.0)])
            .expect_err("self-comparison cannot double");
        assert!(err.contains("stage prune"), "{err}");
        // Unknown stages must fail loudly, not disarm the gate.
        let err = report
            .check_min_stage_speedup(&baseline, &[("warp_drive".into(), 1.0)])
            .expect_err("unknown stage");
        assert!(err.contains("warp_drive"), "{err}");

        // The delta artifact carries one row per stage with both sides.
        let delta = report.stage_delta_json(&baseline);
        let rows = delta.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), report.sequential().stages.len());
        assert!(rows.iter().all(|r| r.get("speedup").and_then(Json::as_f64).is_some()));

        // A mismatched workload is refused outright.
        let other = StageBaseline { preset: "D-A".into(), ..baseline.clone() };
        let err = report
            .check_min_stage_speedup(&other, &[("prune".into(), 0.5)])
            .expect_err("different preset");
        assert!(err.contains("different workloads"), "{err}");

        // A gated report embeds the frozen row; re-reading such a report
        // as the next baseline yields the *frozen* times, not the
        // report's own fresh run — the baseline survives regeneration.
        let mut gated = report.clone();
        let frozen = StageBaseline { stages: vec![("prune".into(), 123.0)], ..baseline.clone() };
        gated.baseline = Some(frozen);
        let doc = Json::parse(&gated.to_json().to_string()).expect("gated report JSON parses");
        assert!(doc.get("stage_delta").is_some(), "gated report carries before/after rows");
        let reread = StageBaseline::from_report_json(&doc).expect("baseline section wins");
        assert_eq!(reread.stages, vec![("prune".to_owned(), 123.0)]);
    }

    #[test]
    fn stage_baseline_requires_a_sequential_run() {
        let opts =
            PipelineBenchOptions { preset: "TINY".into(), scale: 1.0, thread_counts: vec![2] };
        let report = run_pipeline_bench(&opts).expect("TINY bench runs");
        let doc = Json::parse(&report.to_json().to_string()).expect("report JSON parses");
        let err = StageBaseline::from_report_json(&doc).expect_err("no 1-thread run");
        assert!(err.contains("sequential"), "{err}");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let opts =
            PipelineBenchOptions { preset: "NOPE".into(), ..PipelineBenchOptions::default() };
        assert!(run_pipeline_bench(&opts).is_err());
        let empty = PipelineBenchOptions { thread_counts: vec![], ..Default::default() };
        assert!(run_pipeline_bench(&empty).is_err());
    }
}
