//! Shared machinery for the table/figure harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §5 and EXPERIMENTS.md). Datasets are the synthetic presets of
//! `remp-datasets` at laptop-friendly default scales; pass `--scale X`
//! (or set `REMP_SCALE`) to multiply them.

use remp_baselines::{corleone, hike, power, CorleoneConfig, HikeConfig, PowerConfig};
use remp_core::{evaluate_matches, prepare, PrecisionRecall, PreparedEr, Remp, RempConfig};
use remp_crowd::LabelSource;
use remp_datasets::{generate, preset_by_name, GeneratedDataset};
use remp_ergraph::PairId;
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::{select_batch, BatchStrategy};

/// The four datasets in paper order with default harness scales chosen so
/// the full suite runs in minutes.
pub const DATASETS: [(&str, f64); 4] = [("IIMB", 1.0), ("D-A", 0.5), ("I-Y", 0.35), ("D-Y", 0.3)];

/// Parses `--scale X` from argv (or `REMP_SCALE`), defaulting to 1.0.
pub fn scale_multiplier() -> f64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("REMP_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}

/// Generates a preset dataset at `base_scale × multiplier`.
pub fn load_dataset(name: &str, base_scale: f64, multiplier: f64) -> GeneratedDataset {
    let spec = preset_by_name(name, base_scale * multiplier)
        .unwrap_or_else(|| panic!("unknown preset {name}"));
    generate(&spec)
}

/// The four crowdsourced competitors of Tables III / Fig. 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// This paper's system.
    Remp,
    /// HIKE (Zhuang et al., CIKM'17).
    Hike,
    /// POWER (Chai et al., VLDB J.'18).
    Power,
    /// Corleone (Gokhale et al., SIGMOD'14).
    Corleone,
}

impl Method {
    /// All methods in the paper's column order.
    pub const ALL: [Method; 4] = [Method::Remp, Method::Hike, Method::Power, Method::Corleone];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Remp => "Remp",
            Method::Hike => "HIKE",
            Method::Power => "POWER",
            Method::Corleone => "Corleone",
        }
    }
}

/// Runs one crowdsourced method on a prepared dataset, returning
/// `(quality, questions)`. All methods consume the same retained pairs
/// (paper §VIII setup).
pub fn run_method(
    method: Method,
    dataset: &GeneratedDataset,
    prep: &PreparedEr,
    crowd: &mut dyn LabelSource,
) -> (PrecisionRecall, usize) {
    let truth = |u1, u2| dataset.is_match(u1, u2);
    match method {
        Method::Remp => {
            let remp = Remp::new(RempConfig::default());
            let out = remp.run_prepared(&dataset.kb1, &dataset.kb2, prep.clone(), &truth, crowd);
            (evaluate_matches(out.matches.iter().copied(), &dataset.gold), out.questions_asked)
        }
        Method::Hike => {
            let out = hike(
                &dataset.kb1,
                &dataset.kb2,
                &prep.candidates,
                &prep.sim_vectors,
                &prep.alignment,
                &truth,
                crowd,
                &HikeConfig::default(),
            );
            (evaluate_matches(out.matches.iter().copied(), &dataset.gold), out.questions)
        }
        Method::Power => {
            let out =
                power(&prep.candidates, &prep.sim_vectors, &truth, crowd, &PowerConfig::default());
            (evaluate_matches(out.matches.iter().copied(), &dataset.gold), out.questions)
        }
        Method::Corleone => {
            let out = corleone(
                &prep.candidates,
                &prep.sim_vectors,
                &truth,
                crowd,
                &CorleoneConfig::default(),
            );
            (evaluate_matches(out.matches.iter().copied(), &dataset.gold), out.questions)
        }
    }
}

/// All selection policies in Fig. 5 order (the core [`BatchStrategy`]
/// is used directly — the harness only adds paper-style display names).
pub const STRATEGIES: [BatchStrategy; 3] =
    [BatchStrategy::Benefit, BatchStrategy::MaxInf, BatchStrategy::MaxPr];

/// Paper-style display name for a selection policy.
pub fn strategy_label(strategy: BatchStrategy) -> &'static str {
    match strategy {
        BatchStrategy::Benefit => "Remp",
        BatchStrategy::MaxInf => "MaxInf",
        BatchStrategy::MaxPr => "MaxPr",
    }
}

/// The Fig. 5 protocol: µ = 1, ground-truth labels, pluggable selection
/// strategy; returns the F1 after each checkpoint question count.
///
/// Propagation, truth handling and stopping mirror the pipeline; the
/// isolated-pair classifier is disabled so the curves isolate selection
/// quality.
pub fn question_curve(
    dataset: &GeneratedDataset,
    prep: &PreparedEr,
    strategy: BatchStrategy,
    checkpoints: &[usize],
) -> Vec<(usize, f64)> {
    let config = RempConfig::default();
    let mut candidates = prep.candidates.clone();
    let graph = &prep.graph;
    let n = candidates.len();
    let mut resolved_match = vec![false; n];
    let mut resolved_non = vec![false; n];
    let mut seeds = prep.initial.clone();
    let max_q = checkpoints.iter().copied().max().unwrap_or(0);

    let mut curve = Vec::new();
    let mut questions = 0usize;
    let mut next_checkpoint = 0usize;

    let f1_now = |cands: &remp_ergraph::Candidates, resolved_match: &[bool]| -> f64 {
        let preds = (0..n).filter(|&i| resolved_match[i]).map(|i| candidates_pair(cands, i));
        evaluate_matches(preds, &dataset.gold).f1
    };

    'outer: while questions < max_q {
        let cons = ConsistencyTable::estimate(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            graph,
            &seeds,
            &config.parallelism,
        );
        let pg = ProbErGraph::build(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            graph,
            &cons,
            &config.propagation,
            &config.parallelism,
        );
        let inferred = inferred_sets_dijkstra(&pg, config.tau, &config.parallelism);
        let eligible: Vec<bool> = (0..n)
            .map(|i| {
                !resolved_match[i]
                    && !resolved_non[i]
                    && !graph.is_isolated_vertex(PairId::from_index(i))
            })
            .collect();
        let cands: Vec<PairId> =
            (0..n).map(PairId::from_index).filter(|p| eligible[p.index()]).collect();
        let priors: Vec<f64> = candidates.ids().map(|p| candidates.prior(p)).collect();

        let selected =
            select_batch(strategy, &cands, &inferred, &priors, &eligible, 1, &config.parallelism);
        let Some(&q) = selected.first() else { break };

        // Oracle label.
        let (u1, u2) = candidates.pair(q);
        let is_match = dataset.is_match(u1, u2);
        questions += 1;
        if is_match {
            resolved_match[q.index()] = true;
            candidates.set_prior(q, 1.0);
            for &(p, _) in inferred.inferred(q) {
                if !resolved_match[p.index()] && !resolved_non[p.index()] {
                    resolved_match[p.index()] = true;
                    candidates.set_prior(p, 1.0);
                }
            }
            seeds.extend((0..n).map(PairId::from_index).filter(|p| resolved_match[p.index()]));
            seeds.sort_unstable();
            seeds.dedup();
        } else {
            resolved_non[q.index()] = true;
            candidates.set_prior(q, 0.0);
        }

        while next_checkpoint < checkpoints.len() && questions >= checkpoints[next_checkpoint] {
            curve.push((checkpoints[next_checkpoint], f1_now(&candidates, &resolved_match)));
            next_checkpoint += 1;
        }
        if next_checkpoint >= checkpoints.len() {
            break 'outer;
        }
    }
    // Fill remaining checkpoints with the final F1 (selection exhausted).
    let final_f1 = f1_now(&candidates, &resolved_match);
    while next_checkpoint < checkpoints.len() {
        curve.push((checkpoints[next_checkpoint], final_f1));
        next_checkpoint += 1;
    }
    curve
}

fn candidates_pair(
    candidates: &remp_ergraph::Candidates,
    i: usize,
) -> (remp_kb::EntityId, remp_kb::EntityId) {
    candidates.pair(PairId::from_index(i))
}

/// Prepares a dataset with the default configuration (shared stage 1).
pub fn prepare_default(dataset: &GeneratedDataset) -> PreparedEr {
    prepare(&dataset.kb1, &dataset.kb2, &RempConfig::default())
}

/// Formats a ratio as the paper's percent style.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        assert_eq!(scale_multiplier(), 1.0);
    }

    #[test]
    fn load_all_presets_small() {
        for (name, _) in DATASETS {
            let d = load_dataset(name, 0.05, 1.0);
            assert!(d.kb1.num_entities() > 0, "{name}");
        }
    }

    #[test]
    fn question_curve_is_monotone_under_oracle() {
        let d = load_dataset("IIMB", 0.2, 1.0);
        let prep = prepare_default(&d);
        let curve = question_curve(&d, &prep, BatchStrategy::Benefit, &[1, 2, 4, 8]);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "oracle F1 must not drop: {curve:?}");
        }
    }

    #[test]
    fn methods_all_run_on_tiny_data() {
        let d = load_dataset("IIMB", 0.1, 1.0);
        let prep = prepare_default(&d);
        for m in Method::ALL {
            let mut crowd = remp_crowd::OracleCrowd::new();
            let (eval, _q) = run_method(m, &d, &prep, &mut crowd);
            assert!(eval.f1 >= 0.0, "{}", m.name());
        }
    }
}
