//! Pipeline-parallelism benchmark: per-stage wall-clock at several thread
//! counts, plus a full oracle-driven campaign per count.
//!
//! Writes `BENCH_pipeline.json` in the working directory. `rempctl bench`
//! wraps the same engine (`remp_core::profile`), so CI and local users
//! invoke the measurement identically.
//!
//! ```sh
//! cargo run --release -p remp-bench --bin bench_pipeline -- \
//!     [--preset D-A] [--scale 8] [--threads 1,2,4] \
//!     [--out BENCH_pipeline.json] [--min-speedup 0.8]
//! ```
//!
//! With `--min-speedup X` the process exits non-zero when the end-to-end
//! speedup of the most-parallel run over the sequential run falls below
//! `X` — the CI regression gate (use a value below 1.0 to tolerate runner
//! noise and small hosts). The gate requires a 1-thread run in
//! `--threads` as the baseline.

use std::process::ExitCode;

use remp_core::profile::{parse_thread_list, run_pipeline_bench, PipelineBenchOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = PipelineBenchOptions::default();
    let mut out = String::from("BENCH_pipeline.json");
    let mut min_speedup: Option<f64> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().map(|v| v.to_owned()).ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--preset" => value("--preset").map(|v| opts.preset = v),
            "--scale" => value("--scale").and_then(|v| {
                v.parse().map(|s| opts.scale = s).map_err(|e| format!("--scale: {e}"))
            }),
            "--threads" => value("--threads")
                .and_then(|v| parse_thread_list(&v).map(|t| opts.thread_counts = t)),
            "--out" => value("--out").map(|v| out = v),
            "--min-speedup" => value("--min-speedup").and_then(|v| {
                v.parse().map(|s| min_speedup = Some(s)).map_err(|e| format!("--min-speedup: {e}"))
            }),
            other => Err(format!("unknown option {other:?}")),
        };
        if let Err(message) = result {
            eprintln!("bench_pipeline: {message}");
            return ExitCode::from(2);
        }
    }

    match run_and_report(&opts, &out, min_speedup) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_pipeline: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_and_report(
    opts: &PipelineBenchOptions,
    out: &str,
    min_speedup: Option<f64>,
) -> Result<(), String> {
    let report = run_pipeline_bench(opts)?;
    std::fs::write(out, report.to_json().to_string()).map_err(|e| format!("writing {out}: {e}"))?;
    for line in report.summary_lines() {
        println!("{line}");
    }
    println!("  wrote {out}");
    if let Some(floor) = min_speedup {
        report.check_min_speedup(floor)?;
    }
    Ok(())
}
