//! Pipeline-parallelism benchmark: per-stage wall-clock at several thread
//! counts, plus a full oracle-driven campaign per count.
//!
//! Writes `BENCH_pipeline.json` in the working directory. `rempctl bench`
//! wraps the same engine (`remp_core::profile`), so CI and local users
//! invoke the measurement identically.
//!
//! ```sh
//! cargo run --release -p remp-bench --bin bench_pipeline -- \
//!     [--preset D-A] [--scale 8] [--threads 1,2,4] \
//!     [--out BENCH_pipeline.json] [--min-speedup 0.8] \
//!     [--baseline BENCH_pipeline.json] \
//!     [--min-stage-speedup prune=1.3,candidates=1.3] \
//!     [--stage-delta-out BENCH_stage_delta.json]
//! ```
//!
//! With `--min-speedup X` the process exits non-zero when the end-to-end
//! speedup of the most-parallel run over the sequential run falls below
//! `X` — the CI regression gate (use a value below 1.0 to tolerate runner
//! noise and small hosts). The gate requires a 1-thread run in
//! `--threads` as the baseline.
//!
//! `--baseline PATH` reads a previously committed report (before `--out`
//! overwrites it), prints per-stage before/after rows of the sequential
//! run and writes them to `--stage-delta-out`; `--min-stage-speedup`
//! turns listed stages into hard floors — the per-stage CI gate.

use std::process::ExitCode;

use remp_core::profile::{
    parse_min_stage_speedup, parse_thread_list, run_pipeline_bench, PipelineBenchOptions,
    StageBaseline,
};
use remp_json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = PipelineBenchOptions::default();
    let mut out = String::from("BENCH_pipeline.json");
    let mut min_speedup: Option<f64> = None;
    let mut baseline_path: Option<String> = None;
    let mut floors: Option<Vec<(String, f64)>> = None;
    let mut delta_out = String::from("BENCH_stage_delta.json");

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().map(|v| v.to_owned()).ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--preset" => value("--preset").map(|v| opts.preset = v),
            "--scale" => value("--scale").and_then(|v| {
                v.parse().map(|s| opts.scale = s).map_err(|e| format!("--scale: {e}"))
            }),
            "--threads" => value("--threads")
                .and_then(|v| parse_thread_list(&v).map(|t| opts.thread_counts = t)),
            "--out" => value("--out").map(|v| out = v),
            "--min-speedup" => value("--min-speedup").and_then(|v| {
                v.parse().map(|s| min_speedup = Some(s)).map_err(|e| format!("--min-speedup: {e}"))
            }),
            "--baseline" => value("--baseline").map(|v| baseline_path = Some(v)),
            "--min-stage-speedup" => value("--min-stage-speedup")
                .and_then(|v| parse_min_stage_speedup(&v).map(|f| floors = Some(f))),
            "--stage-delta-out" => value("--stage-delta-out").map(|v| delta_out = v),
            other => Err(format!("unknown option {other:?}")),
        };
        if let Err(message) = result {
            eprintln!("bench_pipeline: {message}");
            return ExitCode::from(2);
        }
    }
    if floors.is_some() && baseline_path.is_none() {
        eprintln!("bench_pipeline: --min-stage-speedup needs --baseline");
        return ExitCode::from(2);
    }

    match run_and_report(&opts, &out, min_speedup, baseline_path.as_deref(), &floors, &delta_out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_pipeline: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_and_report(
    opts: &PipelineBenchOptions,
    out: &str,
    min_speedup: Option<f64>,
    baseline_path: Option<&str>,
    floors: &Option<Vec<(String, f64)>>,
    delta_out: &str,
) -> Result<(), String> {
    // Read the baseline before the fresh report lands on --out — CI points
    // both at the committed BENCH_pipeline.json.
    let baseline = baseline_path
        .map(|path| {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let doc = Json::parse(&src).map_err(|e| format!("{path}: {e}"))?;
            StageBaseline::from_report_json(&doc).map_err(|e| format!("{path}: {e}"))
        })
        .transpose()?;
    let mut report = run_pipeline_bench(opts)?;
    report.baseline = baseline.clone();
    std::fs::write(out, report.to_json().to_string()).map_err(|e| format!("writing {out}: {e}"))?;
    for line in report.summary_lines() {
        println!("{line}");
    }
    println!("  wrote {out}");
    if let Some(baseline) = &baseline {
        std::fs::write(delta_out, report.stage_delta_json(baseline).to_string())
            .map_err(|e| format!("writing {delta_out}: {e}"))?;
        println!("  sequential stages vs baseline ({}):", baseline.preset);
        for (stage, baseline_s, current_s, speedup) in report.stage_delta(baseline) {
            match (baseline_s, speedup) {
                (Some(before), Some(speedup)) => {
                    println!("    {stage}: {before:.4}s -> {current_s:.4}s ({speedup:.2}x)")
                }
                _ => println!("    {stage}: (new) -> {current_s:.4}s"),
            }
        }
        println!("  wrote {delta_out}");
    }
    if let Some(floor) = min_speedup {
        report.check_min_speedup(floor)?;
    }
    if let (Some(baseline), Some(floors)) = (&baseline, floors) {
        report.check_min_stage_speedup(baseline, floors)?;
        println!("  per-stage regression gate passed ({} floors)", floors.len());
    }
    Ok(())
}
