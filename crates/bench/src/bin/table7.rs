//! Table VII: F1-score, number of questions and number of loops with
//! different per-round question thresholds µ ∈ {1, 5, 10, 20} (ground
//! truths as labels).
//!
//! Expected shape: F1 stays stable across µ; #Q grows mildly with µ
//! (batched questions overshoot); #L drops sharply — the latency/cost
//! trade-off the paper highlights.

use remp_bench::{load_dataset, pct, prepare_default, scale_multiplier, DATASETS};
use remp_core::{evaluate_matches, Remp, RempConfig};
use remp_crowd::OracleCrowd;

fn main() {
    let mult = scale_multiplier();
    let mus = [1usize, 5, 10, 20];
    println!("Table VII: F1 / #Q / #L vs question threshold µ (oracle labels)\n");
    print!("{:>6} |", "");
    for mu in mus {
        print!("          µ = {mu:<2}        |");
    }
    println!();
    print!("{:>6} |", "");
    for _ in mus {
        print!("  {:>6} {:>5} {:>5}  |", "F1", "#Q", "#L");
    }
    println!();
    println!("{}", "-".repeat(8 + 24 * mus.len()));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        print!("{name:>6} |");
        for mu in mus {
            let remp = Remp::new(RempConfig::default().with_mu(mu));
            let mut crowd = OracleCrowd::new();
            let out = remp.run_prepared(
                &dataset.kb1,
                &dataset.kb2,
                prep.clone(),
                &|u1, u2| dataset.is_match(u1, u2),
                &mut crowd,
            );
            let eval = evaluate_matches(out.matches.iter().copied(), &dataset.gold);
            print!("  {:>6} {:>5} {:>5}  |", pct(eval.f1), out.questions_asked, out.loops);
        }
        println!();
    }
}
