//! Table III: F1-score and number of questions with (simulated) real
//! workers — Remp vs HIKE vs POWER vs Corleone on all four datasets.
//!
//! The paper's MTurk pool is substituted by `SimulatedCrowd` (qualities in
//! [0.8, 0.99], 5 labels per question; DESIGN.md §2). Expected shape:
//! Remp has the best F1 with by far the fewest questions; Corleone asks
//! the most.

use remp_bench::{
    load_dataset, pct, prepare_default, run_method, scale_multiplier, Method, DATASETS,
};
use remp_crowd::SimulatedCrowd;

fn main() {
    let mult = scale_multiplier();
    println!("Table III: F1-score and number of questions with real workers");
    println!("(simulated mixed-quality pool; 5 labels/question)\n");
    println!(
        "{:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6}",
        "", "Remp", "#Q", "HIKE", "#Q", "POWER", "#Q", "Corleone", "#Q"
    );
    println!("{}", "-".repeat(80));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        let mut cells = Vec::new();
        for method in Method::ALL {
            // Fresh crowd with a shared seed: the same worker pool answers
            // every method (the paper reuses labels across approaches).
            let mut crowd = SimulatedCrowd::paper_default(0xC0FFEE);
            let (eval, questions) = run_method(method, &dataset, &prep, &mut crowd);
            cells.push((eval.f1, questions));
        }
        print!("{name:>6} |");
        for (f1, q) in cells {
            print!(" {:>8} {q:>6} |", pct(f1));
        }
        println!();
    }
}
