//! Table VIII: F1-score of inference on isolated entity pairs — the
//! isolated-match share per dataset, full Remp's F1, and the F1 of the
//! random-forest classifier alone on the isolated gold subset.
//!
//! Expected shape: tiny isolated shares on IIMB/D-A make the classifier
//! numbers noisy/poor; on I-Y/D-Y (28% / 60% isolated) it approaches full
//! Remp.

use std::collections::HashSet;

use remp_bench::{load_dataset, pct, prepare_default, scale_multiplier, DATASETS};
use remp_core::{classify_isolated, evaluate_matches, Remp, RempConfig};
use remp_crowd::SimulatedCrowd;
use remp_kb::EntityId;

fn main() {
    let mult = scale_multiplier();
    println!("Table VIII: F1 of inference on isolated entity pairs\n");
    println!("{:>6} | {:>16} | {:>8} | {:>13}", "", "isolated matches", "Remp", "random forest");
    println!("{}", "-".repeat(55));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        let config = RempConfig::default();

        // Isolated gold matches: gold pairs whose retained vertex has no
        // ER-graph edges (plus gold pairs that never became candidates are
        // unreachable for propagation too, but the paper's percentages are
        // about the ER graph, so we report the in-graph share).
        let isolated_gold: HashSet<(EntityId, EntityId)> = prep
            .candidates
            .ids()
            .filter(|&p| prep.graph.is_isolated_vertex(p))
            .map(|p| prep.candidates.pair(p))
            .filter(|&(u1, u2)| dataset.is_match(u1, u2))
            .collect();
        let share = isolated_gold.len() as f64 / dataset.num_gold().max(1) as f64;

        // Full Remp with the simulated "real" crowd.
        let remp = Remp::new(config.clone());
        let mut crowd = SimulatedCrowd::paper_default(0xAB1E);
        let out = remp.run_prepared(
            &dataset.kb1,
            &dataset.kb2,
            prep.clone(),
            &|u1, u2| dataset.is_match(u1, u2),
            &mut crowd,
        );
        let remp_eval = evaluate_matches(out.matches.iter().copied(), &dataset.gold);

        // Random forest alone: rerun the loop without the classifier so
        // the isolated pairs are still unresolved, then classify them.
        let remp_bare = Remp::new(config.clone().without_classifier());
        let mut crowd = SimulatedCrowd::paper_default(0xAB1E);
        let bare = remp_bare.run_prepared(
            &dataset.kb1,
            &dataset.kb2,
            prep.clone(),
            &|u1, u2| dataset.is_match(u1, u2),
            &mut crowd,
        );
        let predicted = classify_isolated(
            &dataset.kb1,
            &dataset.kb2,
            &prep.candidates,
            &prep.graph,
            &prep.sim_vectors,
            &prep.alignment,
            &bare.resolutions,
            &config,
        );
        // Evaluate only the *isolated* predictions against isolated gold.
        let rf_eval = evaluate_matches(
            predicted
                .iter()
                .filter(|&&p| prep.graph.is_isolated_vertex(p))
                .map(|&p| prep.candidates.pair(p)),
            &isolated_gold,
        );

        println!(
            "{:>6} | {:>16} | {:>8} | {:>13}",
            name,
            pct(share),
            pct(remp_eval.f1),
            pct(rf_eval.f1),
        );
    }
}
