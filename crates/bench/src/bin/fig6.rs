//! Figure 6: running time of Algorithm 1 (pruning) over 25–100% of the
//! candidate matches and of Algorithms 2 (inferred-set discovery) and 3
//! (question selection) over 25–100% of the retained matches, on the D-Y
//! preset.
//!
//! Expected shape: Algorithms 1 and 2 grow roughly linearly in the pair
//! count; Algorithm 3's growth is sublinear when inferred sets stop
//! growing.

use std::time::Instant;

use remp_bench::{load_dataset, scale_multiplier};
use remp_core::RempConfig;
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune, Candidates,
    ErGraph, PairId,
};
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::select_questions;

fn main() {
    let mult = scale_multiplier();
    let dataset = load_dataset("D-Y", 0.3, mult);
    let config = RempConfig::default();

    let candidates = generate_candidates(
        &dataset.kb1,
        &dataset.kb2,
        config.label_sim_threshold,
        &config.parallelism,
    );
    let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);
    let alignment =
        match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, &config.attr);
    let vectors = build_sim_vectors(
        &dataset.kb1,
        &dataset.kb2,
        &candidates,
        &alignment,
        config.literal_threshold,
        &config.parallelism,
    );

    println!("Figure 6: running time (ms) vs portion of entity pairs (D-Y)\n");
    println!(
        "{:>8} | {:>12} | {:>12} {:>12}",
        "portion", "Alg.1 prune", "Alg.2 infer", "Alg.3 select"
    );
    println!("{}", "-".repeat(55));

    for portion in [0.25, 0.5, 0.75, 1.0] {
        // --- Algorithm 1 on a portion of the candidate matches. ---
        let take = (candidates.len() as f64 * portion).round() as usize;
        let subset_ids: Vec<PairId> = candidates.ids().take(take).collect();
        let (sub_cands, mapping) = candidates.restrict(&subset_ids);
        let mut sub_vectors = vec![remp_simil::SimVec::new(Vec::new()); sub_cands.len()];
        for &old in &subset_ids {
            sub_vectors[mapping[&old].index()] = vectors[old.index()].clone();
        }
        let t1 = Instant::now();
        let retained = prune(&sub_cands, &sub_vectors, config.knn_k, &config.parallelism);
        let alg1_ms = t1.elapsed().as_secs_f64() * 1e3;

        // --- Algorithms 2 and 3 on the corresponding retained portion. ---
        let (ret_cands, ret_map) = sub_cands.restrict(&retained);
        let mut _ret_vectors = vec![remp_simil::SimVec::new(Vec::new()); ret_cands.len()];
        for &old in &retained {
            _ret_vectors[ret_map[&old].index()] = sub_vectors[old.index()].clone();
        }
        let graph = ErGraph::build(&dataset.kb1, &dataset.kb2, &ret_cands);
        let seeds: Vec<PairId> = seeds_of(&dataset, &ret_cands);
        let cons = ConsistencyTable::estimate(
            &dataset.kb1,
            &dataset.kb2,
            &ret_cands,
            &graph,
            &seeds,
            &config.parallelism,
        );
        let pg = ProbErGraph::build(
            &dataset.kb1,
            &dataset.kb2,
            &ret_cands,
            &graph,
            &cons,
            &config.propagation,
            &config.parallelism,
        );
        let t2 = Instant::now();
        let inferred = inferred_sets_dijkstra(&pg, config.tau, &config.parallelism);
        let alg2_ms = t2.elapsed().as_secs_f64() * 1e3;

        let priors: Vec<f64> = ret_cands.ids().map(|p| ret_cands.prior(p)).collect();
        let eligible = vec![true; ret_cands.len()];
        let all: Vec<PairId> = ret_cands.ids().collect();
        let t3 = Instant::now();
        let _q =
            select_questions(&all, &inferred, &priors, &eligible, config.mu, &config.parallelism);
        let alg3_ms = t3.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>7.0}% | {:>12.1} | {:>12.1} {:>12.1}",
            100.0 * portion,
            alg1_ms,
            alg2_ms,
            alg3_ms
        );
    }
}

/// Exact-label seeds within a candidate subset.
fn seeds_of(dataset: &remp_datasets::GeneratedDataset, cands: &Candidates) -> Vec<PairId> {
    cands
        .iter()
        .filter(|&(_, (u1, u2))| dataset.kb1.label(u1) == dataset.kb2.label(u2))
        .map(|(id, _)| id)
        .collect()
}
