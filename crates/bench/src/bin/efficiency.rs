//! Efficiency analysis (§VIII-B text): average running times of
//! Algorithm 1 (pruning), Algorithm 2 (inferred-set discovery) and
//! Algorithm 3 (question selection) on each dataset, over 3 runs.
//!
//! Expected shape: Algorithm 1 dominates (similarity-vector work);
//! Algorithms 2 and 3 are much cheaper on the retained graphs.

use std::time::Instant;

use remp_bench::{load_dataset, scale_multiplier, DATASETS};
use remp_core::{prepare, RempConfig};
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune, PairId,
};
use remp_propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp_selection::select_questions;

fn main() {
    let mult = scale_multiplier();
    let runs = 3;
    println!("Efficiency: average running time (ms) of Algorithms 1–3 ({runs} runs)\n");
    println!("{:>6} | {:>12} {:>12} {:>12}", "", "Alg.1", "Alg.2", "Alg.3");
    println!("{}", "-".repeat(50));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let config = RempConfig::default();

        // Shared inputs.
        let candidates = generate_candidates(
            &dataset.kb1,
            &dataset.kb2,
            config.label_sim_threshold,
            &config.parallelism,
        );
        let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);
        let alignment =
            match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, &config.attr);

        let mut alg1 = 0.0;
        for _ in 0..runs {
            let t = Instant::now();
            // Algorithm 1's cost includes building the similarity vectors
            // (the paper notes vector construction dominates).
            let vectors = build_sim_vectors(
                &dataset.kb1,
                &dataset.kb2,
                &candidates,
                &alignment,
                config.literal_threshold,
                &config.parallelism,
            );
            let _ = prune(&candidates, &vectors, config.knn_k, &config.parallelism);
            alg1 += t.elapsed().as_secs_f64() * 1e3;
        }

        let prep = prepare(&dataset.kb1, &dataset.kb2, &config);
        let cons = ConsistencyTable::estimate(
            &dataset.kb1,
            &dataset.kb2,
            &prep.candidates,
            &prep.graph,
            &prep.initial,
            &config.parallelism,
        );
        let pg = ProbErGraph::build(
            &dataset.kb1,
            &dataset.kb2,
            &prep.candidates,
            &prep.graph,
            &cons,
            &config.propagation,
            &config.parallelism,
        );
        let mut alg2 = 0.0;
        for _ in 0..runs {
            let t = Instant::now();
            let _ = inferred_sets_dijkstra(&pg, config.tau, &config.parallelism);
            alg2 += t.elapsed().as_secs_f64() * 1e3;
        }

        let inferred = inferred_sets_dijkstra(&pg, config.tau, &config.parallelism);
        let priors: Vec<f64> = prep.candidates.ids().map(|p| prep.candidates.prior(p)).collect();
        let eligible = vec![true; prep.candidates.len()];
        let all: Vec<PairId> = prep.candidates.ids().collect();
        let mut alg3 = 0.0;
        for _ in 0..runs {
            let t = Instant::now();
            let _ = select_questions(
                &all,
                &inferred,
                &priors,
                &eligible,
                config.mu,
                &config.parallelism,
            );
            alg3 += t.elapsed().as_secs_f64() * 1e3;
        }

        println!(
            "{:>6} | {:>12.1} {:>12.1} {:>12.1}",
            name,
            alg1 / runs as f64,
            alg2 / runs as f64,
            alg3 / runs as f64
        );
    }
}
