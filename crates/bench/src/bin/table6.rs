//! Table VI: F1-score w.r.t. varying portions of seed matches (20–80%) —
//! Remp's propagation module vs the collective non-crowd baselines PARIS
//! and SiGMa, averaged over 5 repetitions (the paper's protocol; the
//! isolated-pair classifier is disabled).
//!
//! Expected shape: Remp leads at every seed level on the relational
//! datasets; the gap narrows as seeds saturate.

use remp_baselines::{paris, sigma, ParisConfig, SigmaConfig};
use remp_bench::{load_dataset, pct, prepare_default, scale_multiplier, DATASETS};
use remp_core::{evaluate_matches, propagation_only_f1, RempConfig};
use remp_ergraph::PairId;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mult = scale_multiplier();
    let portions = [0.2, 0.4, 0.6, 0.8];
    let repeats = 5;
    println!("Table VI: F1 (%) w.r.t. varying portions of seed matches\n");
    println!("{:>6} {:>8} | {:>6} {:>6} {:>6} {:>6}", "", "method", "20%", "40%", "60%", "80%");
    println!("{}", "-".repeat(50));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        let config = RempConfig::default().without_classifier();

        // Gold pairs that survived pruning — the seed sampling frame.
        let gold_retained: Vec<PairId> = prep
            .candidates
            .ids()
            .filter(|&p| {
                let (u1, u2) = prep.candidates.pair(p);
                dataset.is_match(u1, u2)
            })
            .collect();

        for method in ["Remp", "PARIS", "SiGMa"] {
            print!("{name:>6} {method:>8} |");
            for portion in portions {
                let mut total = 0.0;
                for rep in 0..repeats {
                    let f1 = match method {
                        "Remp" => propagation_only_f1(&dataset, &config, portion, rep as u64).f1,
                        _ => {
                            let mut pool = gold_retained.clone();
                            let mut rng = StdRng::seed_from_u64(rep as u64);
                            pool.shuffle(&mut rng);
                            let n = (pool.len() as f64 * portion).round() as usize;
                            let seeds: Vec<PairId> = pool.into_iter().take(n).collect();
                            let out = if method == "PARIS" {
                                paris(
                                    &dataset.kb1,
                                    &dataset.kb2,
                                    &prep.candidates,
                                    &prep.graph,
                                    &seeds,
                                    &ParisConfig::default(),
                                )
                            } else {
                                sigma(
                                    &prep.candidates,
                                    &prep.graph,
                                    &seeds,
                                    &SigmaConfig::default(),
                                )
                            };
                            evaluate_matches(out.matches.iter().copied(), &dataset.gold).f1
                        }
                    };
                    total += f1;
                }
                print!(" {:>6}", pct(total / repeats as f64));
            }
            println!();
        }
        println!("{}", "-".repeat(50));
    }
}
