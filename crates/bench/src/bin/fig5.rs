//! Figure 5: F1-score of Remp's benefit-driven selection vs the MaxInf
//! and MaxPr heuristics w.r.t. the number of questions (µ = 1, ground
//! truths as labels).
//!
//! Expected shape: Remp dominates at every question count; MaxPr plateaus
//! lowest (it ignores inference power), MaxInf wastes questions on likely
//! non-matches.

use remp_bench::{
    load_dataset, prepare_default, question_curve, scale_multiplier, strategy_label, DATASETS,
    STRATEGIES,
};

fn main() {
    let mult = scale_multiplier();
    let checkpoints = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    println!("Figure 5: F1 (%) vs number of questions (µ = 1, oracle labels)\n");

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        println!("=== {name} ===");
        print!("{:>8} |", "#Q");
        for c in checkpoints {
            print!(" {c:>5}");
        }
        println!();
        println!("{}", "-".repeat(10 + 6 * checkpoints.len()));
        for strategy in STRATEGIES {
            let curve = question_curve(&dataset, &prep, strategy, &checkpoints);
            print!("{:>8} |", strategy_label(strategy));
            for (_, f1) in curve {
                print!(" {:>5.1}", 100.0 * f1);
            }
            println!();
        }
        println!();
    }
}
