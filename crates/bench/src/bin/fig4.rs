//! Figure 4: pair completeness of the retained matches w.r.t. the k of
//! the k-nearest-neighbour pruning (k ∈ {1, 4, 7, 10, 13}).
//!
//! Expected shape: PC rises with k and converges quickly on IIMB/D-A/I-Y,
//! more slowly on D-Y (few shared attributes weaken the partial order).

use remp_bench::{load_dataset, scale_multiplier, DATASETS};
use remp_core::{pair_completeness, RempConfig};
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune,
};

fn main() {
    let mult = scale_multiplier();
    let ks = [1usize, 4, 7, 10, 13];
    println!("Figure 4: pair completeness (%) w.r.t. k-nearest neighbours\n");
    print!("{:>6} |", "k");
    for k in ks {
        print!(" {k:>6}");
    }
    println!();
    println!("{}", "-".repeat(45));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let config = RempConfig::default();
        let candidates = generate_candidates(
            &dataset.kb1,
            &dataset.kb2,
            config.label_sim_threshold,
            &config.parallelism,
        );
        let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);
        let alignment =
            match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, &config.attr);
        let vectors = build_sim_vectors(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            &alignment,
            config.literal_threshold,
            &config.parallelism,
        );

        print!("{name:>6} |");
        for k in ks {
            let retained = prune(&candidates, &vectors, k, &config.parallelism);
            let pc = pair_completeness(retained.iter().map(|&p| candidates.pair(p)), &dataset.gold);
            print!(" {:>6.1}", 100.0 * pc);
        }
        println!();
    }
}
