//! Ingestion-throughput benchmark: text parse vs binary snapshot load.
//!
//! Exports a preset as N-Triples, then measures (best of several runs)
//! how fast the text parser and the `.rkb` snapshot loader bring the
//! same KBs back into memory. Results go to `BENCH_ingest.json` in the
//! working directory — the snapshot loader must beat the text parser by
//! a wide margin, since skipping the re-parse is the point of the
//! format.
//!
//! ```sh
//! cargo run --release -p remp-bench --bin bench_ingest [-- --scale X]
//! ```

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use remp_bench::scale_multiplier;
use remp_datasets::{generate, preset_by_name};
use remp_ingest::{export_dataset, load_kb, write_snapshot, ExportFormat};
use remp_json::Json;

const PRESET: &str = "D-A";
const BASE_SCALE: f64 = 1.0;
const RUNS: usize = 3;

/// One measured loader: total bytes and best-of-`RUNS` wall time.
struct Measurement {
    bytes: u64,
    seconds: f64,
}

impl Measurement {
    fn mb_per_s(&self) -> f64 {
        (self.bytes as f64 / 1e6) / self.seconds
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bytes".into(), Json::from(self.bytes)),
            ("seconds".into(), Json::from(self.seconds)),
            ("mb_per_s".into(), Json::from(self.mb_per_s())),
        ])
    }
}

/// Best-of-N wall time for loading the two KB files.
fn measure(paths: &[PathBuf]) -> Measurement {
    let bytes = paths.iter().map(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0)).sum();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let started = Instant::now();
        for path in paths {
            let loaded = load_kb(path, "bench").expect("benchmark inputs are well-formed");
            std::hint::black_box(loaded.kb.num_entities());
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    Measurement { bytes, seconds: best }
}

fn main() {
    let scale = BASE_SCALE * scale_multiplier();
    let spec = preset_by_name(PRESET, scale).expect("known preset");
    let dataset = generate(&spec);

    let dir = std::env::temp_dir().join(format!("remp-bench-ingest-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let paths = export_dataset(&dataset, &dir, ExportFormat::NTriples).expect("export");
    let text_files = vec![paths.kb1.clone(), paths.kb2.clone()];

    let snapshots: Vec<PathBuf> = [(&paths.kb1, "kb1.rkb"), (&paths.kb2, "kb2.rkb")]
        .into_iter()
        .map(|(src, name)| {
            let loaded = load_kb(src, name).expect("parse exported text");
            let out = dir.join(name);
            write_snapshot(&loaded.kb, &loaded.external_ids, &out).expect("write snapshot");
            out
        })
        .collect();

    let text = measure(&text_files);
    let snapshot = measure(&snapshots);
    let speedup = text.seconds / snapshot.seconds;

    let report = Json::Obj(vec![
        ("benchmark".into(), Json::from("ingest")),
        ("dataset".into(), Json::from(PRESET)),
        ("scale".into(), Json::from(scale)),
        (
            "kb".into(),
            Json::Obj(vec![
                (
                    "entities".into(),
                    Json::from(dataset.kb1.num_entities() + dataset.kb2.num_entities()),
                ),
                (
                    "attr_triples".into(),
                    Json::from(dataset.kb1.num_attr_triples() + dataset.kb2.num_attr_triples()),
                ),
                (
                    "rel_triples".into(),
                    Json::from(dataset.kb1.num_rel_triples() + dataset.kb2.num_rel_triples()),
                ),
            ]),
        ),
        ("text_parse".into(), text.to_json()),
        ("snapshot_load".into(), snapshot.to_json()),
        ("snapshot_speedup".into(), Json::from(speedup)),
    ]);
    fs::write("BENCH_ingest.json", report.to_string()).expect("write BENCH_ingest.json");

    println!("ingest benchmark ({PRESET} at scale {scale}):");
    println!(
        "  text parse    : {:>8.1} MB/s ({:.1} MB in {:.3}s)",
        text.mb_per_s(),
        text.bytes as f64 / 1e6,
        text.seconds
    );
    println!(
        "  snapshot load : {:>8.1} MB/s ({:.1} MB in {:.3}s)",
        snapshot.mb_per_s(),
        snapshot.bytes as f64 / 1e6,
        snapshot.seconds
    );
    println!("  speedup       : {speedup:.1}× (wall time, same KBs)");
    println!("  wrote BENCH_ingest.json");

    let _ = fs::remove_dir_all(&dir);
}
