//! Table IV: effectiveness of attribute matching on I-Y (4 reference
//! matches) and D-Y (19 reference matches), with and without the global
//! 1:1 constraint.
//!
//! Expected shape: the 1:1 constraint lifts precision substantially; I-Y
//! is near-perfect, D-Y recall is limited (rare attributes and divergent
//! value encodings).

use remp_bench::{load_dataset, pct, scale_multiplier, DATASETS};
use remp_core::RempConfig;
use remp_ergraph::{generate_candidates, initial_matches, match_attributes, AttrMatchConfig};

fn main() {
    let mult = scale_multiplier();
    println!("Table IV: effectiveness of attribute matching\n");
    println!(
        "{:>6} {:>7} | {:>9} {:>7} {:>7} | {:>9} {:>7} {:>7}",
        "", "#Ref", "P(1:1)", "R", "F1", "P(w/o)", "R", "F1"
    );
    println!("{}", "-".repeat(70));

    for (name, base) in DATASETS {
        // The paper evaluates I-Y and D-Y only ("not necessary to match
        // attributes for the other two"); we print all four for context.
        let dataset = load_dataset(name, base, mult);
        let config = RempConfig::default();
        let candidates = generate_candidates(
            &dataset.kb1,
            &dataset.kb2,
            config.label_sim_threshold,
            &config.parallelism,
        );
        let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);

        let gold: Vec<(String, String)> = dataset.gold_attr_matches.clone();
        let eval = |attr_config: &AttrMatchConfig| {
            let alignment =
                match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, attr_config);
            let predicted: Vec<(String, String)> = alignment
                .pairs
                .iter()
                .map(|&(a1, a2, _)| {
                    (dataset.kb1.attr_name(a1).to_owned(), dataset.kb2.attr_name(a2).to_owned())
                })
                .collect();
            let correct = predicted.iter().filter(|p| gold.contains(p)).count();
            let p =
                if predicted.is_empty() { 0.0 } else { correct as f64 / predicted.len() as f64 };
            let r = if gold.is_empty() { 0.0 } else { correct as f64 / gold.len() as f64 };
            let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
            (p, r, f1)
        };

        let strict = eval(&AttrMatchConfig::default());
        let loose = eval(&AttrMatchConfig { one_to_one: false, ..AttrMatchConfig::default() });
        println!(
            "{:>6} {:>7} | {:>9} {:>7} {:>7} | {:>9} {:>7} {:>7}",
            name,
            gold.len(),
            pct(strict.0),
            pct(strict.1),
            pct(strict.2),
            pct(loose.0),
            pct(loose.1),
            pct(loose.2),
        );
    }
}
