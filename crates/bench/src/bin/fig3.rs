//! Figure 3: F1-score and number of questions under simulated workers of
//! varying error rates (0.05 / 0.15 / 0.25), 4 datasets × 4 methods.
//!
//! Expected shape: all methods stay roughly stable (5 redundant labels
//! absorb the noise); Remp keeps the best F1 with the fewest questions.

use remp_bench::{
    load_dataset, pct, prepare_default, run_method, scale_multiplier, Method, DATASETS,
};
use remp_crowd::FixedErrorCrowd;

fn main() {
    let mult = scale_multiplier();
    println!("Figure 3: F1 and #Q vs simulated worker error rate\n");
    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let prep = prepare_default(&dataset);
        println!("=== {name} ===");
        println!(
            "{:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6} | {:>8} {:>6}",
            "error", "Remp", "#Q", "HIKE", "#Q", "POWER", "#Q", "Corleone", "#Q"
        );
        for error_rate in [0.05, 0.15, 0.25] {
            print!("{error_rate:>6.2} |");
            for method in Method::ALL {
                let mut crowd = FixedErrorCrowd::new(error_rate, 5, 0xF163);
                let (eval, questions) = run_method(method, &dataset, &prep, &mut crowd);
                print!(" {:>8} {questions:>6} |", pct(eval.f1));
            }
            println!();
        }
        println!();
    }
}
