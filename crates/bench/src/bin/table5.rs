//! Table V: effectiveness of partial-order based pruning (k = 4) —
//! candidate pairs with PC, retained pairs with RR and PC, ER-graph edges
//! and the error rate of the optimal monotone classifier.
//!
//! Expected shape: high PC everywhere except D-Y (missing labels cap it);
//! large RR on the big datasets; near-zero monotone error rates (the
//! partial order is only trusted within blocks).

use remp_bench::{load_dataset, pct, scale_multiplier, DATASETS};
use remp_core::{pair_completeness, reduction_ratio, RempConfig};
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, monotone_error_rate,
    prune, ErGraph,
};

fn main() {
    let mult = scale_multiplier();
    println!("Table V: effectiveness of partial-order based pruning (k = 4)\n");
    println!(
        "{:>6} | {:>9} {:>7} | {:>9} {:>8} {:>7} | {:>8} {:>10}",
        "", "#Cand", "PC", "#Retain", "RR", "PC", "#Edges", "error rate"
    );
    println!("{}", "-".repeat(80));

    for (name, base) in DATASETS {
        let dataset = load_dataset(name, base, mult);
        let config = RempConfig::default();
        let candidates = generate_candidates(
            &dataset.kb1,
            &dataset.kb2,
            config.label_sim_threshold,
            &config.parallelism,
        );
        let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);
        let alignment =
            match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, &config.attr);
        let vectors = build_sim_vectors(
            &dataset.kb1,
            &dataset.kb2,
            &candidates,
            &alignment,
            config.literal_threshold,
            &config.parallelism,
        );
        let retained = prune(&candidates, &vectors, config.knn_k, &config.parallelism);

        let pc_cand = pair_completeness(candidates.iter().map(|(_, pair)| pair), &dataset.gold);
        let pc_ret = pair_completeness(retained.iter().map(|&p| candidates.pair(p)), &dataset.gold);
        let rr = reduction_ratio(candidates.len(), retained.len());

        let (sub, mapping) = candidates.restrict(&retained);
        let mut sub_vectors = vec![remp_simil::SimVec::new(Vec::new()); sub.len()];
        for &old in &retained {
            sub_vectors[mapping[&old].index()] = vectors[old.index()].clone();
        }
        let graph = ErGraph::build(&dataset.kb1, &dataset.kb2, &sub);

        let pairs: Vec<_> = sub.ids().collect();
        let labels: Vec<bool> = pairs
            .iter()
            .map(|&p| {
                let (u1, u2) = sub.pair(p);
                dataset.is_match(u1, u2)
            })
            .collect();
        let err = monotone_error_rate(&sub, &sub_vectors, &pairs, &labels);

        println!(
            "{:>6} | {:>9} {:>7} | {:>9} {:>8} {:>7} | {:>8} {:>10}",
            name,
            candidates.len(),
            pct(pc_cand),
            retained.len(),
            pct(rr),
            pct(pc_ret),
            graph.num_edges(),
            format!("{:.2}%", 100.0 * err),
        );
    }
}
