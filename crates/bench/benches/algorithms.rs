//! Criterion microbenchmarks for the paper's three named algorithms plus
//! the ablations DESIGN.md calls out:
//!
//! * `alg1_prune` — partial-order pruning (Algorithm 1);
//! * `alg2_infer/{dijkstra,floyd_warshall}` — inferred-set discovery
//!   (Algorithm 2) in both implementations;
//! * `alg3_select/{lazy,naive}` — lazy vs naive greedy selection
//!   (Algorithm 3);
//! * `propagation/{exact,beam}` — neighbour-propagation enumeration vs the
//!   beam fallback;
//! * `simil/*` — the string-similarity kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use remp_bench::load_dataset;
use remp_core::{Parallelism, RempConfig};

/// Microbenchmarks measure the single-threaded kernels; the parallel
/// speedup is `bench_pipeline`'s job.
const SEQ: &Parallelism = &Parallelism::Sequential;
use remp_ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune, PairId,
};
use remp_propagation::{
    inferred_sets_dijkstra, inferred_sets_floyd_warshall, propagate_to_neighbors, Consistency,
    ConsistencyTable, MatchingCandidate, ProbErGraph, PropagationConfig,
};
use remp_selection::{select_questions, select_questions_naive};
use remp_simil::{jaccard, levenshtein, normalize_tokens, sim_l};

fn bench_alg1_prune(c: &mut Criterion) {
    let dataset = load_dataset("IIMB", 0.5, 1.0);
    let config = RempConfig::default();
    let candidates =
        generate_candidates(&dataset.kb1, &dataset.kb2, config.label_sim_threshold, SEQ);
    let initial = initial_matches(&dataset.kb1, &dataset.kb2, &candidates);
    let alignment =
        match_attributes(&dataset.kb1, &dataset.kb2, &candidates, &initial, &config.attr);
    let vectors = build_sim_vectors(
        &dataset.kb1,
        &dataset.kb2,
        &candidates,
        &alignment,
        config.literal_threshold,
        SEQ,
    );
    c.bench_function("alg1_prune", |b| {
        b.iter(|| prune(black_box(&candidates), black_box(&vectors), 4, SEQ))
    });
}

fn prepared_probgraph() -> (ProbErGraph, usize) {
    let dataset = load_dataset("IIMB", 0.5, 1.0);
    let config = RempConfig::default();
    let prep = remp_core::prepare(&dataset.kb1, &dataset.kb2, &config);
    let cons = ConsistencyTable::estimate(
        &dataset.kb1,
        &dataset.kb2,
        &prep.candidates,
        &prep.graph,
        &prep.initial,
        SEQ,
    );
    let pg = ProbErGraph::build(
        &dataset.kb1,
        &dataset.kb2,
        &prep.candidates,
        &prep.graph,
        &cons,
        &config.propagation,
        SEQ,
    );
    let n = prep.candidates.len();
    (pg, n)
}

fn bench_alg2_infer(c: &mut Criterion) {
    let (pg, _) = prepared_probgraph();
    let mut group = c.benchmark_group("alg2_infer");
    group.bench_function("dijkstra", |b| {
        b.iter(|| inferred_sets_dijkstra(black_box(&pg), 0.9, SEQ))
    });
    group.bench_function("floyd_warshall", |b| {
        b.iter(|| inferred_sets_floyd_warshall(black_box(&pg), 0.9))
    });
    group.finish();
}

fn bench_alg3_select(c: &mut Criterion) {
    let (pg, n) = prepared_probgraph();
    let inferred = inferred_sets_dijkstra(&pg, 0.9, SEQ);
    let priors = vec![0.5f64; n];
    let eligible = vec![true; n];
    let cands: Vec<PairId> = (0..n).map(PairId::from_index).collect();
    let mut group = c.benchmark_group("alg3_select");
    group.bench_function("lazy", |b| {
        b.iter(|| select_questions(black_box(&cands), &inferred, &priors, &eligible, 10, SEQ))
    });
    group.bench_function("naive", |b| {
        b.iter(|| select_questions_naive(black_box(&cands), &inferred, &priors, &eligible, 10))
    });
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    // A 4×4 value-set grid: 209 partial matchings — exact is feasible,
    // beam approximates.
    let mut cands = Vec::new();
    let mut id = 0u32;
    for l in 0..4 {
        for r in 0..4 {
            cands.push(MatchingCandidate {
                left: l,
                right: r,
                pair: PairId(id),
                prior: if l == r { 0.8 } else { 0.2 },
            });
            id += 1;
        }
    }
    let cons = Consistency { eps1: 0.9, eps2: 0.9 };
    let exact = PropagationConfig::default();
    let beam = PropagationConfig { enumeration_budget: 16, beam_width: 64, max_candidates: 64 };
    let mut group = c.benchmark_group("propagation");
    group.bench_function("exact", |b| {
        b.iter(|| propagate_to_neighbors(4, 4, black_box(&cands), cons, &exact))
    });
    group.bench_function("beam", |b| {
        b.iter(|| propagate_to_neighbors(4, 4, black_box(&cands), cons, &beam))
    });
    group.finish();
}

fn bench_simil(c: &mut Criterion) {
    let a = normalize_tokens("The Shawshank Redemption Directors Cut Edition");
    let b = normalize_tokens("Shawshank Redemption Special Edition");
    let va: Vec<remp_kb::Value> =
        (0..5).map(|i| remp_kb::Value::text(format!("value number {i}"))).collect();
    let vb: Vec<remp_kb::Value> =
        (0..5).map(|i| remp_kb::Value::text(format!("value number {}", i + 2))).collect();
    let mut group = c.benchmark_group("simil");
    group.bench_function("jaccard", |bch| bch.iter(|| jaccard(black_box(&a), black_box(&b))));
    group.bench_function("levenshtein", |bch| {
        bch.iter(|| {
            levenshtein(black_box("shawshank redemption"), black_box("shawshak redemptions"))
        })
    });
    group.bench_function("sim_l", |bch| bch.iter(|| sim_l(black_box(&va), black_box(&vb), 0.9)));
    group.bench_function("normalize", |bch| {
        bch.iter(|| normalize_tokens(black_box("The Quick Brown Foxes Jumped, Running!")))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alg1_prune, bench_alg2_infer, bench_alg3_select, bench_propagation, bench_simil
);
criterion_main!(benches);
