//! End-to-end Criterion benchmarks: ER-graph construction (stage 1) and
//! the full Remp pipeline per dataset preset, at small scales.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use remp_bench::load_dataset;
use remp_core::{prepare, Remp, RempConfig};
use remp_crowd::OracleCrowd;

fn bench_prepare(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage1_prepare");
    for (name, scale) in [("IIMB", 0.3), ("D-A", 0.15), ("I-Y", 0.1), ("D-Y", 0.1)] {
        let dataset = load_dataset(name, scale, 1.0);
        let config = RempConfig::default();
        group.bench_function(name, |b| {
            b.iter(|| prepare(black_box(&dataset.kb1), black_box(&dataset.kb2), &config))
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_pipeline");
    group.sample_size(10);
    for (name, scale) in [("IIMB", 0.3), ("D-A", 0.15)] {
        let dataset = load_dataset(name, scale, 1.0);
        let config = RempConfig::default();
        let prep = prepare(&dataset.kb1, &dataset.kb2, &config);
        group.bench_function(name, |b| {
            b.iter(|| {
                let remp = Remp::new(config.clone());
                let mut crowd = OracleCrowd::new();
                remp.run_prepared(
                    &dataset.kb1,
                    &dataset.kb2,
                    prep.clone(),
                    &|u1, u2| dataset.is_match(u1, u2),
                    &mut crowd,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prepare, bench_full_pipeline
);
criterion_main!(benches);
