//! The campaign coordinator: lease-based shard assignment.
//!
//! Pure state machine — no clocks, no sockets. Callers (the `rempd`
//! `/scale` routes, the in-process runner, the tests) pass `now_ms`
//! explicitly, so every schedule is replayable. Workers pull work
//! ([`Coordinator::next`]), extend their lease with heartbeats, and
//! submit [`ShardResult`]s; a lease that misses its deadline silently
//! returns the shard to the pending pool for someone else.
//!
//! Duplicate submissions (a worker that lost its lease but finished
//! anyway) are resolved *accept-first*: because every worker runs the
//! same [`crate::process_shard`] on the same bytes, any two submissions
//! for a shard are identical — first one wins, later ones are
//! acknowledged and dropped. Merging sorts by shard id, so the final
//! outcome is independent of worker count and completion order.

use std::path::{Path, PathBuf};

use remp_ingest::IngestError;

use crate::plan::CampaignManifest;
use crate::runner::{merge_results, MergedOutcome};
use crate::worker::ShardResult;

/// Default lease duration granted to a worker per shard.
pub const DEFAULT_LEASE_MS: u64 = 120_000;

/// Where one shard is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Waiting for a worker.
    Pending,
    /// Assigned; reclaimed if `deadline_ms` passes without a heartbeat
    /// or result.
    Leased {
        /// The worker holding the lease.
        worker: String,
        /// Absolute expiry in the caller's clock.
        deadline_ms: u64,
    },
    /// Result accepted.
    Done,
}

/// A point-in-time summary of campaign progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoordinatorStatus {
    /// Shards not yet assigned.
    pub pending: usize,
    /// Shards currently leased.
    pub leased: usize,
    /// Shards with accepted results.
    pub done: usize,
    /// Total shards.
    pub total: usize,
}

/// Lease-based shard scheduler over one campaign directory.
#[derive(Debug)]
pub struct Coordinator {
    campaign: String,
    dir: PathBuf,
    shards: Vec<String>,
    states: Vec<ShardState>,
    results: Vec<Option<ShardResult>>,
    lease_ms: u64,
    gold_total: usize,
}

impl Coordinator {
    /// Opens the campaign in `dir` (reads [`CampaignManifest`]).
    pub fn open(dir: &Path, lease_ms: u64) -> Result<Coordinator, IngestError> {
        let manifest = CampaignManifest::load(dir)?;
        Ok(Coordinator::from_manifest(dir, &manifest, lease_ms))
    }

    /// Builds a coordinator from an already-loaded manifest.
    pub fn from_manifest(dir: &Path, manifest: &CampaignManifest, lease_ms: u64) -> Coordinator {
        let n = manifest.shards.len();
        Coordinator {
            campaign: manifest.campaign.clone(),
            dir: dir.to_path_buf(),
            shards: manifest.shards.clone(),
            states: vec![ShardState::Pending; n],
            results: vec![None; n],
            lease_ms: lease_ms.max(1),
            gold_total: manifest.gold_total,
        }
    }

    /// Campaign name.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Returns expired leases to the pending pool.
    fn reclaim(&mut self, now_ms: u64) {
        for state in &mut self.states {
            if let ShardState::Leased { deadline_ms, .. } = state {
                if *deadline_ms <= now_ms {
                    *state = ShardState::Pending;
                }
            }
        }
    }

    /// Leases the lowest pending shard to `worker`; `None` when nothing
    /// is pending (work may still be leased elsewhere — check
    /// [`Coordinator::done`] to distinguish "wait" from "finished").
    pub fn next(&mut self, worker: &str, now_ms: u64) -> Option<(u32, PathBuf)> {
        self.reclaim(now_ms);
        let idx = self.states.iter().position(|s| *s == ShardState::Pending)?;
        self.states[idx] =
            ShardState::Leased { worker: worker.to_string(), deadline_ms: now_ms + self.lease_ms };
        Some((idx as u32, self.dir.join(&self.shards[idx])))
    }

    /// Extends `worker`'s lease on `shard_id`. Returns `false` if the
    /// worker no longer holds the lease (expired and reassigned).
    pub fn heartbeat(&mut self, worker: &str, shard_id: u32, now_ms: u64) -> bool {
        self.reclaim(now_ms);
        match self.states.get_mut(shard_id as usize) {
            Some(ShardState::Leased { worker: w, deadline_ms }) if w == worker => {
                *deadline_ms = now_ms + self.lease_ms;
                true
            }
            _ => false,
        }
    }

    /// Accepts a result. Returns `Ok(true)` when it was recorded,
    /// `Ok(false)` for a duplicate (accept-first), `Err` for an unknown
    /// shard id or cross-campaign submission.
    pub fn submit(&mut self, result: ShardResult) -> Result<bool, String> {
        if result.campaign != self.campaign {
            return Err(format!(
                "result for campaign `{}` submitted to `{}`",
                result.campaign, self.campaign
            ));
        }
        let idx = result.shard_id as usize;
        if idx >= self.shards.len() {
            return Err(format!("unknown shard id {}", result.shard_id));
        }
        if self.results[idx].is_some() {
            return Ok(false); // accept-first: identical by determinism
        }
        self.results[idx] = Some(result);
        self.states[idx] = ShardState::Done;
        Ok(true)
    }

    /// True once every shard has an accepted result.
    pub fn done(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }

    /// Progress counters.
    pub fn status(&self) -> CoordinatorStatus {
        let mut s = CoordinatorStatus { pending: 0, leased: 0, done: 0, total: self.states.len() };
        for state in &self.states {
            match state {
                ShardState::Pending => s.pending += 1,
                ShardState::Leased { .. } => s.leased += 1,
                ShardState::Done => s.done += 1,
            }
        }
        s
    }

    /// The merged campaign outcome, once [`Coordinator::done`].
    pub fn merged(&self) -> Option<MergedOutcome> {
        if !self.done() {
            return None;
        }
        let results: Vec<ShardResult> =
            self.results.iter().map(|r| r.clone().expect("done() checked")).collect();
        Some(merge_results(&self.campaign, &results, self.gold_total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(shard_id: u32) -> ShardResult {
        ShardResult {
            shard_id,
            campaign: "coord-test".into(),
            matches: vec![(format!("a{shard_id}"), format!("b{shard_id}"))],
            gold_matched: 1,
            gold_pairs: 1,
            pairs: 2,
            edge_count: 1,
            questions_asked: 2,
            loops: 1,
            transcript_digest: 100 + shard_id as u64,
            outcome_digest: 200 + shard_id as u64,
        }
    }

    fn coordinator(shards: usize) -> Coordinator {
        Coordinator {
            campaign: "coord-test".into(),
            dir: PathBuf::from("/tmp/coord-test"),
            shards: (0..shards).map(|i| crate::shard::shard_file_name(i as u32)).collect(),
            states: vec![ShardState::Pending; shards],
            results: vec![None; shards],
            lease_ms: 1000,
            gold_total: shards,
        }
    }

    #[test]
    fn leases_hand_out_each_shard_once() {
        let mut c = coordinator(3);
        let (a, _) = c.next("w1", 0).unwrap();
        let (b, _) = c.next("w2", 0).unwrap();
        let (d, _) = c.next("w1", 0).unwrap();
        let mut ids = vec![a, b, d];
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(c.next("w3", 0).is_none(), "everything is leased");
        assert!(!c.done());
    }

    #[test]
    fn expired_leases_are_reassigned() {
        let mut c = coordinator(1);
        let (id, _) = c.next("w1", 0).unwrap();
        assert_eq!(id, 0);
        assert!(c.next("w2", 500).is_none(), "lease still live");
        let (id2, _) = c.next("w2", 1500).expect("lease expired at t=1000");
        assert_eq!(id2, 0);
        assert!(!c.heartbeat("w1", 0, 1600), "w1 lost the lease");
        assert!(c.heartbeat("w2", 0, 1600));
    }

    #[test]
    fn heartbeats_extend_the_deadline() {
        let mut c = coordinator(1);
        c.next("w1", 0).unwrap();
        assert!(c.heartbeat("w1", 0, 900));
        assert!(c.next("w2", 1500).is_none(), "deadline moved to 1900");
    }

    #[test]
    fn duplicate_results_are_accept_first() {
        let mut c = coordinator(2);
        assert_eq!(c.submit(result(0)), Ok(true));
        assert_eq!(c.submit(result(0)), Ok(false));
        assert!(c.submit(result(7)).is_err(), "unknown shard id");
        let mut wrong = result(1);
        wrong.campaign = "other".into();
        assert!(c.submit(wrong).is_err(), "cross-campaign submit");
        assert!(!c.done());
        assert_eq!(c.submit(result(1)), Ok(true));
        assert!(c.done());
        let merged = c.merged().unwrap();
        assert_eq!(merged.shards, 2);
        assert_eq!(merged.matches_total, 2);
    }

    #[test]
    fn status_tracks_lifecycle() {
        let mut c = coordinator(3);
        c.next("w1", 0).unwrap();
        c.submit(result(0)).unwrap();
        let s = c.status();
        assert_eq!(s, CoordinatorStatus { pending: 2, leased: 0, done: 1, total: 3 });
    }
}
