//! The `.rshard` file: one self-contained unit of campaign work.
//!
//! A shard carries everything a worker process needs to resolve its
//! slice of the candidate graph — the two *sub-KBs* (pair endpoints
//! plus their 1-hop relational neighbourhoods, embedded as ordinary
//! `.rkb` snapshot bytes), the candidate pairs with priors, the initial
//! exact-label seeds, the optional attribute alignment / similarity
//! vectors (full-pipeline mode), the gold subset for simulated truth,
//! and the campaign configuration with a pre-mixed crowd seed. A worker
//! opens the file and runs; it never touches the global KBs, the
//! coordinator, or any other shard.
//!
//! The container reuses the `.rkb` envelope framing (`remp_ingest::framing`)
//! with its own magic, so corruption/truncation detection and the
//! incremental checksum come for free.

use std::path::Path;

use remp_core::RempConfig;
use remp_ergraph::AttrAlignment;
use remp_ingest::framing::{self, ByteCursor, EnvelopeReader, EnvelopeWriter};
use remp_ingest::snapshot::{decode_snapshot, encode_snapshot};
use remp_ingest::{IngestError, LoadedKb};
use remp_kb::AttrId;
use remp_simil::SimVec;

use crate::plan::CrowdSpec;

/// Magic bytes of a shard file.
pub const SHARD_MAGIC: [u8; 4] = *b"RSH\0";
/// Shard format version.
pub const SHARD_VERSION: u32 = 1;
/// Conventional file extension.
pub const SHARD_EXTENSION: &str = "rshard";

/// Section tags.
const TAG_META: u32 = 1;
const TAG_SUB_KB1: u32 = 2;
const TAG_SUB_KB2: u32 = 3;
const TAG_PAIRS: u32 = 4;
const TAG_INITIAL: u32 = 5;
const TAG_ALIGNMENT: u32 = 6;
const TAG_SIMVECS: u32 = 7;
const TAG_GOLD: u32 = 8;

/// One unit of sharded campaign work, fully materialised.
#[derive(Clone, Debug)]
pub struct Shard {
    /// This shard's index in `0..num_shards`.
    pub shard_id: u32,
    /// Total shards in the campaign.
    pub num_shards: u32,
    /// Campaign name (for display and result attribution).
    pub campaign: String,
    /// Crowd seed, already mixed per shard (`mix_many([seed, shard_id])`).
    pub crowd_seed: u64,
    /// Pipeline configuration the worker must run with.
    pub config: RempConfig,
    /// Crowd shape the worker must simulate.
    pub crowd: CrowdSpec,
    /// Sub-KB for side 1 (external ids are the global ones).
    pub kb1: LoadedKb,
    /// Sub-KB for side 2.
    pub kb2: LoadedKb,
    /// Candidate pairs as sub-KB entity indexes, with priors.
    pub pairs: Vec<((u32, u32), f64)>,
    /// Indexes into `pairs` that are exact-label initial matches.
    pub initial: Vec<u32>,
    /// Attribute alignment (attr ids are valid in both the global KBs
    /// and the sub-KBs — restriction preserves the attribute tables).
    pub alignment: AttrAlignment,
    /// Per-pair similarity vectors; empty in stream mode (the worker
    /// then runs `without_classifier`).
    pub sim_vectors: Vec<SimVec>,
    /// Indexes into `pairs` that are gold matches (simulated truth).
    pub gold: Vec<u32>,
}

/// Writes `shard` to `path` (conventionally `shard-{id:05}.rshard`).
pub fn write_shard(shard: &Shard, path: &Path) -> Result<(), IngestError> {
    let mut w = EnvelopeWriter::create(path, SHARD_MAGIC, SHARD_VERSION)?;
    let mut body = Vec::new();

    framing::put_u32(&mut body, shard.shard_id);
    framing::put_u32(&mut body, shard.num_shards);
    framing::put_str(&mut body, &shard.campaign);
    framing::put_u64(&mut body, shard.crowd_seed);
    framing::put_str(&mut body, &shard.config.to_json().to_string());
    framing::put_str(&mut body, &shard.crowd.to_json().to_string());
    w.section(TAG_META, &body)?;
    body.clear();

    w.section(TAG_SUB_KB1, &encode_snapshot(&shard.kb1.kb, &shard.kb1.external_ids))?;
    w.section(TAG_SUB_KB2, &encode_snapshot(&shard.kb2.kb, &shard.kb2.external_ids))?;

    framing::put_u32(&mut body, shard.pairs.len() as u32);
    for &((u1, u2), prior) in &shard.pairs {
        framing::put_u32(&mut body, u1);
        framing::put_u32(&mut body, u2);
        framing::put_f64(&mut body, prior);
    }
    w.section(TAG_PAIRS, &body)?;
    body.clear();

    for (tag, ids) in [(TAG_INITIAL, &shard.initial), (TAG_GOLD, &shard.gold)] {
        framing::put_u32(&mut body, ids.len() as u32);
        for &p in ids {
            framing::put_u32(&mut body, p);
        }
        w.section(tag, &body)?;
        body.clear();
    }

    framing::put_u32(&mut body, shard.alignment.pairs.len() as u32);
    for &(a1, a2, sim) in &shard.alignment.pairs {
        framing::put_u32(&mut body, a1.0);
        framing::put_u32(&mut body, a2.0);
        framing::put_f64(&mut body, sim);
    }
    w.section(TAG_ALIGNMENT, &body)?;
    body.clear();

    let dim = shard.sim_vectors.first().map_or(0, SimVec::len);
    framing::put_u32(&mut body, shard.sim_vectors.len() as u32);
    framing::put_u32(&mut body, dim as u32);
    for v in &shard.sim_vectors {
        debug_assert_eq!(v.len(), dim, "similarity vectors share the alignment dimension");
        for &c in v.components() {
            framing::put_f64(&mut body, c);
        }
    }
    w.section(TAG_SIMVECS, &body)?;
    w.finish()?;
    Ok(())
}

/// Reads a shard written by [`write_shard`], verifying the envelope
/// checksum over the whole payload.
pub fn read_shard(path: &Path) -> Result<Shard, IngestError> {
    let bad = |message: String| IngestError::Snapshot { path: path.to_path_buf(), message };
    let mut r = EnvelopeReader::open(path, SHARD_MAGIC, SHARD_VERSION)?;

    let mut meta = None;
    let mut kb1 = None;
    let mut kb2 = None;
    let mut pairs: Vec<((u32, u32), f64)> = Vec::new();
    let mut initial: Vec<u32> = Vec::new();
    let mut gold: Vec<u32> = Vec::new();
    let mut alignment = AttrAlignment::default();
    let mut sim_vectors: Vec<SimVec> = Vec::new();

    while let Some((tag, section)) = r.next_section()? {
        let mut c = ByteCursor::new(&section, path);
        match tag {
            TAG_META => {
                let shard_id = c.u32()?;
                let num_shards = c.u32()?;
                let campaign = c.string()?;
                let crowd_seed = c.u64()?;
                let config_src = c.string()?;
                let crowd_src = c.string()?;
                c.expect_end()?;
                let config_doc = remp_json::Json::parse(&config_src)
                    .map_err(|e| bad(format!("shard config is not JSON: {e}")))?;
                let config = RempConfig::from_json(&config_doc)
                    .map_err(|e| bad(format!("shard config invalid: {e}")))?;
                let crowd_doc = remp_json::Json::parse(&crowd_src)
                    .map_err(|e| bad(format!("shard crowd spec is not JSON: {e}")))?;
                let crowd = CrowdSpec::from_json(&crowd_doc).map_err(&bad)?;
                meta = Some((shard_id, num_shards, campaign, crowd_seed, config, crowd));
            }
            TAG_SUB_KB1 => kb1 = Some(decode_snapshot(&section, path)?),
            TAG_SUB_KB2 => kb2 = Some(decode_snapshot(&section, path)?),
            TAG_PAIRS => {
                let n = c.u32()? as usize;
                pairs.reserve(c.capped(n, 16));
                for _ in 0..n {
                    let u1 = c.u32()?;
                    let u2 = c.u32()?;
                    let prior = c.f64()?;
                    pairs.push(((u1, u2), prior));
                }
                c.expect_end()?;
            }
            TAG_INITIAL | TAG_GOLD => {
                let n = c.u32()? as usize;
                let mut ids = Vec::with_capacity(c.capped(n, 4));
                for _ in 0..n {
                    ids.push(c.u32()?);
                }
                c.expect_end()?;
                if tag == TAG_INITIAL {
                    initial = ids;
                } else {
                    gold = ids;
                }
            }
            TAG_ALIGNMENT => {
                let n = c.u32()? as usize;
                for _ in 0..n {
                    let a1 = AttrId(c.u32()?);
                    let a2 = AttrId(c.u32()?);
                    let sim = c.f64()?;
                    alignment.pairs.push((a1, a2, sim));
                }
                c.expect_end()?;
            }
            TAG_SIMVECS => {
                let n = c.u32()? as usize;
                let dim = c.u32()? as usize;
                sim_vectors.reserve(c.capped(n, 8 * dim.max(1)));
                for _ in 0..n {
                    let mut v = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        v.push(c.f64()?);
                    }
                    sim_vectors.push(SimVec::new(v));
                }
                c.expect_end()?;
            }
            _ => {} // forward compatibility: unknown sections are skipped
        }
    }

    let (shard_id, num_shards, campaign, crowd_seed, config, crowd) =
        meta.ok_or_else(|| bad("missing shard META section".into()))?;
    let kb1 = kb1.ok_or_else(|| bad("missing sub-KB1 section".into()))?;
    let kb2 = kb2.ok_or_else(|| bad("missing sub-KB2 section".into()))?;
    for &((u1, u2), prior) in &pairs {
        if u1 as usize >= kb1.kb.num_entities() || u2 as usize >= kb2.kb.num_entities() {
            return Err(bad(format!("pair ({u1}, {u2}) outside the sub-KBs")));
        }
        if !(0.0..=1.0).contains(&prior) {
            return Err(bad(format!("pair prior {prior} outside [0, 1]")));
        }
    }
    for &p in initial.iter().chain(&gold) {
        if p as usize >= pairs.len() {
            return Err(bad(format!("pair index {p} out of range")));
        }
    }
    if !sim_vectors.is_empty() && sim_vectors.len() != pairs.len() {
        return Err(bad(format!(
            "{} similarity vectors for {} pairs",
            sim_vectors.len(),
            pairs.len()
        )));
    }
    Ok(Shard {
        shard_id,
        num_shards,
        campaign,
        crowd_seed,
        config,
        crowd,
        kb1,
        kb2,
        pairs,
        initial,
        alignment,
        sim_vectors,
        gold,
    })
}

/// The conventional shard file name for `shard_id`.
pub fn shard_file_name(shard_id: u32) -> String {
    format!("shard-{shard_id:05}.{SHARD_EXTENSION}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CrowdSpec;
    use remp_kb::KbBuilder;

    fn tiny_loaded(name: &str, labels: &[&str]) -> LoadedKb {
        let mut b = KbBuilder::new(name);
        for l in labels {
            b.add_entity(*l);
        }
        LoadedKb {
            kb: b.finish(),
            external_ids: labels.iter().map(|l| format!("ext-{l}")).collect(),
        }
    }

    fn sample_shard() -> Shard {
        Shard {
            shard_id: 3,
            num_shards: 7,
            campaign: "roundtrip".into(),
            crowd_seed: 0xfeed_beef,
            config: RempConfig::default().without_classifier(),
            crowd: CrowdSpec::Simulated {
                workers: 10,
                min_quality: 0.8,
                max_quality: 0.95,
                per_question: 5,
            },
            kb1: tiny_loaded("s1", &["a", "b", "c"]),
            kb2: tiny_loaded("s2", &["a", "b"]),
            pairs: vec![((0, 0), 0.9), ((1, 1), 0.5), ((2, 0), 0.31)],
            initial: vec![0],
            alignment: AttrAlignment::default(),
            sim_vectors: Vec::new(),
            gold: vec![0, 1],
        }
    }

    #[test]
    fn shard_round_trips() {
        let path = std::env::temp_dir().join("remp-scale-shard-roundtrip.rshard");
        let shard = sample_shard();
        write_shard(&shard, &path).unwrap();
        let back = read_shard(&path).unwrap();
        assert_eq!(back.shard_id, 3);
        assert_eq!(back.num_shards, 7);
        assert_eq!(back.campaign, "roundtrip");
        assert_eq!(back.crowd_seed, 0xfeed_beef);
        assert_eq!(back.crowd, shard.crowd);
        assert_eq!(back.pairs, shard.pairs);
        assert_eq!(back.initial, shard.initial);
        assert_eq!(back.gold, shard.gold);
        assert_eq!(back.kb1.external_ids, shard.kb1.external_ids);
        assert_eq!(back.kb2.kb.num_entities(), 2);
        assert!(!back.config.classify_isolated);
    }

    #[test]
    fn sim_vectors_round_trip_with_dimension() {
        let path = std::env::temp_dir().join("remp-scale-shard-simvecs.rshard");
        let mut shard = sample_shard();
        shard.sim_vectors = vec![
            SimVec::new(vec![0.1, 0.2]),
            SimVec::new(vec![0.3, 0.4]),
            SimVec::new(vec![0.5, 0.6]),
        ];
        write_shard(&shard, &path).unwrap();
        let back = read_shard(&path).unwrap();
        assert_eq!(back.sim_vectors.len(), 3);
        assert_eq!(back.sim_vectors[2].components(), &[0.5, 0.6]);
    }

    #[test]
    fn corrupt_shards_are_rejected() {
        let path = std::env::temp_dir().join("remp-scale-shard-corrupt.rshard");
        write_shard(&sample_shard(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_shard(&path).is_err(), "flipped byte must not parse cleanly");
    }

    #[test]
    fn out_of_range_pairs_are_rejected() {
        let path = std::env::temp_dir().join("remp-scale-shard-range.rshard");
        let mut shard = sample_shard();
        shard.pairs.push(((99, 0), 0.5));
        write_shard(&shard, &path).unwrap();
        let err = read_shard(&path).expect_err("range check fires");
        assert!(format!("{err}").contains("outside the sub-KBs"), "{err}");
    }
}
