//! The scalable synthetic-campaign specification.
//!
//! A [`ScaleSpec`] describes a matchable KB pair entirely by numbers —
//! every label, attribute value and relationship edge is a pure hash
//! function of `(seed, object, slot)`, so any entity can be recomputed
//! independently without holding the dataset in memory. That property is
//! what lets the generator stream straight to `.rkb` and the test suite
//! spot-check arbitrary entities of a million-object world.

use remp_json::Json;

/// Deterministic splitmix64 finalizer — the mixing primitive behind all
/// generator randomness and the per-shard crowd-seed derivation.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a stream of values into one hash (order-sensitive).
pub fn mix_many(values: &[u64]) -> u64 {
    let mut h = 0x51_7c_c1_b7_27_22_0a_95u64;
    for &v in values {
        h = mix64(h ^ v);
    }
    h
}

/// A uniform f64 in `[0, 1)` derived from a hash.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Describes a synthetic two-KB entity-resolution campaign at any scale.
///
/// The generated world has `entities` objects per KB. A
/// `match_rate` fraction of KB2's objects are the *same* real-world
/// objects as KB1's first `match_rate * entities` — those are the gold
/// matches; the rest of KB2 is fresh objects unseen in KB1.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleSpec {
    /// Campaign name (becomes the KB names `{name}-1` / `{name}-2`).
    pub name: String,
    /// Master seed; every derived value mixes this in.
    pub seed: u64,
    /// Entities per KB.
    pub entities: usize,
    /// Fraction of KB2 entities that match a KB1 entity (gold pairs).
    pub match_rate: f64,
    /// Mean relationship out-degree (power-law distributed, α ≈ 2.5).
    pub mean_degree: f64,
    /// Number of distinct relationship names.
    pub rels: usize,
    /// Mid-frequency label vocabulary size (0 = auto: `entities / 64`,
    /// floored at 64). Smaller vocabularies mean bigger token blocks.
    pub vocab: usize,
    /// Probability a KB2 label perturbs one token of its KB1 twin.
    pub label_noise: f64,
}

impl ScaleSpec {
    /// A named spec at `entities` scale with defaults everywhere else.
    pub fn new(name: impl Into<String>, entities: usize) -> ScaleSpec {
        ScaleSpec {
            name: name.into(),
            seed: 42,
            entities,
            match_rate: 0.6,
            mean_degree: 4.0,
            rels: 3,
            vocab: 0,
            label_noise: 0.2,
        }
    }

    /// The effective mid-frequency vocabulary size.
    pub fn effective_vocab(&self) -> usize {
        if self.vocab > 0 {
            self.vocab
        } else {
            (self.entities / 64).max(64)
        }
    }

    /// Number of shared (gold-matched) objects.
    pub fn shared_objects(&self) -> usize {
        ((self.entities as f64) * self.match_rate).round() as usize
    }

    /// Basic sanity checks; returns a message on the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.entities == 0 {
            return Err("entities must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.match_rate) {
            return Err("match_rate must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.label_noise) {
            return Err("label_noise must be in [0, 1]".into());
        }
        if self.mean_degree < 0.0 {
            return Err("mean_degree must be non-negative".into());
        }
        if self.rels == 0 {
            return Err("rels must be positive".into());
        }
        Ok(())
    }

    /// Serializes the spec (stored in the campaign manifest).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("seed".into(), Json::from(self.seed)),
            ("entities".into(), Json::from(self.entities)),
            ("match_rate".into(), Json::from(self.match_rate)),
            ("mean_degree".into(), Json::from(self.mean_degree)),
            ("rels".into(), Json::from(self.rels)),
            ("vocab".into(), Json::from(self.vocab)),
            ("label_noise".into(), Json::from(self.label_noise)),
        ])
    }

    /// Deserializes a spec from manifest JSON.
    pub fn from_json(doc: &Json) -> Result<ScaleSpec, String> {
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("spec field `{k}` missing or not a string"))
        };
        let num = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("spec field `{k}` missing or not a number"))
        };
        let int = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("spec field `{k}` missing or not an integer"))
        };
        let spec = ScaleSpec {
            name: str_field("name")?,
            seed: int("seed")?,
            entities: int("entities")? as usize,
            match_rate: num("match_rate")?,
            mean_degree: num("mean_degree")?,
            rels: int("rels")? as usize,
            vocab: int("vocab")? as usize,
            label_noise: num("label_noise")?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        let u = unit_f64(mix64(7));
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScaleSpec::new("demo", 1000);
        let back = ScaleSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut spec = ScaleSpec::new("demo", 10);
        spec.match_rate = 1.5;
        assert!(spec.validate().is_err());
        spec.match_rate = 0.5;
        spec.entities = 0;
        assert!(spec.validate().is_err());
    }
}
