//! Out-of-core dataset generation: [`ScaleSpec`] → `kb1.rkb`, `kb2.rkb`
//! and `gold.tsv`, streamed section-at-a-time.
//!
//! Nothing here ever materialises a [`remp_kb::Kb`]. Every entity is a
//! pure function of `(seed, object, slot)` (see [`ScaleSpec`]), so the
//! writer recomputes whatever a section needs while emitting it; the
//! only O(|edges|) state is a compact transpose buffer for the `REL_IN`
//! section (12 bytes per edge). Peak RSS is therefore one section body
//! plus that buffer — sublinear in anything quadratic and far below a
//! resident KB of the same scale.
//!
//! ## World model
//!
//! Objects `0..n` populate KB1. The first `m = match_rate·n` objects
//! also populate KB2 (same real-world thing seen by the second source —
//! the gold matches), followed by `n − m` fresh objects `n..2n−m` only
//! KB2 sees. Labels are 4 tokens: a kind token from a tiny set (huge
//! blocks — exercises the canopy cap), two mid-frequency vocabulary
//! words, and a near-unique object token. KB2 perturbs one word with
//! probability `label_noise`, so matched pairs keep Jaccard ≥ 0.6.
//! Relationship edges live at the *object* level with power-law
//! out-degree; each KB keeps the edges whose endpoints it contains, so
//! matched objects expose consistent relational context in both KBs.

use std::io::{BufWriter, Write};
use std::path::Path;

use remp_ingest::snapshot::{
    KIND_NUMBER, KIND_TEXT, TAG_ATTR_NAMES, TAG_ATTR_TRIPLES, TAG_EXTERNAL_IDS, TAG_LABELS,
    TAG_NAME, TAG_REL_IN, TAG_REL_NAMES, TAG_REL_OUT,
};
use remp_ingest::{framing, IngestError, SnapshotWriter};

use crate::spec::{mix_many, unit_f64, ScaleSpec};

/// Attribute names every generated KB carries.
pub const ATTR_NAMES: [&str; 3] = ["name", "year", "code"];

/// Power-law exponent for relationship out-degrees.
const DEGREE_ALPHA: f64 = 2.5;
/// Out-degree cap (keeps pathological rows bounded).
const MAX_DEGREE: usize = 256;
/// Number of kind tokens (each blocks ~n/16 entities).
const KINDS: u64 = 16;

/// Which side of the generated pair a KB is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KbSide {
    /// Objects `0..n`.
    Kb1,
    /// Objects `0..m` (shared) followed by `n..2n−m` (fresh).
    Kb2,
}

/// The generated world: pure per-object functions plus the object ↔
/// entity-index bookkeeping for both sides.
#[derive(Clone, Debug)]
pub struct World {
    spec: ScaleSpec,
    shared: usize,
}

impl World {
    /// Builds the world view of `spec`.
    pub fn new(spec: &ScaleSpec) -> World {
        World { spec: spec.clone(), shared: spec.shared_objects() }
    }

    /// Entities per KB.
    pub fn entities_per_kb(&self) -> usize {
        self.spec.entities
    }

    /// Number of gold (shared-object) pairs.
    pub fn shared(&self) -> usize {
        self.shared
    }

    /// The object behind entity index `i` of `side`.
    pub fn object_of(&self, side: KbSide, i: usize) -> u64 {
        match side {
            KbSide::Kb1 => i as u64,
            KbSide::Kb2 => {
                if i < self.shared {
                    i as u64
                } else {
                    (self.spec.entities + (i - self.shared)) as u64
                }
            }
        }
    }

    /// The entity index of object `o` in `side`, if present there.
    pub fn index_of(&self, side: KbSide, o: u64) -> Option<usize> {
        let n = self.spec.entities as u64;
        match side {
            KbSide::Kb1 => (o < n).then_some(o as usize),
            KbSide::Kb2 => {
                if o < self.shared as u64 {
                    Some(o as usize)
                } else if (n..2 * n - self.shared as u64).contains(&o) {
                    Some(self.shared + (o - n) as usize)
                } else {
                    None
                }
            }
        }
    }

    /// The external identifier of object `o` (same in both KBs — gold
    /// alignment is external-id equality).
    pub fn external_id(&self, o: u64) -> String {
        format!("obj{o}")
    }

    /// The label of object `o` as seen by `side`.
    pub fn label(&self, side: KbSide, o: u64) -> String {
        let s = self.spec.seed;
        let v = self.spec.effective_vocab() as u64;
        let kind = mix_many(&[s, o, 0]) % KINDS;
        let mut w1 = mix_many(&[s, o, 1]) % v;
        let w2 = mix_many(&[s, o, 2]) % v;
        if side == KbSide::Kb2 {
            let h = mix_many(&[s, o, 3]);
            if unit_f64(h) < self.spec.label_noise {
                w1 = mix_many(&[s, o, 4]) % v; // perturbed word
            }
        }
        format!("k{kind} w{w1} w{w2} x{o}")
    }

    /// The attribute values of object `o`: `(attr index, value)` with
    /// attr indexes into [`ATTR_NAMES`]. `year` is numeric; `code` is
    /// present for ~half the objects (schema sparsity).
    pub fn attrs(&self, o: u64) -> Vec<(u32, AttrValue)> {
        let s = self.spec.seed;
        let mut out = vec![
            (0, AttrValue::Text(format!("name-{}", mix_many(&[s, o, 10]) % 100_000))),
            (1, AttrValue::Number(1900.0 + (mix_many(&[s, o, 11]) % 126) as f64)),
        ];
        if mix_many(&[s, o, 12]).is_multiple_of(2) {
            out.push((2, AttrValue::Text(format!("c{}", mix_many(&[s, o, 13]) % 4096))));
        }
        out
    }

    /// Object-level out-edges of `o`: `(rel index, target object)`,
    /// sorted by `(rel, target)` and deduplicated. Power-law degree,
    /// targets skewed toward low object ids (preferential-attachment
    /// flavoured hubs).
    pub fn edges(&self, o: u64) -> Vec<(u32, u64)> {
        let s = self.spec.seed;
        let n = self.spec.entities as u64;
        let world = 2 * n - self.shared as u64;
        let degree = {
            let u = unit_f64(mix_many(&[s, o, 20])).max(1e-12);
            // Inverse-transform power law with mean ≈ mean_degree:
            // d_min · u^(−1/(α−1)), whose mean is d_min·(α−1)/(α−2).
            let d_min = self.spec.mean_degree * (DEGREE_ALPHA - 2.0) / (DEGREE_ALPHA - 1.0);
            let d = d_min * u.powf(-1.0 / (DEGREE_ALPHA - 1.0));
            (d.round() as usize).min(MAX_DEGREE)
        };
        let mut out: Vec<(u32, u64)> = (0..degree)
            .map(|j| {
                let r = (mix_many(&[s, o, 30, j as u64]) % self.spec.rels as u64) as u32;
                let skew = unit_f64(mix_many(&[s, o, 31, j as u64]));
                let target = ((skew * skew) * world as f64) as u64 % world;
                (r, target)
            })
            .filter(|&(_, t)| t != o)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `o`'s edges restricted to endpoints `side` contains, as entity
    /// indexes. `None` when `o` itself is absent from `side`.
    pub fn kb_edges(&self, side: KbSide, o: u64) -> Option<Vec<(u32, u32)>> {
        self.index_of(side, o)?;
        Some(
            self.edges(o)
                .into_iter()
                .filter_map(|(r, t)| self.index_of(side, t).map(|ti| (r, ti as u32)))
                .collect(),
        )
    }
}

/// A generated attribute value (mirrors `remp_kb::Value` without the
/// dependency direction).
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Free-text value.
    Text(String),
    /// Numeric value.
    Number(f64),
}

/// Summary of one generated campaign directory.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateReport {
    /// Entities written per KB.
    pub entities: usize,
    /// Gold pairs written to `gold.tsv`.
    pub gold_pairs: usize,
    /// Relationship triples in KB1 / KB2.
    pub rel_triples: (usize, usize),
}

/// Generates the campaign dataset under `dir`: `kb1.rkb`, `kb2.rkb` and
/// `gold.tsv` (external-id pairs, tab-separated).
pub fn generate_dataset(spec: &ScaleSpec, dir: &Path) -> Result<GenerateReport, IngestError> {
    spec.validate().map_err(|m| IngestError::Syntax {
        path: dir.to_path_buf(),
        line: 0,
        message: format!("invalid scale spec: {m}"),
    })?;
    std::fs::create_dir_all(dir)
        .map_err(|error| IngestError::Io { path: dir.to_path_buf(), error })?;
    let world = World::new(spec);

    let e1 = write_kb(&world, KbSide::Kb1, &format!("{}-1", spec.name), &dir.join("kb1.rkb"))?;
    let e2 = write_kb(&world, KbSide::Kb2, &format!("{}-2", spec.name), &dir.join("kb2.rkb"))?;

    let gold_path = dir.join("gold.tsv");
    let io_err = |error: std::io::Error| IngestError::Io { path: gold_path.clone(), error };
    let file = std::fs::File::create(&gold_path).map_err(io_err)?;
    let mut gold = BufWriter::new(file);
    for o in 0..world.shared() as u64 {
        let id = world.external_id(o);
        writeln!(gold, "{id}\t{id}").map_err(io_err)?;
    }
    gold.flush().map_err(io_err)?;

    Ok(GenerateReport {
        entities: spec.entities,
        gold_pairs: world.shared(),
        rel_triples: (e1, e2),
    })
}

/// Streams one KB to `path`; returns its relationship-triple count.
fn write_kb(world: &World, side: KbSide, name: &str, path: &Path) -> Result<usize, IngestError> {
    let n = world.entities_per_kb();
    let mut writer = SnapshotWriter::create(path)?;
    let mut body = Vec::new();

    framing::put_str(&mut body, name);
    writer.section(TAG_NAME, &body)?;
    body.clear();

    framing::put_u32(&mut body, n as u32);
    for i in 0..n {
        framing::put_str(&mut body, &world.label(side, world.object_of(side, i)));
    }
    writer.section(TAG_LABELS, &body)?;
    body.clear();

    framing::put_u32(&mut body, ATTR_NAMES.len() as u32);
    for a in ATTR_NAMES {
        framing::put_str(&mut body, a);
    }
    writer.section(TAG_ATTR_NAMES, &body)?;
    body.clear();

    framing::put_u32(&mut body, world.spec.rels as u32);
    for r in 0..world.spec.rels {
        framing::put_str(&mut body, &format!("rel{r}"));
    }
    writer.section(TAG_REL_NAMES, &body)?;
    body.clear();

    framing::put_u32(&mut body, n as u32);
    for i in 0..n {
        let attrs = world.attrs(world.object_of(side, i));
        framing::put_u32(&mut body, attrs.len() as u32);
        for (a, v) in attrs {
            framing::put_u32(&mut body, a);
            match v {
                AttrValue::Text(s) => {
                    body.push(KIND_TEXT);
                    framing::put_str(&mut body, &s);
                }
                AttrValue::Number(x) => {
                    body.push(KIND_NUMBER);
                    body.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
    writer.section(TAG_ATTR_TRIPLES, &body)?;
    body.clear();

    // REL_OUT: recompute each row on the fly; count in-degrees as we go
    // so the transpose pass below can counting-sort without a rescan.
    let mut rel_triples = 0usize;
    let mut in_degree = vec![0u32; n];
    framing::put_u32(&mut body, n as u32);
    for i in 0..n {
        let edges = world
            .kb_edges(side, world.object_of(side, i))
            .expect("object_of is always present on its side");
        framing::put_u32(&mut body, edges.len() as u32);
        for (r, t) in edges {
            framing::put_u32(&mut body, r);
            framing::put_u32(&mut body, t);
            in_degree[t as usize] += 1;
            rel_triples += 1;
        }
    }
    writer.section(TAG_REL_OUT, &body)?;
    body.clear();

    // REL_IN: transpose via counting sort — the only O(|edges|) buffer
    // of the whole generator (12 bytes/edge), then per-row sorts to
    // match the Kb invariant (rows ascending by (rel, entity)).
    let mut offsets = vec![0u32; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + in_degree[i];
    }
    let mut cursor = offsets[..n].to_vec();
    let mut incoming = vec![(0u32, 0u32); rel_triples];
    for i in 0..n {
        let edges = world
            .kb_edges(side, world.object_of(side, i))
            .expect("object_of is always present on its side");
        for (r, t) in edges {
            incoming[cursor[t as usize] as usize] = (r, i as u32);
            cursor[t as usize] += 1;
        }
    }
    framing::put_u32(&mut body, n as u32);
    for i in 0..n {
        let row = &mut incoming[offsets[i] as usize..offsets[i + 1] as usize];
        row.sort_unstable();
        framing::put_u32(&mut body, row.len() as u32);
        for &(r, src) in row.iter() {
            framing::put_u32(&mut body, r);
            framing::put_u32(&mut body, src);
        }
    }
    writer.section(TAG_REL_IN, &body)?;
    body.clear();
    drop(incoming);

    framing::put_u32(&mut body, n as u32);
    for i in 0..n {
        framing::put_str(&mut body, &world.external_id(world.object_of(side, i)));
    }
    writer.section(TAG_EXTERNAL_IDS, &body)?;
    writer.finish()?;
    Ok(rel_triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_ingest::load_snapshot;

    fn spec(n: usize) -> ScaleSpec {
        ScaleSpec::new("gen-test", n)
    }

    #[test]
    fn generated_snapshots_load_and_validate() {
        let dir = std::env::temp_dir().join("remp-scale-gen-validate");
        let report = generate_dataset(&spec(300), &dir).unwrap();
        assert_eq!(report.entities, 300);
        assert_eq!(report.gold_pairs, 180);
        for kb_file in ["kb1.rkb", "kb2.rkb"] {
            let loaded = load_snapshot(&dir.join(kb_file)).unwrap();
            loaded.kb.validate().unwrap();
            assert_eq!(loaded.kb.num_entities(), 300);
            assert_eq!(loaded.external_ids.len(), 300);
        }
    }

    #[test]
    fn loaded_kb_matches_the_pure_functions() {
        let dir = std::env::temp_dir().join("remp-scale-gen-pure");
        let s = spec(200);
        generate_dataset(&s, &dir).unwrap();
        let world = World::new(&s);
        let loaded = load_snapshot(&dir.join("kb2.rkb")).unwrap();
        for i in [0usize, 7, 119, 199] {
            let o = world.object_of(KbSide::Kb2, i);
            let u = remp_kb::EntityId(i as u32);
            assert_eq!(loaded.kb.label(u), world.label(KbSide::Kb2, o));
            assert_eq!(loaded.external_ids[i], world.external_id(o));
            let expect = world.kb_edges(KbSide::Kb2, o).unwrap();
            let got: Vec<(u32, u32)> =
                loaded.kb.rels_of(u).iter().map(|&(r, t)| (r.0, t.0)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = std::env::temp_dir().join("remp-scale-gen-det-a");
        let b = std::env::temp_dir().join("remp-scale-gen-det-b");
        generate_dataset(&spec(150), &a).unwrap();
        generate_dataset(&spec(150), &b).unwrap();
        for f in ["kb1.rkb", "kb2.rkb", "gold.tsv"] {
            assert_eq!(
                std::fs::read(a.join(f)).unwrap(),
                std::fs::read(b.join(f)).unwrap(),
                "{f} must be byte-identical across runs"
            );
        }
    }

    #[test]
    fn world_index_mapping_round_trips() {
        let s = spec(100);
        let world = World::new(&s);
        for side in [KbSide::Kb1, KbSide::Kb2] {
            for i in 0..100 {
                let o = world.object_of(side, i);
                assert_eq!(world.index_of(side, o), Some(i));
            }
        }
        // Fresh KB2 objects are invisible to KB1 and vice versa.
        assert_eq!(world.index_of(KbSide::Kb1, 100), None);
        let fresh = world.object_of(KbSide::Kb2, 99);
        assert!(fresh >= 100);
    }

    #[test]
    fn matched_labels_share_tokens() {
        let world = World::new(&spec(500));
        let mut shared = 0;
        for o in 0..world.shared() as u64 {
            let l1 = world.label(KbSide::Kb1, o);
            let l2 = world.label(KbSide::Kb2, o);
            let t1: std::collections::HashSet<&str> = l1.split(' ').collect();
            let t2: std::collections::HashSet<&str> = l2.split(' ').collect();
            let inter = t1.intersection(&t2).count();
            assert!(inter >= 3, "gold pair must stay findable: {l1} / {l2}");
            if l1 == l2 {
                shared += 1;
            }
        }
        assert!(shared > 0, "most labels are unperturbed");
        assert!(shared < world.shared(), "some labels are perturbed");
    }
}
