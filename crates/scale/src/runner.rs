//! Result merging and the in-process reference executor.
//!
//! [`merge_results`] is the single definition of "the campaign
//! outcome": results sorted by shard id, counters summed, digests
//! folded in shard order, precision/recall/F1 computed against the
//! campaign's full gold count. Both the multi-process coordinator and
//! [`run_sharded_local`] end in this function, so "bit-identical
//! merged outputs" reduces to "bit-identical per-shard results" — which
//! worker determinism guarantees.
//!
//! [`run_sharded_local`] deliberately round-trips every shard result
//! through its JSON wire format before merging. The in-process path
//! then exercises the exact representation the HTTP path ships, and
//! cannot be accidentally *more* precise than a remote worker.

use std::path::Path;

use remp_ingest::framing::{fnv1a64_update, FNV_SEED};
use remp_json::Json;

use crate::plan::CampaignManifest;
use crate::worker::{process_shard, ShardResult};

/// The merged outcome of a sharded campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedOutcome {
    /// Campaign name.
    pub campaign: String,
    /// Shards merged.
    pub shards: usize,
    /// Candidate pairs processed across shards.
    pub pairs_total: usize,
    /// Matches reported across shards.
    pub matches_total: usize,
    /// Matches that are gold pairs.
    pub gold_matched: usize,
    /// Gold pairs in the full dataset (recall denominator).
    pub gold_total: usize,
    /// Questions asked across shards.
    pub questions_total: usize,
    /// Human-machine loops across shards.
    pub loops_total: usize,
    /// Precision over reported matches.
    pub precision: f64,
    /// Recall against the full gold standard.
    pub recall: f64,
    /// F1 of the above.
    pub f1: f64,
    /// Per-shard outcome digests folded in shard-id order.
    pub outcome_digest: u64,
    /// Per-shard transcript digests folded in shard-id order.
    pub transcript_digest: u64,
    /// Digest over (precision, recall, f1) bits.
    pub eval_digest: u64,
}

impl MergedOutcome {
    /// Serializes the outcome (HTTP `/outcome`, CLI, bench reports).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("campaign".into(), Json::from(self.campaign.as_str())),
            ("shards".into(), Json::from(self.shards)),
            ("pairs_total".into(), Json::from(self.pairs_total)),
            ("matches_total".into(), Json::from(self.matches_total)),
            ("gold_matched".into(), Json::from(self.gold_matched)),
            ("gold_total".into(), Json::from(self.gold_total)),
            ("questions_total".into(), Json::from(self.questions_total)),
            ("loops_total".into(), Json::from(self.loops_total)),
            ("precision".into(), Json::from(self.precision)),
            ("recall".into(), Json::from(self.recall)),
            ("f1".into(), Json::from(self.f1)),
            ("outcome_digest".into(), Json::from(self.outcome_digest)),
            ("transcript_digest".into(), Json::from(self.transcript_digest)),
            ("eval_digest".into(), Json::from(self.eval_digest)),
        ])
    }

    /// Parses an outcome serialized by [`MergedOutcome::to_json`].
    pub fn from_json(doc: &Json) -> Result<MergedOutcome, String> {
        let int = |k: &str| {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("outcome field `{k}` missing"))
        };
        let num = |k: &str| {
            doc.get(k).and_then(Json::as_f64).ok_or_else(|| format!("outcome field `{k}` missing"))
        };
        Ok(MergedOutcome {
            campaign: doc
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("outcome field `campaign` missing")?
                .to_string(),
            shards: int("shards")? as usize,
            pairs_total: int("pairs_total")? as usize,
            matches_total: int("matches_total")? as usize,
            gold_matched: int("gold_matched")? as usize,
            gold_total: int("gold_total")? as usize,
            questions_total: int("questions_total")? as usize,
            loops_total: int("loops_total")? as usize,
            precision: num("precision")?,
            recall: num("recall")?,
            f1: num("f1")?,
            outcome_digest: int("outcome_digest")?,
            transcript_digest: int("transcript_digest")?,
            eval_digest: int("eval_digest")?,
        })
    }
}

/// Merges per-shard results into the campaign outcome.
///
/// # Panics
///
/// If `results` is not exactly one result per shard id `0..n` — a
/// coordinator only calls this once every shard reported.
pub fn merge_results(campaign: &str, results: &[ShardResult], gold_total: usize) -> MergedOutcome {
    let mut sorted: Vec<&ShardResult> = results.iter().collect();
    sorted.sort_by_key(|r| r.shard_id);
    for (i, r) in sorted.iter().enumerate() {
        assert_eq!(r.shard_id as usize, i, "merge needs exactly one result per shard id");
    }

    let mut out = MergedOutcome {
        campaign: campaign.to_string(),
        shards: sorted.len(),
        pairs_total: 0,
        matches_total: 0,
        gold_matched: 0,
        gold_total,
        questions_total: 0,
        loops_total: 0,
        precision: 0.0,
        recall: 0.0,
        f1: 0.0,
        outcome_digest: FNV_SEED,
        transcript_digest: FNV_SEED,
        eval_digest: FNV_SEED,
    };
    for r in &sorted {
        out.pairs_total += r.pairs;
        out.matches_total += r.matches.len();
        out.gold_matched += r.gold_matched;
        out.questions_total += r.questions_asked;
        out.loops_total += r.loops;
        out.outcome_digest = fnv1a64_update(out.outcome_digest, &r.outcome_digest.to_le_bytes());
        out.transcript_digest =
            fnv1a64_update(out.transcript_digest, &r.transcript_digest.to_le_bytes());
    }
    out.precision = if out.matches_total > 0 {
        out.gold_matched as f64 / out.matches_total as f64
    } else {
        0.0
    };
    out.recall = if gold_total > 0 { out.gold_matched as f64 / gold_total as f64 } else { 0.0 };
    out.f1 = if out.precision + out.recall > 0.0 {
        2.0 * out.precision * out.recall / (out.precision + out.recall)
    } else {
        0.0
    };
    for v in [out.precision, out.recall, out.f1] {
        out.eval_digest = fnv1a64_update(out.eval_digest, &v.to_bits().to_le_bytes());
    }
    out
}

/// Runs every shard of the campaign in `dir` sequentially in-process
/// and merges — the reference the multi-process path must equal.
pub fn run_sharded_local(dir: &Path) -> Result<MergedOutcome, String> {
    let manifest = CampaignManifest::load(dir).map_err(|e| format!("{e}"))?;
    let mut results = Vec::with_capacity(manifest.shards.len());
    for path in manifest.shard_paths(dir) {
        let result = process_shard(&path)?;
        // Round-trip through the wire format (see module docs).
        let text = result.to_json().to_string();
        let doc = Json::parse(&text).map_err(|e| format!("result round-trip: {e}"))?;
        results.push(ShardResult::from_json(&doc)?);
    }
    Ok(merge_results(&manifest.campaign, &results, manifest.gold_total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{write_campaign, CrowdSpec, PlanMode};
    use remp_core::RempConfig;
    use remp_datasets::{generate, iimb};
    use remp_ingest::LoadedKb;

    fn make_campaign(tag: &str, shards: usize) -> std::path::PathBuf {
        let d = generate(&iimb(0.25));
        let dir = std::env::temp_dir().join(format!("remp-scale-runner-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let kb1 = LoadedKb {
            kb: d.kb1.clone(),
            external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
        };
        let kb2 = LoadedKb {
            kb: d.kb2.clone(),
            external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
        };
        write_campaign(
            &dir,
            tag,
            &kb1,
            &kb2,
            &d.gold,
            &RempConfig::default(),
            &CrowdSpec::Oracle,
            3,
            &PlanMode::Full,
            shards,
        )
        .unwrap();
        dir
    }

    #[test]
    fn local_run_is_deterministic_and_scores() {
        let dir = make_campaign("det", 3);
        let a = run_sharded_local(&dir).unwrap();
        let b = run_sharded_local(&dir).unwrap();
        assert_eq!(a, b);
        assert!(a.f1 > 0.5, "oracle campaign resolves most of IIMB: {a:?}");
        assert!(a.questions_total > 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let dir = make_campaign("order", 4);
        let manifest = CampaignManifest::load(&dir).unwrap();
        let mut results: Vec<ShardResult> =
            manifest.shard_paths(&dir).iter().map(|p| process_shard(p).unwrap()).collect();
        let forward = merge_results("order", &results, manifest.gold_total);
        results.reverse();
        let reversed = merge_results("order", &results, manifest.gold_total);
        assert_eq!(forward, reversed, "merge sorts by shard id");
    }

    #[test]
    fn merged_outcome_round_trips_through_json() {
        let dir = make_campaign("json", 2);
        let merged = run_sharded_local(&dir).unwrap();
        let text = merged.to_json().to_string();
        let back = MergedOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(merged, back);
    }

    #[test]
    #[should_panic(expected = "one result per shard id")]
    fn merge_rejects_missing_shards() {
        let r = ShardResult {
            shard_id: 1,
            campaign: "x".into(),
            matches: Vec::new(),
            gold_matched: 0,
            gold_pairs: 0,
            pairs: 0,
            edge_count: 0,
            questions_asked: 0,
            loops: 0,
            transcript_digest: 0,
            outcome_digest: 0,
        };
        merge_results("x", &[r], 1);
    }
}
