//! Million-entity campaign substrate (`remp-scale`).
//!
//! The classic pipeline holds both KBs, the candidate set and the ER
//! graph in one address space — fine at Table II scale, hopeless at 10⁶
//! entities. This crate provides the out-of-core path:
//!
//! 1. [`generate_dataset`] — a seeded synthetic world streamed straight
//!    to `.rkb` snapshots; every entity is a pure hash function, so the
//!    generator's peak memory is one snapshot section.
//! 2. [`stream_candidates`] — blocked candidate generation that walks
//!    token canopies one at a time and never materialises the
//!    cross-product; equivalent (as a set) to
//!    `remp_ergraph::generate_candidates`.
//! 3. [`plan_shards`] / [`write_shard`] — connected components of the
//!    candidate graph grouped into self-contained `.rshard` files (each
//!    embeds its sub-KBs, pairs, priors and gold).
//! 4. [`process_shard`] — one shard, end to end: rebuild the ER graph,
//!    drive the crowd loop, emit a [`ShardResult`].
//! 5. [`Coordinator`] — lease-based shard assignment with heartbeats,
//!    driving separate `rempctl shard-worker` processes; results merge
//!    in shard order, so the outcome is identical for any worker count
//!    (see `SHARDING.md` for the determinism contract).
//! 6. [`run_sharded_local`] — the in-process reference executor the
//!    equivalence tests pin the multi-process path against.

pub mod bench;
pub mod blocking;
pub mod coord;
pub mod generate;
pub mod plan;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod worker;

pub use bench::{run_scale_bench, ScaleBenchOptions, ScaleBenchReport};
pub use blocking::{stream_candidates, BlockingStats};
pub use coord::{Coordinator, CoordinatorStatus, ShardState, DEFAULT_LEASE_MS};
pub use generate::{generate_dataset, GenerateReport, KbSide, World};
pub use plan::{
    plan_shards, shard_cap, write_campaign, CampaignManifest, CrowdSpec, PlanMode, ShardPlan,
    MAX_COMPONENT_PAIRS,
};
pub use runner::{merge_results, run_sharded_local, MergedOutcome};
pub use shard::{read_shard, write_shard, Shard, SHARD_EXTENSION};
pub use spec::{mix64, mix_many, unit_f64, ScaleSpec};
pub use worker::{process_shard, ShardResult};
