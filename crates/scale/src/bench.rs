//! The scale bench harness behind `rempctl bench --scale`.
//!
//! One point = generate a synthetic world at scale *n* (streamed to
//! `.rkb`), plan a stream-mode sharded campaign, run every shard
//! through the reference executor, and sample peak RSS. The report
//! (`BENCH_scale.json`) records wall-clock per stage and the
//! `remp_peak_rss_bytes` figure per point; with `max_rss_mb` set the
//! harness turns into a hard bounded-memory gate — the CI `scale` job
//! fails the build if a 10⁵-entity campaign ever grows a resident set
//! past the bound.

use std::path::{Path, PathBuf};
use std::time::Instant;

use remp_core::RempConfig;
use remp_json::Json;

use crate::plan::{write_campaign, CrowdSpec, PlanMode};
use crate::runner::run_sharded_local;
use crate::spec::ScaleSpec;

/// Options for [`run_scale_bench`].
#[derive(Clone, Debug)]
pub struct ScaleBenchOptions {
    /// Entity counts to sweep (per KB).
    pub points: Vec<usize>,
    /// Master seed for the generated worlds.
    pub seed: u64,
    /// Per-shard question budget.
    pub budget: usize,
    /// Peak-RSS bound in MiB; `None` records without gating.
    pub max_rss_mb: Option<u64>,
    /// Scratch directory for generated campaigns (`None` = temp dir).
    pub work_dir: Option<PathBuf>,
    /// Keep generated campaign directories instead of deleting them.
    pub keep_artifacts: bool,
}

impl Default for ScaleBenchOptions {
    fn default() -> Self {
        ScaleBenchOptions {
            points: vec![10_000, 100_000],
            seed: 42,
            budget: 200,
            max_rss_mb: None,
            work_dir: None,
            keep_artifacts: false,
        }
    }
}

/// One swept scale point.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalePoint {
    /// Entities per KB.
    pub entities: usize,
    /// Candidate pairs across all shards.
    pub pairs: usize,
    /// Shards the campaign split into.
    pub shards: usize,
    /// Seconds generating `.rkb` snapshots + gold.
    pub gen_seconds: f64,
    /// Seconds planning + writing shard files.
    pub plan_seconds: f64,
    /// Seconds processing all shards and merging.
    pub run_seconds: f64,
    /// Questions asked across shards.
    pub questions: usize,
    /// Merged F1 against the generated gold standard.
    pub f1: f64,
    /// Merged outcome digest (ties the report to the exact outcome).
    pub outcome_digest: u64,
    /// `remp_peak_rss_bytes` sampled after the point completed.
    pub peak_rss_bytes: Option<u64>,
}

/// The full report written to `BENCH_scale.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleBenchReport {
    /// Swept points, ascending.
    pub points: Vec<ScalePoint>,
    /// The configured bound, if any.
    pub max_rss_mb: Option<u64>,
    /// True when every point stayed under the bound (vacuously true
    /// without one).
    pub rss_ok: bool,
}

impl ScaleBenchReport {
    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("entities".to_string(), Json::from(p.entities)),
                    ("pairs".to_string(), Json::from(p.pairs)),
                    ("shards".to_string(), Json::from(p.shards)),
                    ("gen_seconds".to_string(), Json::from(p.gen_seconds)),
                    ("plan_seconds".to_string(), Json::from(p.plan_seconds)),
                    ("run_seconds".to_string(), Json::from(p.run_seconds)),
                    ("questions".to_string(), Json::from(p.questions)),
                    ("f1".to_string(), Json::from(p.f1)),
                    ("outcome_digest".to_string(), Json::from(p.outcome_digest)),
                ];
                if let Some(rss) = p.peak_rss_bytes {
                    fields.push(("peak_rss_bytes".to_string(), Json::from(rss)));
                }
                Json::Obj(fields)
            })
            .collect();
        let mut fields = vec![("points".to_string(), Json::Arr(points))];
        if let Some(mb) = self.max_rss_mb {
            fields.push(("max_rss_mb".to_string(), Json::from(mb)));
        }
        fields.push(("rss_ok".to_string(), Json::from(self.rss_ok)));
        Json::Obj(fields)
    }
}

/// The stream-mode pipeline configuration the bench uses.
///
/// The label threshold rises to 0.4 so two-token coincidences (kind +
/// one word, Jaccard ⅓) stay out of the candidate set at scale, and
/// each shard gets a bounded question budget — the bench measures
/// memory shape and throughput, not exhaustive crowd spend.
pub fn bench_config(budget: usize) -> RempConfig {
    let mut config = RempConfig::default().with_budget(budget).without_classifier();
    config.label_sim_threshold = 0.4;
    config
}

/// The shard count used for a scale point (≈ one shard per 20k
/// entities, at least two so merging is always exercised).
pub fn shards_for(entities: usize) -> usize {
    (entities / 20_000).max(2)
}

/// Runs the sweep. Returns the report; points after an RSS-bound
/// violation are still run (the report shows where the line crossed).
pub fn run_scale_bench(options: &ScaleBenchOptions) -> Result<ScaleBenchReport, String> {
    let work_root =
        options.work_dir.clone().unwrap_or_else(|| std::env::temp_dir().join("remp-scale-bench"));
    let mut report =
        ScaleBenchReport { points: Vec::new(), max_rss_mb: options.max_rss_mb, rss_ok: true };

    for &entities in &options.points {
        let dir = work_root.join(format!("n{entities}"));
        let point = run_point(entities, options, &dir)?;
        if let (Some(bound_mb), Some(rss)) = (options.max_rss_mb, point.peak_rss_bytes) {
            if rss > bound_mb * 1024 * 1024 {
                report.rss_ok = false;
            }
        }
        report.points.push(point);
        if !options.keep_artifacts {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    Ok(report)
}

fn run_point(
    entities: usize,
    options: &ScaleBenchOptions,
    dir: &Path,
) -> Result<ScalePoint, String> {
    let spec =
        ScaleSpec { seed: options.seed, ..ScaleSpec::new(format!("scale-{entities}"), entities) };

    let t = Instant::now();
    crate::generate_dataset(&spec, dir).map_err(|e| format!("generate: {e}"))?;
    let gen_seconds = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let kb1 = remp_ingest::load_snapshot(&dir.join("kb1.rkb")).map_err(|e| format!("{e}"))?;
    let kb2 = remp_ingest::load_snapshot(&dir.join("kb2.rkb")).map_err(|e| format!("{e}"))?;
    let gold: std::collections::HashSet<(remp_kb::EntityId, remp_kb::EntityId)> = {
        let world = crate::World::new(&spec);
        (0..world.shared() as u32).map(|i| (remp_kb::EntityId(i), remp_kb::EntityId(i))).collect()
    };
    let manifest = write_campaign(
        dir,
        &spec.name,
        &kb1,
        &kb2,
        &gold,
        &bench_config(options.budget),
        &CrowdSpec::Oracle,
        spec.seed,
        &PlanMode::Stream { max_block: 200_000 },
        shards_for(entities),
    )
    .map_err(|e| format!("plan: {e}"))?;
    drop(kb1);
    drop(kb2);
    let plan_seconds = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let merged = run_sharded_local(dir)?;
    let run_seconds = t.elapsed().as_secs_f64();

    Ok(ScalePoint {
        entities,
        pairs: manifest.pairs_total,
        shards: manifest.shards.len(),
        gen_seconds,
        plan_seconds,
        run_seconds,
        questions: merged.questions_total,
        f1: merged.f1,
        outcome_digest: merged.outcome_digest,
        peak_rss_bytes: remp_obs::sample_peak_rss().or_else(remp_obs::peak_rss_bytes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_produces_a_full_report() {
        let options = ScaleBenchOptions {
            points: vec![500],
            budget: 50,
            max_rss_mb: Some(65_536), // far above anything a 500-entity run uses
            ..Default::default()
        };
        let report = run_scale_bench(&options).unwrap();
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.entities, 500);
        assert!(p.pairs > 0);
        assert!(p.shards >= 2);
        assert!(report.rss_ok, "{report:?}");
        let doc = report.to_json();
        assert!(doc.get("rss_ok").and_then(Json::as_bool).unwrap());
        assert_eq!(doc.get("points").and_then(Json::as_array).map(<[Json]>::len), Some(1));
    }

    #[test]
    fn the_rss_gate_trips_on_a_tiny_bound() {
        let options = ScaleBenchOptions {
            points: vec![300],
            budget: 20,
            max_rss_mb: Some(1), // 1 MiB: any real process exceeds this
            ..Default::default()
        };
        let report = run_scale_bench(&options).unwrap();
        if report.points[0].peak_rss_bytes.is_some() {
            assert!(!report.rss_ok, "a 1 MiB bound must trip: {report:?}");
        }
    }
}
