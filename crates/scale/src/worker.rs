//! Shard execution: one `.rshard` in, one [`ShardResult`] out.
//!
//! [`process_shard`] is what a `rempctl shard-worker` process runs per
//! lease — and also what [`crate::run_sharded_local`] runs in-process.
//! Both paths execute this exact function on the same shard bytes, so
//! the sharded campaign's outcome cannot depend on *where* shards run;
//! only the shard files and the merge order (shard id) matter. That is
//! the determinism contract `SHARDING.md` spells out and the
//! equivalence tests enforce.
//!
//! The crowd loop mirrors [`remp_core::RempSession::drive`] but hashes
//! a transcript as it goes: every question's external-id pair, the
//! truth bit, and each worker label fold into an FNV-1a digest in ask
//! order. Two runs with equal digests asked the same questions in the
//! same order and heard the same answers.

use std::path::Path;

use remp_core::{PreparedEr, Remp, RempOutcome};
use remp_crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp_ergraph::{Candidates, ComponentIndex, ErGraph, PairId};
use remp_ingest::framing::{fnv1a64_update, FNV_SEED};
use remp_json::Json;
use remp_kb::{EntityId, IdHashSet, PackedPair};
use remp_simil::SimVec;

use crate::plan::CrowdSpec;
use crate::shard::{read_shard, Shard};

/// The outcome of one shard, as reported to the coordinator.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardResult {
    /// Which shard this is.
    pub shard_id: u32,
    /// Campaign the shard belongs to.
    pub campaign: String,
    /// Final matches as global external-id pairs, lexicographically
    /// sorted.
    pub matches: Vec<(String, String)>,
    /// How many of `matches` are gold pairs (merged-eval numerator).
    pub gold_matched: usize,
    /// Gold pairs present in this shard (for bookkeeping).
    pub gold_pairs: usize,
    /// Candidate pairs processed.
    pub pairs: usize,
    /// ER-graph edges the worker rebuilt.
    pub edge_count: usize,
    /// Questions asked.
    pub questions_asked: usize,
    /// Human-machine loops run.
    pub loops: usize,
    /// FNV-1a over (question ext-ids, truth, labels) in ask order.
    pub transcript_digest: u64,
    /// FNV-1a over the sorted match ext-id pairs.
    pub outcome_digest: u64,
}

impl ShardResult {
    /// Serializes the result (the worker → coordinator wire format).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shard_id".into(), Json::from(self.shard_id)),
            ("campaign".into(), Json::from(self.campaign.as_str())),
            (
                "matches".into(),
                Json::Arr(
                    self.matches
                        .iter()
                        .map(|(a, b)| {
                            Json::Arr(vec![Json::from(a.as_str()), Json::from(b.as_str())])
                        })
                        .collect(),
                ),
            ),
            ("gold_matched".into(), Json::from(self.gold_matched)),
            ("gold_pairs".into(), Json::from(self.gold_pairs)),
            ("pairs".into(), Json::from(self.pairs)),
            ("edge_count".into(), Json::from(self.edge_count)),
            ("questions_asked".into(), Json::from(self.questions_asked)),
            ("loops".into(), Json::from(self.loops)),
            ("transcript_digest".into(), Json::from(self.transcript_digest)),
            ("outcome_digest".into(), Json::from(self.outcome_digest)),
        ])
    }

    /// Parses a result serialized by [`ShardResult::to_json`].
    pub fn from_json(doc: &Json) -> Result<ShardResult, String> {
        let int = |k: &str| {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("result field `{k}` missing"))
        };
        let matches = doc
            .get("matches")
            .and_then(Json::as_array)
            .ok_or("result field `matches` missing")?
            .iter()
            .map(|m| {
                let arr = m.as_array().filter(|a| a.len() == 2);
                match arr {
                    Some([a, b]) => match (a.as_str(), b.as_str()) {
                        (Some(a), Some(b)) => Ok((a.to_string(), b.to_string())),
                        _ => Err("non-string match entry".to_string()),
                    },
                    _ => Err("match entry is not a 2-array".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardResult {
            shard_id: int("shard_id")? as u32,
            campaign: doc
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("result field `campaign` missing")?
                .to_string(),
            matches,
            gold_matched: int("gold_matched")? as usize,
            gold_pairs: int("gold_pairs")? as usize,
            pairs: int("pairs")? as usize,
            edge_count: int("edge_count")? as usize,
            questions_asked: int("questions_asked")? as usize,
            loops: int("loops")? as usize,
            transcript_digest: int("transcript_digest")?,
            outcome_digest: int("outcome_digest")?,
        })
    }
}

/// Runs one shard file end to end.
pub fn process_shard(path: &Path) -> Result<ShardResult, String> {
    let shard = read_shard(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    run_shard(&shard)
}

/// Runs an in-memory shard (the unit under test for equivalence).
pub fn run_shard(shard: &Shard) -> Result<ShardResult, String> {
    let candidates = Candidates::from_pairs(
        shard.pairs.iter().map(|&((u1, u2), prior)| ((EntityId(u1), EntityId(u2)), prior)),
    );
    let graph = ErGraph::build(&shard.kb1.kb, &shard.kb2.kb, &candidates);
    let components = ComponentIndex::build(&graph);
    let initial: Vec<PairId> =
        shard.initial.iter().map(|&i| PairId::from_index(i as usize)).collect();
    let sim_vectors: Vec<SimVec> = if shard.sim_vectors.is_empty() {
        vec![SimVec::new(Vec::new()); candidates.len()]
    } else {
        shard.sim_vectors.clone()
    };
    let edge_count = graph.num_edges();
    let prep = PreparedEr {
        candidate_count: candidates.len(),
        pre_candidates: candidates.clone(),
        candidates,
        initial,
        alignment: shard.alignment.clone(),
        sim_vectors,
        graph,
        components,
    };

    let gold_pairs: IdHashSet<PackedPair> = shard
        .gold
        .iter()
        .map(|&i| {
            let ((u1, u2), _) = shard.pairs[i as usize];
            PackedPair::from((EntityId(u1), EntityId(u2)))
        })
        .collect();
    let truth = |u1: EntityId, u2: EntityId| gold_pairs.contains(&PackedPair::from((u1, u2)));

    let mut crowd: Box<dyn LabelSource> = match shard.crowd {
        CrowdSpec::Oracle => Box::new(OracleCrowd::new()),
        CrowdSpec::Simulated { workers, min_quality, max_quality, per_question } => Box::new(
            SimulatedCrowd::new(workers, min_quality, max_quality, per_question, shard.crowd_seed),
        ),
    };

    let remp = Remp::new(shard.config.clone());
    let mut session = remp
        .begin_prepared(&shard.kb1.kb, &shard.kb2.kb, prep)
        .map_err(|e| format!("shard {}: {e}", shard.shard_id))?;

    // The drive loop, with a transcript digest folded in ask order.
    let mut transcript = FNV_SEED;
    loop {
        let batch = session.next_batch().map_err(|e| format!("shard {}: {e}", shard.shard_id))?;
        let Some(batch) = batch else { break };
        for q in &batch.questions {
            let (u1, u2) = q.pair;
            transcript = fnv1a64_update(transcript, shard.kb1.external_ids[u1.index()].as_bytes());
            transcript = fnv1a64_update(transcript, b"\t");
            transcript = fnv1a64_update(transcript, shard.kb2.external_ids[u2.index()].as_bytes());
            let t = truth(u1, u2);
            transcript = fnv1a64_update(transcript, &[t as u8]);
            let labels = crowd.label(t);
            for label in &labels {
                transcript = fnv1a64_update(transcript, &[label.says_match as u8]);
                transcript =
                    fnv1a64_update(transcript, &label.worker_quality.to_bits().to_le_bytes());
            }
            session.submit(q.id, labels).map_err(|e| format!("shard {}: {e}", shard.shard_id))?;
        }
    }

    let outcome: RempOutcome = session.finish();
    let matched_gold = outcome
        .matches
        .iter()
        .filter(|&&(u1, u2)| gold_pairs.contains(&PackedPair::from((u1, u2))))
        .count();
    let mut matches: Vec<(String, String)> = outcome
        .matches
        .iter()
        .map(|&(u1, u2)| {
            (shard.kb1.external_ids[u1.index()].clone(), shard.kb2.external_ids[u2.index()].clone())
        })
        .collect();
    matches.sort_unstable();
    let mut outcome_digest = FNV_SEED;
    for (a, b) in &matches {
        outcome_digest = fnv1a64_update(outcome_digest, a.as_bytes());
        outcome_digest = fnv1a64_update(outcome_digest, b"\t");
        outcome_digest = fnv1a64_update(outcome_digest, b.as_bytes());
        outcome_digest = fnv1a64_update(outcome_digest, b"\n");
    }

    Ok(ShardResult {
        shard_id: shard.shard_id,
        campaign: shard.campaign.clone(),
        matches,
        gold_matched: matched_gold,
        gold_pairs: shard.gold.len(),
        pairs: shard.pairs.len(),
        edge_count,
        questions_asked: outcome.questions_asked,
        loops: outcome.loops,
        transcript_digest: transcript,
        outcome_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{write_campaign, CampaignManifest, PlanMode};
    use remp_core::RempConfig;
    use remp_datasets::{generate, iimb};
    use remp_ingest::LoadedKb;

    fn campaign_dir(tag: &str, mode: &PlanMode, shards: usize) -> std::path::PathBuf {
        let d = generate(&iimb(0.2));
        let dir = std::env::temp_dir().join(format!("remp-scale-worker-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let kb1 = LoadedKb {
            kb: d.kb1.clone(),
            external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
        };
        let kb2 = LoadedKb {
            kb: d.kb2.clone(),
            external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
        };
        write_campaign(
            &dir,
            tag,
            &kb1,
            &kb2,
            &d.gold,
            &RempConfig::default(),
            &crate::CrowdSpec::Oracle,
            11,
            mode,
            shards,
        )
        .unwrap();
        dir
    }

    #[test]
    fn shard_results_are_deterministic() {
        let dir = campaign_dir("det", &PlanMode::Full, 2);
        let manifest = CampaignManifest::load(&dir).unwrap();
        let path = &manifest.shard_paths(&dir)[0];
        let a = process_shard(path).unwrap();
        let b = process_shard(path).unwrap();
        assert_eq!(a, b, "same shard bytes, same result");
        assert!(a.pairs > 0);
    }

    #[test]
    fn shard_result_round_trips_through_json() {
        let dir = campaign_dir("json", &PlanMode::Full, 2);
        let manifest = CampaignManifest::load(&dir).unwrap();
        let r = process_shard(&manifest.shard_paths(&dir)[0]).unwrap();
        let text = r.to_json().to_string();
        let back = ShardResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn simulated_crowd_is_seed_deterministic() {
        let d = generate(&iimb(0.2));
        let dir = std::env::temp_dir().join("remp-scale-worker-sim");
        let _ = std::fs::remove_dir_all(&dir);
        let kb1 = LoadedKb {
            kb: d.kb1.clone(),
            external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
        };
        let kb2 = LoadedKb {
            kb: d.kb2.clone(),
            external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
        };
        let crowd = crate::CrowdSpec::Simulated {
            workers: 30,
            min_quality: 0.85,
            max_quality: 0.99,
            per_question: 5,
        };
        write_campaign(
            &dir,
            "sim",
            &kb1,
            &kb2,
            &d.gold,
            &RempConfig::default(),
            &crowd,
            5,
            &PlanMode::Full,
            2,
        )
        .unwrap();
        let manifest = CampaignManifest::load(&dir).unwrap();
        for path in manifest.shard_paths(&dir) {
            let a = process_shard(&path).unwrap();
            let b = process_shard(&path).unwrap();
            assert_eq!(a.transcript_digest, b.transcript_digest);
            assert_eq!(a.outcome_digest, b.outcome_digest);
        }
    }

    #[test]
    fn stream_mode_shards_resolve_matches() {
        let dir = campaign_dir("stream", &PlanMode::Stream { max_block: 10_000 }, 3);
        let manifest = CampaignManifest::load(&dir).unwrap();
        let mut matched = 0usize;
        for path in manifest.shard_paths(&dir) {
            let r = process_shard(&path).unwrap();
            matched += r.gold_matched;
        }
        assert!(matched > 0, "oracle-crowd stream campaign finds gold matches");
    }
}
