//! Blocked, streaming candidate generation.
//!
//! `remp_ergraph::generate_candidates` scans per-KB1-entity and is the
//! right shape for in-memory pipelines; at 10⁶ entities the caller
//! usually wants the *pairs* to flow somewhere (a shard planner, a
//! spill file) rather than accumulate. [`stream_candidates`] walks the
//! shared token universe one block (canopy) at a time and pushes each
//! surviving pair to a sink exactly once — the cross-product of a block
//! is iterated, never stored, so peak memory stays at the token index
//! (O(total tokens)) regardless of how blocky the labels are.
//!
//! A pair sharing several tokens is emitted only at its *minimal
//! shared unskipped token*, which makes the emission order (token-major,
//! then KB1/KB2 index order) deterministic and duplicate-free without a
//! seen-set over pairs. Overlarge blocks — stop-word-like tokens whose
//! `|b1|·|b2|` exceeds `max_block` — are skipped entirely, the classic
//! canopy cap; with `max_block = usize::MAX` the emitted set is exactly
//! `generate_candidates`' (the equivalence test pins this).

use remp_kb::{EntityId, Kb};
use remp_simil::{jaccard_ids, normalize_tokens};

/// Counters describing one [`stream_candidates`] walk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockingStats {
    /// Distinct tokens across both KBs.
    pub tokens: usize,
    /// Blocks walked (both sides non-empty, under the cap).
    pub blocks_walked: usize,
    /// Blocks skipped by the `max_block` canopy cap.
    pub blocks_skipped: usize,
    /// Pairs Jaccard-scored (each exactly once).
    pub pairs_scored: usize,
    /// Pairs emitted to the sink (score ≥ threshold).
    pub pairs_emitted: usize,
}

/// Streams the candidate set of `(kb1, kb2)` to `sink` block-by-block.
///
/// `threshold` is the label-Jaccard floor (the prior, as in §IV-B);
/// `max_block` caps `|b1|·|b2|` per token block. Pairs arrive in
/// token-major order, each exactly once, with their Jaccard prior.
pub fn stream_candidates(
    kb1: &Kb,
    kb2: &Kb,
    threshold: f64,
    max_block: usize,
    sink: &mut dyn FnMut((EntityId, EntityId), f64),
) -> BlockingStats {
    // Interned, sorted token-id sets per entity — same universe
    // construction as `generate_candidates`, so Jaccard values agree
    // bit-for-bit.
    let tokens1: Vec<_> =
        (0..kb1.num_entities()).map(|i| normalize_tokens(kb1.label(EntityId(i as u32)))).collect();
    let tokens2: Vec<_> =
        (0..kb2.num_entities()).map(|i| normalize_tokens(kb2.label(EntityId(i as u32)))).collect();
    let mut universe: Vec<&str> =
        tokens1.iter().chain(&tokens2).flatten().map(String::as_str).collect();
    universe.sort_unstable();
    universe.dedup();
    let intern = |ts: &std::collections::BTreeSet<String>| -> Vec<u32> {
        ts.iter()
            .map(|t| universe.binary_search(&t.as_str()).expect("in universe") as u32)
            .collect()
    };
    let toks1: Vec<Vec<u32>> = tokens1.iter().map(&intern).collect();
    let toks2: Vec<Vec<u32>> = tokens2.iter().map(&intern).collect();

    // Per-token blocks for both sides, entities ascending.
    let mut inv1: Vec<Vec<u32>> = vec![Vec::new(); universe.len()];
    for (i, ts) in toks1.iter().enumerate() {
        for &t in ts {
            inv1[t as usize].push(i as u32);
        }
    }
    let mut inv2: Vec<Vec<u32>> = vec![Vec::new(); universe.len()];
    for (i, ts) in toks2.iter().enumerate() {
        for &t in ts {
            inv2[t as usize].push(i as u32);
        }
    }

    let mut stats = BlockingStats { tokens: universe.len(), ..Default::default() };
    let skip: Vec<bool> = (0..universe.len())
        .map(|t| {
            let cost = inv1[t].len().saturating_mul(inv2[t].len());
            cost > max_block
        })
        .collect();
    stats.blocks_skipped = skip.iter().filter(|&&s| s).count();

    for t in 0..universe.len() {
        if skip[t] || inv1[t].is_empty() || inv2[t].is_empty() {
            continue;
        }
        stats.blocks_walked += 1;
        for &u1 in &inv1[t] {
            let ts1 = &toks1[u1 as usize];
            for &u2 in &inv2[t] {
                let ts2 = &toks2[u2 as usize];
                if first_unskipped_shared(ts1, ts2, &skip) != Some(t as u32) {
                    continue; // this pair belongs to an earlier block
                }
                stats.pairs_scored += 1;
                let sim = jaccard_ids(ts1, ts2);
                if sim >= threshold {
                    stats.pairs_emitted += 1;
                    sink((EntityId(u1), EntityId(u2)), sim);
                }
            }
        }
    }
    stats
}

/// The smallest token id shared by both sorted sets whose block is not
/// skipped — the unique block allowed to emit the pair.
fn first_unskipped_shared(a: &[u32], b: &[u32], skip: &[bool]) -> Option<u32> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if !skip[a[i] as usize] {
                    return Some(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_ergraph::generate_candidates;
    use remp_par::Parallelism;
    use std::collections::BTreeMap;

    fn streamed(kb1: &Kb, kb2: &Kb, threshold: f64, max_block: usize) -> BTreeMap<(u32, u32), u64> {
        let mut out = BTreeMap::new();
        stream_candidates(kb1, kb2, threshold, max_block, &mut |(u1, u2), sim| {
            let prev = out.insert((u1.0, u2.0), sim.to_bits());
            assert!(prev.is_none(), "pair ({u1:?}, {u2:?}) emitted twice");
        });
        out
    }

    fn reference(kb1: &Kb, kb2: &Kb, threshold: f64) -> BTreeMap<(u32, u32), u64> {
        let c = generate_candidates(kb1, kb2, threshold, &Parallelism::Sequential);
        c.iter().map(|(id, (u1, u2))| ((u1.0, u2.0), c.prior(id).to_bits())).collect()
    }

    #[test]
    fn uncapped_stream_equals_generate_candidates() {
        for mix in [0.2, 0.4] {
            let d = remp_datasets::generate(&remp_datasets::iimb(mix));
            assert_eq!(
                streamed(&d.kb1, &d.kb2, 0.3, usize::MAX),
                reference(&d.kb1, &d.kb2, 0.3),
                "IIMB mix {mix}"
            );
        }
        let d = remp_datasets::generate(&remp_datasets::tiny(1.0));
        assert_eq!(streamed(&d.kb1, &d.kb2, 0.3, usize::MAX), reference(&d.kb1, &d.kb2, 0.3));
    }

    #[test]
    fn capped_stream_is_a_subset_with_identical_priors() {
        let d = remp_datasets::generate(&remp_datasets::iimb(0.3));
        let full = reference(&d.kb1, &d.kb2, 0.3);
        let capped = streamed(&d.kb1, &d.kb2, 0.3, 64);
        assert!(!capped.is_empty());
        for (pair, sim) in &capped {
            assert_eq!(full.get(pair), Some(sim), "capped priors must agree on {pair:?}");
        }
    }

    #[test]
    fn the_cap_actually_skips_blocks() {
        let d = remp_datasets::generate(&remp_datasets::iimb(0.3));
        let mut n = 0usize;
        let stats = stream_candidates(&d.kb1, &d.kb2, 0.3, 4, &mut |_, _| n += 1);
        assert!(stats.blocks_skipped > 0, "{stats:?}");
        assert_eq!(stats.pairs_emitted, n);
    }

    #[test]
    fn generated_world_streams_and_finds_gold() {
        let spec = crate::ScaleSpec::new("blocking-world", 400);
        let dir = std::env::temp_dir().join("remp-scale-blocking-world");
        crate::generate_dataset(&spec, &dir).unwrap();
        let kb1 = remp_ingest::load_snapshot(&dir.join("kb1.rkb")).unwrap();
        let kb2 = remp_ingest::load_snapshot(&dir.join("kb2.rkb")).unwrap();
        let pairs = streamed(&kb1.kb, &kb2.kb, 0.3, 10_000);
        let world = crate::World::new(&spec);
        let mut found = 0usize;
        for o in 0..world.shared() as u32 {
            if pairs.contains_key(&(o, o)) {
                found += 1;
            }
        }
        let recall = found as f64 / world.shared() as f64;
        assert!(recall > 0.95, "blocking recall on gold pairs: {recall}");
    }
}
