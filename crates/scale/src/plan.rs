//! Campaign planning: candidate pairs → component groups → `.rshard`
//! files plus a `campaign.json` manifest.
//!
//! Two planning modes share one shard format:
//!
//! * **Full** — runs the classic stage 1 ([`remp_core::prepare`]) and
//!   shards its ER-graph components, carrying priors, initial seeds,
//!   attribute alignment and similarity vectors into the shards. The
//!   per-shard session is then the complete paper pipeline.
//! * **Stream** — runs [`crate::stream_candidates`] (the canopy walk)
//!   and derives components by unioning candidate pairs whose endpoints
//!   are relationally adjacent in *both* KBs (out-edges; the ER graph a
//!   worker rebuilds may add reverse orientations, which never splits a
//!   component — only merges planned here matter). No similarity
//!   vectors are computed, so shard configs drop the isolated-pair
//!   classifier. This is the out-of-core path for 10⁵–10⁶ entities.
//!
//! Components larger than the per-shard pair budget ([`shard_cap`]) are
//! cut into consecutive chunks first (the canopy approximation, without
//! which a power-law world's giant component would swallow one shard
//! whole), then greedily balanced
//! into `target_shards` groups by pair count (ties to the lowest group
//! id). The whole plan is a pure function of the candidate list, and
//! every shard is written then dropped, so planner RSS never holds two
//! shards' sub-KBs at once on top of the global KBs.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use remp_core::{prepare, RempConfig};
use remp_ergraph::AttrAlignment;
use remp_ingest::{IngestError, LoadedKb};
use remp_json::Json;
use remp_kb::{EntityId, IdHashMap, PackedPair};
use remp_simil::SimVec;

use crate::shard::{shard_file_name, write_shard, Shard};
use crate::spec::mix_many;

/// Crowd shape a campaign simulates, serialised into every shard.
#[derive(Clone, Debug, PartialEq)]
pub enum CrowdSpec {
    /// Ground-truth labels (the Fig. 5 protocol; zero label noise).
    Oracle,
    /// [`remp_crowd::SimulatedCrowd`] with these parameters; the seed
    /// is supplied per shard (`mix_many([campaign seed, shard id])`).
    Simulated {
        /// Worker-pool size.
        workers: usize,
        /// Minimum worker quality.
        min_quality: f64,
        /// Maximum worker quality.
        max_quality: f64,
        /// Labels collected per question.
        per_question: usize,
    },
}

impl CrowdSpec {
    /// Serializes the spec for manifests and shard files.
    pub fn to_json(&self) -> Json {
        match self {
            CrowdSpec::Oracle => Json::Obj(vec![("kind".into(), Json::from("oracle"))]),
            CrowdSpec::Simulated { workers, min_quality, max_quality, per_question } => {
                Json::Obj(vec![
                    ("kind".into(), Json::from("simulated")),
                    ("workers".into(), Json::from(*workers)),
                    ("min_quality".into(), Json::from(*min_quality)),
                    ("max_quality".into(), Json::from(*max_quality)),
                    ("per_question".into(), Json::from(*per_question)),
                ])
            }
        }
    }

    /// Parses a spec serialized by [`CrowdSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<CrowdSpec, String> {
        match doc.get("kind").and_then(Json::as_str) {
            Some("oracle") => Ok(CrowdSpec::Oracle),
            Some("simulated") => {
                let int = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_usize)
                        .ok_or_else(|| format!("crowd field `{k}` missing"))
                };
                let num = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("crowd field `{k}` missing"))
                };
                Ok(CrowdSpec::Simulated {
                    workers: int("workers")?,
                    min_quality: num("min_quality")?,
                    max_quality: num("max_quality")?,
                    per_question: int("per_question")?,
                })
            }
            other => Err(format!("unknown crowd kind {other:?}")),
        }
    }
}

/// How a campaign's candidate pairs are produced.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanMode {
    /// Classic stage 1 (`prepare`): priors, seeds, alignment, vectors.
    Full,
    /// Streaming canopy walk with this block cap; no vectors, workers
    /// run without the isolated-pair classifier.
    Stream {
        /// Per-token block budget (`|b1|·|b2|` above it is skipped).
        max_block: usize,
    },
}

/// The planned campaign before shard files are written.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// All candidate pairs in global entity ids, with priors.
    pub pairs: Vec<((EntityId, EntityId), f64)>,
    /// Indexes into `pairs` that are exact-label initial matches.
    pub initial: Vec<u32>,
    /// Attribute alignment (empty in stream mode).
    pub alignment: AttrAlignment,
    /// Per-pair similarity vectors (empty in stream mode).
    pub sim_vectors: Vec<SimVec>,
    /// Pair indexes per shard, balanced across components.
    pub groups: Vec<Vec<u32>>,
    /// `|M_c|` before pruning (full mode) or pairs emitted (stream).
    pub candidate_count: usize,
}

/// Plans a campaign: candidates → components → balanced shard groups.
pub fn plan_shards(
    kb1: &remp_kb::Kb,
    kb2: &remp_kb::Kb,
    config: &RempConfig,
    mode: &PlanMode,
    target_shards: usize,
) -> ShardPlan {
    assert!(target_shards > 0, "a campaign needs at least one shard");
    match mode {
        PlanMode::Full => {
            let prep = prepare(kb1, kb2, config);
            let pairs: Vec<((EntityId, EntityId), f64)> = prep
                .candidates
                .ids()
                .map(|p| (prep.candidates.pair(p), prep.candidates.prior(p)))
                .collect();
            let initial: Vec<u32> = prep.initial.iter().map(|p| p.index() as u32).collect();
            let components: Vec<Vec<u32>> = prep
                .components
                .iter()
                .map(|(_, members)| members.iter().map(|p| p.index() as u32).collect())
                .collect();
            let cap = shard_cap(pairs.len(), target_shards);
            ShardPlan {
                groups: balance(&split_components(components, cap), target_shards),
                pairs,
                initial,
                alignment: prep.alignment,
                sim_vectors: prep.sim_vectors,
                candidate_count: prep.candidate_count,
            }
        }
        PlanMode::Stream { max_block } => {
            let mut pairs: Vec<((EntityId, EntityId), f64)> = Vec::new();
            crate::stream_candidates(
                kb1,
                kb2,
                config.label_sim_threshold,
                *max_block,
                &mut |pair, sim| {
                    pairs.push((pair, sim));
                },
            );
            let initial: Vec<u32> = pairs
                .iter()
                .enumerate()
                .filter(|(_, &((u1, u2), _))| kb1.label(u1) == kb2.label(u2))
                .map(|(i, _)| i as u32)
                .collect();
            let components = relational_components(kb1, kb2, &pairs);
            let cap = shard_cap(pairs.len(), target_shards);
            ShardPlan {
                candidate_count: pairs.len(),
                pairs,
                initial,
                alignment: AttrAlignment::default(),
                sim_vectors: Vec::new(),
                groups: balance(&split_components(components, cap), target_shards),
            }
        }
    }
}

/// The hard ceiling on a single planned component's pair count.
///
/// Several pipeline stages hold per-component state that grows
/// superlinearly with component size — the inferred-set stage (Eq. 12)
/// runs a truncated Dijkstra from *every* pair of a component and
/// stores each source's reachable set, so one 10⁵-pair component costs
/// gigabytes and minutes where fifty 2·10³-pair components cost
/// megabytes and seconds. Power-law worlds grow exactly such a giant
/// relational component once candidates number in the millions;
/// presets never come close to this ceiling.
pub const MAX_COMPONENT_PAIRS: usize = 1024;

/// The component-split budget: an even split of the candidate set
/// across shards, never above [`MAX_COMPONENT_PAIRS`]. Components above
/// it are cut (by `split_components`); everything smaller stays
/// whole, so `target_shards` is honoured even when the relational graph
/// has a giant component, and no shard ever carries a component the
/// pipeline's per-component stages can't afford.
pub fn shard_cap(pairs: usize, target_shards: usize) -> usize {
    pairs.div_ceil(target_shards.max(1)).clamp(1, MAX_COMPONENT_PAIRS)
}

/// Splits any component larger than `cap` into consecutive chunks of at
/// most `cap` members. Power-law worlds at 10⁵+ entities grow one giant
/// relational component holding most candidate pairs; left whole it
/// defeats both load balance and the bounded-RSS contract (one worker
/// would hold nearly the entire campaign). Cutting drops the ER-graph
/// edges that cross the cut — the canopy approximation of Rastogi et
/// al.'s large-scale collective EM, applied along candidate-index order
/// so chunks keep the blocking stream's token locality. Components at
/// preset scale sit far below any cap and are never split.
fn split_components(components: Vec<Vec<u32>>, cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(components.len());
    for c in components {
        if c.len() <= cap {
            out.push(c);
        } else {
            out.extend(c.chunks(cap).map(<[u32]>::to_vec));
        }
    }
    out
}

/// Connected components of the candidate graph under mutual relational
/// adjacency: pairs `(u1,u2)` and `(v1,v2)` join when `u1→v1` in KB1
/// and `u2→v2` in KB2 (any relationship names).
fn relational_components(
    kb1: &remp_kb::Kb,
    kb2: &remp_kb::Kb,
    pairs: &[((EntityId, EntityId), f64)],
) -> Vec<Vec<u32>> {
    let index: IdHashMap<PackedPair, u32> =
        pairs.iter().enumerate().map(|(i, &(p, _))| (PackedPair::from(p), i as u32)).collect();
    let mut uf = UnionFind::new(pairs.len());
    for (i, &((u1, u2), _)) in pairs.iter().enumerate() {
        for &(_, v1) in kb1.rels_of(u1) {
            for &(_, v2) in kb2.rels_of(u2) {
                if let Some(&q) = index.get(&PackedPair::from((v1, v2))) {
                    uf.union(i as u32, q);
                }
            }
        }
    }
    let mut roots: IdHashMap<u32, Vec<u32>> = IdHashMap::default();
    for i in 0..pairs.len() as u32 {
        roots.entry(uf.find(i)).or_default().push(i);
    }
    let mut components: Vec<Vec<u32>> = roots.into_values().collect();
    components.sort_by_key(|c| c[0]); // deterministic order by first member
    components
}

/// Greedy balanced grouping: components in order, each to the currently
/// lightest group (ties to the lowest id); empty groups are dropped.
fn balance(components: &[Vec<u32>], target: usize) -> Vec<Vec<u32>> {
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); target];
    let mut load = vec![0usize; target];
    for c in components {
        let g = (0..target).min_by_key(|&g| (load[g], g)).expect("target > 0");
        load[g] += c.len();
        groups[g].extend_from_slice(c);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Manifest file name inside a campaign directory.
pub const MANIFEST_FILE: &str = "campaign.json";

/// `campaign.json`: everything the coordinator (and `rempctl`) needs to
/// run, resume or audit a sharded campaign.
#[derive(Clone, Debug)]
pub struct CampaignManifest {
    /// Campaign name.
    pub campaign: String,
    /// Campaign seed (shard crowd seeds derive from it).
    pub seed: u64,
    /// Shard file names, in shard-id order, relative to the directory.
    pub shards: Vec<String>,
    /// Total gold pairs in the dataset (denominator of merged recall —
    /// gold matches that never became candidates count as misses).
    pub gold_total: usize,
    /// Candidate pairs across all shards.
    pub pairs_total: usize,
    /// `|M_c|` before pruning (equals `pairs_total` in stream mode).
    pub candidate_count: usize,
    /// Planning mode: `"full"` or `"stream"`.
    pub mode: String,
    /// Pipeline configuration shards were written with.
    pub config: RempConfig,
    /// Crowd shape shards were written with.
    pub crowd: CrowdSpec,
}

impl CampaignManifest {
    /// Serializes the manifest.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("campaign".into(), Json::from(self.campaign.as_str())),
            ("seed".into(), Json::from(self.seed)),
            (
                "shards".into(),
                Json::Arr(self.shards.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
            ("gold_total".into(), Json::from(self.gold_total)),
            ("pairs_total".into(), Json::from(self.pairs_total)),
            ("candidate_count".into(), Json::from(self.candidate_count)),
            ("mode".into(), Json::from(self.mode.as_str())),
            ("config".into(), self.config.to_json()),
            ("crowd".into(), self.crowd.to_json()),
        ])
    }

    /// Parses a manifest document.
    pub fn from_json(doc: &Json) -> Result<CampaignManifest, String> {
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest field `{k}` missing"))
        };
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("manifest field `{k}` missing"))
        };
        let shards = doc
            .get("shards")
            .and_then(Json::as_array)
            .ok_or("manifest field `shards` missing")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("non-string shard entry".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignManifest {
            campaign: str_field("campaign")?,
            seed: doc.get("seed").and_then(Json::as_u64).ok_or("manifest field `seed` missing")?,
            shards,
            gold_total: int("gold_total")?,
            pairs_total: int("pairs_total")?,
            candidate_count: int("candidate_count")?,
            mode: str_field("mode")?,
            config: RempConfig::from_json(
                doc.get("config").ok_or("manifest field `config` missing")?,
            )
            .map_err(|e| format!("manifest config invalid: {e}"))?,
            crowd: CrowdSpec::from_json(doc.get("crowd").ok_or("manifest field `crowd` missing")?)?,
        })
    }

    /// Writes the manifest into `dir`.
    pub fn save(&self, dir: &Path) -> Result<(), IngestError> {
        let path = dir.join(MANIFEST_FILE);
        std::fs::write(&path, self.to_json().to_pretty_string())
            .map_err(|error| IngestError::Io { path, error })
    }

    /// Loads the manifest of the campaign in `dir`.
    pub fn load(dir: &Path) -> Result<CampaignManifest, IngestError> {
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|error| IngestError::Io { path: path.clone(), error })?;
        let doc = Json::parse(&text).map_err(|e| IngestError::Syntax {
            path: path.clone(),
            line: 0,
            message: format!("manifest is not JSON: {e}"),
        })?;
        CampaignManifest::from_json(&doc).map_err(|message| IngestError::Syntax {
            path,
            line: 0,
            message,
        })
    }

    /// Absolute shard paths, in shard-id order.
    pub fn shard_paths(&self, dir: &Path) -> Vec<PathBuf> {
        self.shards.iter().map(|s| dir.join(s)).collect()
    }
}

/// Plans and writes a complete sharded campaign into `dir`: one
/// `.rshard` per non-empty group plus [`MANIFEST_FILE`]. Each shard is
/// built, written and dropped before the next — planner RSS stays at
/// the global KBs plus a single shard.
#[allow(clippy::too_many_arguments)]
pub fn write_campaign(
    dir: &Path,
    campaign: &str,
    kb1: &LoadedKb,
    kb2: &LoadedKb,
    gold: &HashSet<(EntityId, EntityId)>,
    config: &RempConfig,
    crowd: &CrowdSpec,
    seed: u64,
    mode: &PlanMode,
    target_shards: usize,
) -> Result<CampaignManifest, IngestError> {
    std::fs::create_dir_all(dir)
        .map_err(|error| IngestError::Io { path: dir.to_path_buf(), error })?;
    let plan = plan_shards(&kb1.kb, &kb2.kb, config, mode, target_shards);
    let shard_config = match mode {
        PlanMode::Full => config.clone(),
        // No similarity vectors in the shards → the random-forest
        // isolated-pair classifier has nothing to run on.
        PlanMode::Stream { .. } => config.clone().without_classifier(),
    };
    let num_shards = plan.groups.len() as u32;
    let mut shard_files = Vec::new();
    for (shard_id, group) in plan.groups.iter().enumerate() {
        let shard_id = shard_id as u32;
        let mut local_of: IdHashMap<u32, u32> = IdHashMap::default();
        for (local, &global) in group.iter().enumerate() {
            local_of.insert(global, local as u32);
        }

        let keep1 = shard_entities(&kb1.kb, group.iter().map(|&i| plan.pairs[i as usize].0 .0));
        let keep2 = shard_entities(&kb2.kb, group.iter().map(|&i| plan.pairs[i as usize].0 .1));
        let sub1 = restrict_loaded(kb1, &keep1);
        let sub2 = restrict_loaded(kb2, &keep2);
        let local1 = |u: EntityId| keep1.binary_search(&u).expect("pair endpoint kept") as u32;
        let local2 = |u: EntityId| keep2.binary_search(&u).expect("pair endpoint kept") as u32;

        let pairs: Vec<((u32, u32), f64)> = group
            .iter()
            .map(|&i| {
                let ((u1, u2), prior) = plan.pairs[i as usize];
                ((local1(u1), local2(u2)), prior)
            })
            .collect();
        let initial: Vec<u32> =
            plan.initial.iter().filter_map(|g| local_of.get(g).copied()).collect();
        let gold_local: Vec<u32> = group
            .iter()
            .enumerate()
            .filter(|(_, &i)| gold.contains(&plan.pairs[i as usize].0))
            .map(|(local, _)| local as u32)
            .collect();
        let sim_vectors: Vec<SimVec> = if plan.sim_vectors.is_empty() {
            Vec::new()
        } else {
            group.iter().map(|&i| plan.sim_vectors[i as usize].clone()).collect()
        };

        let shard = Shard {
            shard_id,
            num_shards,
            campaign: campaign.to_string(),
            crowd_seed: mix_many(&[seed, shard_id as u64]),
            config: shard_config.clone(),
            crowd: crowd.clone(),
            kb1: sub1,
            kb2: sub2,
            pairs,
            initial,
            alignment: plan.alignment.clone(),
            sim_vectors,
            gold: gold_local,
        };
        let file = shard_file_name(shard_id);
        write_shard(&shard, &dir.join(&file))?;
        shard_files.push(file);
    }

    let manifest = CampaignManifest {
        campaign: campaign.to_string(),
        seed,
        shards: shard_files,
        gold_total: gold.len(),
        pairs_total: plan.pairs.len(),
        candidate_count: plan.candidate_count,
        mode: match mode {
            PlanMode::Full => "full".into(),
            PlanMode::Stream { .. } => "stream".into(),
        },
        config: shard_config,
        crowd: crowd.clone(),
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Sorted, deduplicated entity set for one shard side: every pair
/// endpoint plus its 1-hop relational neighbourhood (so per-shard
/// consistency estimation sees the endpoints' true value sets).
fn shard_entities(kb: &remp_kb::Kb, endpoints: impl Iterator<Item = EntityId>) -> Vec<EntityId> {
    let mut keep: Vec<EntityId> = Vec::new();
    for u in endpoints {
        keep.push(u);
        for &(_, v) in kb.rels_of(u) {
            keep.push(v);
        }
        for &(_, v) in kb.rels_into(u) {
            keep.push(v);
        }
    }
    keep.sort_unstable_by_key(|u| u.0);
    keep.dedup();
    keep
}

/// Restricts a loaded KB (with external ids) to `keep`.
fn restrict_loaded(loaded: &LoadedKb, keep: &[EntityId]) -> LoadedKb {
    LoadedKb {
        kb: loaded.kb.restrict(keep),
        external_ids: keep.iter().map(|u| loaded.external_ids[u.index()].clone()).collect(),
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != r {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = r;
            cur = next;
        }
        r
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins (no rank heuristics).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_datasets::{generate, iimb};

    #[test]
    fn crowd_spec_round_trips() {
        for spec in [
            CrowdSpec::Oracle,
            CrowdSpec::Simulated {
                workers: 20,
                min_quality: 0.8,
                max_quality: 0.95,
                per_question: 5,
            },
        ] {
            assert_eq!(CrowdSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
    }

    #[test]
    fn balance_spreads_components() {
        let components: Vec<Vec<u32>> =
            vec![vec![0, 1, 2], vec![3], vec![4, 5], vec![6], vec![7, 8, 9, 10]];
        let groups = balance(&components, 3);
        assert_eq!(groups.len(), 3);
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<u32>>());
        let max = groups.iter().map(Vec::len).max().unwrap();
        assert!(max <= 6, "greedy balance keeps groups near even: {groups:?}");
    }

    #[test]
    fn balance_drops_empty_groups() {
        let groups = balance(&[vec![0], vec![1]], 8);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn full_plan_partitions_the_retained_pairs() {
        let d = generate(&iimb(0.3));
        let config = RempConfig::default();
        let plan = plan_shards(&d.kb1, &d.kb2, &config, &PlanMode::Full, 4);
        let mut seen: Vec<u32> = plan.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), plan.pairs.len(), "groups partition the pairs");
        assert_eq!(seen, (0..plan.pairs.len() as u32).collect::<Vec<u32>>());
        assert_eq!(plan.sim_vectors.len(), plan.pairs.len());
        assert!(plan.candidate_count >= plan.pairs.len());
    }

    #[test]
    fn stream_plan_has_no_vectors_and_keeps_neighbours_together() {
        let d = generate(&iimb(0.3));
        let config = RempConfig::default();
        let plan = plan_shards(&d.kb1, &d.kb2, &config, &PlanMode::Stream { max_block: 10_000 }, 4);
        assert!(plan.sim_vectors.is_empty());
        assert!(plan.alignment.is_empty());
        assert!(!plan.pairs.is_empty());
        // Components stay together up to the shard cap; a component
        // above it is cut into consecutive cap-sized chunks, each of
        // which stays together (the canopy approximation).
        let group_of: std::collections::HashMap<u32, usize> = plan
            .groups
            .iter()
            .enumerate()
            .flat_map(|(g, members)| members.iter().map(move |&i| (i, g)))
            .collect();
        let components = relational_components(&d.kb1, &d.kb2, &plan.pairs);
        let cap = shard_cap(plan.pairs.len(), 4);
        for c in &components {
            for chunk in c.chunks(cap) {
                let g = group_of[&chunk[0]];
                for &i in chunk {
                    assert_eq!(
                        group_of[&i], g,
                        "pair {i} split from its component chunk across shards"
                    );
                }
            }
        }
        assert!(
            components.iter().any(|c| c.len() > 1),
            "want at least one non-trivial component for the test to bite"
        );
    }

    #[test]
    fn written_campaign_round_trips_through_the_manifest() {
        let d = generate(&iimb(0.2));
        let dir = std::env::temp_dir().join("remp-scale-plan-campaign");
        let _ = std::fs::remove_dir_all(&dir);
        let kb1 = LoadedKb {
            kb: d.kb1.clone(),
            external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
        };
        let kb2 = LoadedKb {
            kb: d.kb2.clone(),
            external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
        };
        let manifest = write_campaign(
            &dir,
            "plan-test",
            &kb1,
            &kb2,
            &d.gold,
            &RempConfig::default(),
            &CrowdSpec::Oracle,
            7,
            &PlanMode::Full,
            3,
        )
        .unwrap();
        let loaded = CampaignManifest::load(&dir).unwrap();
        assert_eq!(loaded.campaign, manifest.campaign);
        assert_eq!(loaded.shards, manifest.shards);
        assert_eq!(loaded.gold_total, d.gold.len());
        assert_eq!(loaded.mode, "full");

        // Every shard file round-trips and pair counts add up.
        let mut total_pairs = 0usize;
        for (id, path) in loaded.shard_paths(&dir).iter().enumerate() {
            let shard = crate::read_shard(path).unwrap();
            assert_eq!(shard.shard_id, id as u32);
            assert_eq!(shard.num_shards as usize, loaded.shards.len());
            assert_eq!(shard.sim_vectors.len(), shard.pairs.len());
            shard.kb1.kb.validate().unwrap();
            shard.kb2.kb.validate().unwrap();
            total_pairs += shard.pairs.len();
        }
        assert_eq!(total_pairs, manifest.pairs_total);
    }
}
