//! Maximum bipartite matching (augmenting paths), used by `simL` to pair up
//! literals one-to-one.

/// Size of a maximum matching in the bipartite graph with `n_left` /
/// `n_right` vertices and the given `(left, right)` edges.
///
/// Kuhn's augmenting-path algorithm: O(V·E), ample for literal value sets
/// (typically < 10 per side).
pub fn max_bipartite_matching(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> usize {
    if edges.is_empty() {
        return 0;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_left];
    for &(l, r) in edges {
        debug_assert!(l < n_left && r < n_right, "edge out of range");
        adj[l].push(r);
    }
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut matched = 0;
    let mut visited = vec![false; n_right];
    for l in 0..n_left {
        visited.iter_mut().for_each(|v| *v = false);
        if try_augment(l, &adj, &mut match_right, &mut visited) {
            matched += 1;
        }
    }
    matched
}

fn try_augment(
    l: usize,
    adj: &[Vec<usize>],
    match_right: &mut [Option<usize>],
    visited: &mut [bool],
) -> bool {
    for &r in &adj[l] {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        if match_right[r].is_none()
            || try_augment(match_right[r].unwrap(), adj, match_right, visited)
        {
            match_right[r] = Some(l);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph() {
        assert_eq!(max_bipartite_matching(3, 3, &[]), 0);
    }

    #[test]
    fn perfect_matching() {
        let edges = vec![(0, 0), (1, 1), (2, 2)];
        assert_eq!(max_bipartite_matching(3, 3, &edges), 3);
    }

    #[test]
    fn contention_resolved_by_augmenting() {
        // 0-0, 1-0, 1-1 : greedy could match 1→0 and strand 0; augmenting finds 2.
        let edges = vec![(1, 0), (1, 1), (0, 0)];
        assert_eq!(max_bipartite_matching(2, 2, &edges), 2);
    }

    #[test]
    fn star_graph_matches_one() {
        let edges = vec![(0, 0), (1, 0), (2, 0), (3, 0)];
        assert_eq!(max_bipartite_matching(4, 1, &edges), 1);
    }

    /// Brute-force maximum matching by trying all edge subsets.
    fn brute_force(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> usize {
        let m = edges.len();
        let mut best = 0;
        for mask in 0u32..(1 << m) {
            let mut used_l = vec![false; n_left];
            let mut used_r = vec![false; n_right];
            let mut size = 0;
            let mut ok = true;
            for (i, &(l, r)) in edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    if used_l[l] || used_r[r] {
                        ok = false;
                        break;
                    }
                    used_l[l] = true;
                    used_r[r] = true;
                    size += 1;
                }
            }
            if ok {
                best = best.max(size);
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn agrees_with_brute_force(
            edges in proptest::collection::vec((0usize..5, 0usize..5), 0..10)
        ) {
            let mut edges = edges;
            edges.sort_unstable();
            edges.dedup();
            prop_assume!(edges.len() <= 10);
            let fast = max_bipartite_matching(5, 5, &edges);
            let slow = brute_force(5, 5, &edges);
            prop_assert_eq!(fast, slow);
        }
    }
}
