//! Label normalisation: lower-casing, tokenisation and light stemming
//! (paper §IV-B: "normalize entity labels via lowercasing, tokenization,
//! stemming, etc.").

use std::collections::BTreeSet;

/// A normalised, deduplicated token set (the unit the Jaccard coefficient
/// in candidate generation operates on).
pub type TokenSet = BTreeSet<String>;

/// Splits `text` into lowercase alphanumeric tokens and stems each one.
///
/// Tokens are maximal runs of alphanumeric characters; everything else
/// (punctuation, whitespace) is a separator. The stemmer is a light
/// suffix-stripping stemmer (a small subset of Porter's rules) — enough to
/// conflate plural/verb-form variants without the full Porter machinery.
pub fn normalize_tokens(text: &str) -> TokenSet {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| stem(&t.to_lowercase()))
        .collect()
}

/// Light suffix-stripping stemmer.
///
/// Rules (applied once, longest first): `ies`→`y`, `sses`→`ss`, trailing
/// `s` (but not `ss`/`us`), `ing` and `ed` when the stem stays ≥ 3 chars.
/// Purely ASCII-oriented; non-ASCII tokens pass through unchanged.
fn stem(token: &str) -> String {
    let t = token;
    if t.len() >= 5 && t.ends_with("ies") {
        return format!("{}y", &t[..t.len() - 3]);
    }
    if t.len() >= 5 && t.ends_with("sses") {
        return t[..t.len() - 2].to_string();
    }
    if t.len() >= 6 && t.ends_with("ing") && t[..t.len() - 3].len() >= 3 {
        return t[..t.len() - 3].to_string();
    }
    if t.len() >= 5 && t.ends_with("ed") && t[..t.len() - 2].len() >= 3 {
        return t[..t.len() - 2].to_string();
    }
    if t.len() >= 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        normalize_tokens(s).into_iter().collect()
    }

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(toks("Mona Lisa"), vec!["lisa", "mona"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(toks("O'Neill, John-Paul"), vec!["john", "neill", "o", "paul"]);
    }

    #[test]
    fn plural_stemming() {
        assert_eq!(toks("movies"), vec!["movy"]); // ies -> y
        assert_eq!(toks("actors"), vec!["actor"]);
        assert_eq!(toks("glass"), vec!["glass"]); // ss kept
    }

    #[test]
    fn us_suffix_is_kept() {
        assert_eq!(toks("virus"), vec!["virus"]);
        assert_eq!(toks("campus"), vec!["campus"]);
    }

    #[test]
    fn ing_and_ed() {
        assert_eq!(toks("directing"), vec!["direct"]);
        assert_eq!(toks("directed"), vec!["direct"]);
        // too-short stems are not stripped
        assert_eq!(toks("ring"), vec!["ring"]);
        assert_eq!(toks("red"), vec!["red"]);
    }

    #[test]
    fn deduplicates() {
        assert_eq!(toks("the the THE"), vec!["the"]);
    }

    #[test]
    fn empty_input() {
        assert!(toks("").is_empty());
        assert!(toks("  ,;  ").is_empty());
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(toks("Blade Runner 2049"), vec!["2049", "blade", "runner"]);
    }
}
