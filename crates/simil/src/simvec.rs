//! Similarity vectors and the natural partial order over them (paper §IV-D).
//!
//! For a candidate entity pair `(u1, u2)` and the attribute match set
//! `M_at`, the similarity vector is `s(u1, u2) = (s_1, …, s_|Mat|)` where
//! `s_i` is `simL` on the i-th matched attribute. The natural partial order
//! is `s ⪰ s'  ⟺  ∀i. s_i ≥ s'_i`; it drives both Remp's pruning
//! (Algorithm 1) and the monotonicity baselines (POWER, HIKE).

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

/// Outcome of comparing two [`SimVec`]s under the product partial order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dominance {
    /// Vectors are component-wise equal.
    Equal,
    /// `self` strictly dominates the other (`⪰` and not equal).
    Dominates,
    /// The other strictly dominates `self`.
    DominatedBy,
    /// Neither dominates: the vectors are incomparable.
    Incomparable,
}

/// A similarity vector over the matched attributes.
#[derive(Clone, PartialEq)]
pub struct SimVec(Vec<f64>);

impl SimVec {
    /// Wraps raw components; each must be finite.
    pub fn new(components: Vec<f64>) -> Self {
        debug_assert!(components.iter().all(|c| c.is_finite()), "non-finite similarity");
        SimVec(components)
    }

    /// Number of components (= number of attribute matches).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw component slice.
    pub fn components(&self) -> &[f64] {
        &self.0
    }

    /// Compares under the product order. Panics if lengths differ (vectors
    /// from the same ER-graph construction always share the attribute-match
    /// dimension).
    pub fn dominance(&self, other: &SimVec) -> Dominance {
        assert_eq!(self.len(), other.len(), "similarity vectors of different dimension");
        let mut geq = true;
        let mut leq = true;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a < b {
                geq = false;
            }
            if a > b {
                leq = false;
            }
            if !geq && !leq {
                return Dominance::Incomparable;
            }
        }
        match (geq, leq) {
            (true, true) => Dominance::Equal,
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Incomparable,
        }
    }

    /// `self ⪰ other` (component-wise ≥, equality allowed).
    pub fn weakly_dominates(&self, other: &SimVec) -> bool {
        matches!(self.dominance(other), Dominance::Dominates | Dominance::Equal)
    }

    /// `self ≻ other` (component-wise ≥ with at least one strict >).
    ///
    /// This is the "strictly larger" relation counted by `min_rank`
    /// (paper Eq. 2).
    pub fn strictly_dominates(&self, other: &SimVec) -> bool {
        self.dominance(other) == Dominance::Dominates
    }

    /// The arithmetic mean of the components (a scalar summary used as a
    /// tie-breaking heuristic by baselines; not part of the partial order).
    pub fn mean(&self) -> f64 {
        if self.0.is_empty() {
            0.0
        } else {
            self.0.iter().sum::<f64>() / self.0.len() as f64
        }
    }

    /// The maximum component, 0.0 if empty.
    pub fn max_component(&self) -> f64 {
        self.0.iter().copied().fold(0.0, f64::max)
    }

    /// Lexicographic total-order comparison (used only for deterministic
    /// sorting, *not* for match inference).
    pub fn lex_cmp(&self, other: &SimVec) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.partial_cmp(b) {
                Some(Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        self.len().cmp(&other.len())
    }
}

impl Index<usize> for SimVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl fmt::Debug for SimVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.3}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for SimVec {
    fn from(v: Vec<f64>) -> Self {
        SimVec::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(v: &[f64]) -> SimVec {
        SimVec::new(v.to_vec())
    }

    #[test]
    fn dominance_cases() {
        assert_eq!(sv(&[1.0, 1.0]).dominance(&sv(&[0.5, 0.5])), Dominance::Dominates);
        assert_eq!(sv(&[0.5, 0.5]).dominance(&sv(&[1.0, 1.0])), Dominance::DominatedBy);
        assert_eq!(sv(&[1.0, 0.0]).dominance(&sv(&[0.0, 1.0])), Dominance::Incomparable);
        assert_eq!(sv(&[0.3, 0.3]).dominance(&sv(&[0.3, 0.3])), Dominance::Equal);
    }

    #[test]
    fn strict_requires_one_strict_component() {
        assert!(sv(&[0.5, 0.6]).strictly_dominates(&sv(&[0.5, 0.5])));
        assert!(!sv(&[0.5, 0.5]).strictly_dominates(&sv(&[0.5, 0.5])));
    }

    #[test]
    fn weak_allows_equality() {
        assert!(sv(&[0.5]).weakly_dominates(&sv(&[0.5])));
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn dimension_mismatch_panics() {
        let _ = sv(&[1.0]).dominance(&sv(&[1.0, 2.0]));
    }

    #[test]
    fn summaries() {
        let v = sv(&[0.0, 0.5, 1.0]);
        assert!((v.mean() - 0.5).abs() < 1e-12);
        assert_eq!(v.max_component(), 1.0);
        assert_eq!(SimVec::new(vec![]).mean(), 0.0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", sv(&[0.25, 1.0])), "s(0.250, 1.000)");
    }

    fn arb_vec3() -> impl Strategy<Value = SimVec> {
        proptest::collection::vec(0.0f64..=1.0, 3).prop_map(SimVec::new)
    }

    proptest! {
        /// Reflexivity: every vector weakly dominates itself.
        #[test]
        fn reflexive(a in arb_vec3()) {
            prop_assert!(a.weakly_dominates(&a));
            prop_assert!(!a.strictly_dominates(&a));
        }

        /// Antisymmetry of the strict relation.
        #[test]
        fn antisymmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(!(a.strictly_dominates(&b) && b.strictly_dominates(&a)));
        }

        /// Transitivity of weak dominance.
        #[test]
        fn transitive(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
            if a.weakly_dominates(&b) && b.weakly_dominates(&c) {
                prop_assert!(a.weakly_dominates(&c));
            }
        }

        /// dominance() agrees with its definition component-wise.
        #[test]
        fn dominance_matches_definition(a in arb_vec3(), b in arb_vec3()) {
            let geq = a.components().iter().zip(b.components()).all(|(x, y)| x >= y);
            let leq = a.components().iter().zip(b.components()).all(|(x, y)| x <= y);
            let expected = match (geq, leq) {
                (true, true) => Dominance::Equal,
                (true, false) => Dominance::Dominates,
                (false, true) => Dominance::DominatedBy,
                (false, false) => Dominance::Incomparable,
            };
            prop_assert_eq!(a.dominance(&b), expected);
        }
    }
}
