//! Similarity between individual literals (paper §IV-C: "we use the Jaccard
//! coefficient for strings and the maximum percentage difference for
//! numbers").

use remp_kb::Value;

use crate::{jaccard, normalize_tokens};

/// Maximum-percentage-difference similarity for two numbers:
/// `1 − |a − b| / max(|a|, |b|)`, clamped to `[0, 1]`.
///
/// Equal numbers (including `0 = 0`) score 1.0; opposite signs score 0.0.
pub fn numeric_similarity(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 0.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Similarity of two literal values.
///
/// * text × text → token-set Jaccard on normalised tokens;
/// * number × number → [`numeric_similarity`];
/// * text × number → the text is parsed as a number if possible (KBs
///   routinely store numbers as strings), otherwise 0.0.
pub fn literal_similarity(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Text(x), Value::Text(y)) => jaccard(&normalize_tokens(x), &normalize_tokens(y)),
        (Value::Number(x), Value::Number(y)) => numeric_similarity(*x, *y),
        (Value::Text(x), Value::Number(y)) | (Value::Number(y), Value::Text(x)) => {
            match x.trim().parse::<f64>() {
                Ok(parsed) => numeric_similarity(parsed, *y),
                Err(_) => 0.0,
            }
        }
    }
}

/// A literal with its similarity-relevant derived forms computed once.
///
/// [`literal_similarity`] re-tokenises (and re-parses) its text operands on
/// *every* call, which dominates similarity-vector construction: one
/// entity's values are compared against every candidate partner's values.
/// Preparing each value once and comparing prepared forms is
/// [bit-identical](prepared_similarity) and turns the per-comparison cost
/// into a set intersection.
#[derive(Clone, Debug)]
pub enum PreparedLiteral {
    /// A text literal: its normalised token set and, when the text parses
    /// as a number, that parse (for text × number comparisons).
    Text {
        /// `normalize_tokens` of the original text.
        tokens: crate::TokenSet,
        /// `text.trim().parse::<f64>()`, precomputed.
        parsed: Option<f64>,
    },
    /// A numeric literal, unchanged.
    Number(f64),
}

impl PreparedLiteral {
    /// Prepares one literal for repeated comparisons.
    pub fn new(value: &Value) -> Self {
        match value {
            Value::Text(x) => PreparedLiteral::Text {
                tokens: normalize_tokens(x),
                parsed: x.trim().parse::<f64>().ok(),
            },
            Value::Number(x) => PreparedLiteral::Number(*x),
        }
    }
}

/// [`literal_similarity`] over prepared literals.
///
/// Evaluates the *same* expressions as [`literal_similarity`] on the
/// precomputed forms — the result is bit-identical for every input pair
/// (`jaccard` sees the same token sets, `numeric_similarity` the same
/// floats), it just skips the repeated normalisation work.
pub fn prepared_similarity(a: &PreparedLiteral, b: &PreparedLiteral) -> f64 {
    use PreparedLiteral::*;
    match (a, b) {
        (Text { tokens: x, .. }, Text { tokens: y, .. }) => jaccard(x, y),
        (Number(x), Number(y)) => numeric_similarity(*x, *y),
        (Text { parsed, .. }, Number(y)) | (Number(y), Text { parsed, .. }) => {
            parsed.map_or(0.0, |x| numeric_similarity(x, *y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numeric_equal() {
        assert_eq!(numeric_similarity(5.0, 5.0), 1.0);
        assert_eq!(numeric_similarity(0.0, 0.0), 1.0);
    }

    #[test]
    fn numeric_close() {
        assert!((numeric_similarity(100.0, 99.0) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn numeric_far_and_signs() {
        assert_eq!(numeric_similarity(1.0, -1.0), 0.0);
        assert!((numeric_similarity(1.0, 100.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn numeric_nonfinite() {
        assert_eq!(numeric_similarity(f64::INFINITY, 1.0), 0.0);
        assert_eq!(numeric_similarity(f64::NAN, 1.0), 0.0);
    }

    #[test]
    fn text_text() {
        let a = Value::text("The Player");
        let b = Value::text("Player, The");
        assert!((literal_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_parseable() {
        let a = Value::text("1452");
        let b = Value::number(1452.0);
        assert_eq!(literal_similarity(&a, &b), 1.0);
    }

    #[test]
    fn mixed_unparseable() {
        let a = Value::text("fourteen fifty-two");
        let b = Value::number(1452.0);
        assert_eq!(literal_similarity(&a, &b), 0.0);
    }

    proptest! {
        #[test]
        fn prepared_similarity_is_bit_identical(
            text_a in any::<bool>(), xa in "[a-c0-9 .]{0,10}", na in -1e6f64..1e6,
            text_b in any::<bool>(), xb in "[a-c0-9 .]{0,10}", nb in -1e6f64..1e6,
        ) {
            let a = if text_a { Value::text(xa) } else { Value::number(na) };
            let b = if text_b { Value::text(xb) } else { Value::number(nb) };
            let pa = PreparedLiteral::new(&a);
            let pb = PreparedLiteral::new(&b);
            prop_assert_eq!(
                prepared_similarity(&pa, &pb).to_bits(),
                literal_similarity(&a, &b).to_bits()
            );
        }

        #[test]
        fn numeric_symmetric_bounded(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let s1 = numeric_similarity(a, b);
            let s2 = numeric_similarity(b, a);
            prop_assert!((s1 - s2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&s1));
        }

        #[test]
        fn numeric_self_is_one(a in -1e6f64..1e6) {
            prop_assert_eq!(numeric_similarity(a, a), 1.0);
        }

        #[test]
        fn literal_symmetric(x in "[a-c0-9 ]{0,8}", y in -100f64..100.0) {
            let a = Value::text(x.clone());
            let b = Value::number(y);
            prop_assert!((literal_similarity(&a, &b) - literal_similarity(&b, &a)).abs() < 1e-12);
        }
    }
}
