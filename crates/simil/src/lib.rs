//! Similarity measures used throughout Remp.
//!
//! The paper (§IV-B/C) builds all of its machine evidence from three layers
//! of similarity:
//!
//! 1. **Token-level string similarity** on normalised labels (lower-casing,
//!    tokenisation, stemming) — the `normalize` and `string` modules. Jaccard is the
//!    default measure; cosine, dice and edit distance are provided as the
//!    paper notes any of them can be plugged in.
//! 2. **Literal similarity** ([`literal_similarity`]): token Jaccard for
//!    strings and the maximum percentage difference for numbers.
//! 3. **Extended Jaccard set similarity** `simL` over two *sets* of literals
//!    ([`sim_l`]): a maximum bipartite matching of literal pairs whose
//!    internal similarity clears a threshold (0.9 in the paper), normalised
//!    Jaccard-style.
//!
//! [`SimVec`] is the similarity vector over matched attributes together with
//! the natural partial order `s ⪰ s'` (§IV-D) used by pruning, POWER and
//! HIKE.

mod literal;
mod matching;
mod normalize;
mod simvec;
mod string;

pub use literal::{literal_similarity, numeric_similarity, prepared_similarity, PreparedLiteral};
pub use matching::max_bipartite_matching;
pub use normalize::{normalize_tokens, TokenSet};
pub use simvec::{Dominance, SimVec};
pub use string::{
    cosine, dice, jaccard, jaccard_ids, levenshtein, normalized_edit_similarity, overlap,
};

use remp_kb::Value;

/// Extended Jaccard similarity `simL` between two sets of literals
/// (paper Eq. 1 context; \[35\]).
///
/// Two literals "are the same" when [`literal_similarity`] ≥ `threshold`
/// (the paper uses 0.9). The count `m` of matched pairs is a *maximum*
/// bipartite matching so each literal participates at most once, and the
/// result is `m / (|N1| + |N2| − m)`. Both-empty input is undefined in the
/// paper; we return 0.0 so that attribute averaging (Eq. 1) skips empty
/// evidence via its denominator filter.
pub fn sim_l(n1: &[Value], n2: &[Value], threshold: f64) -> f64 {
    if n1.is_empty() || n2.is_empty() {
        return 0.0;
    }
    let edges: Vec<(usize, usize)> = n1
        .iter()
        .enumerate()
        .flat_map(|(i, v1)| {
            n2.iter().enumerate().filter_map(move |(j, v2)| {
                (literal_similarity(v1, v2) >= threshold).then_some((i, j))
            })
        })
        .collect();
    let m = max_bipartite_matching(n1.len(), n2.len(), &edges);
    m as f64 / (n1.len() + n2.len() - m) as f64
}

/// Weighted (soft) variant of [`sim_l`] used for similarity *vectors*
/// (§IV-D): instead of counting pairs above a high threshold, literal
/// pairs with similarity ≥ `min_sim` are greedily matched by descending
/// similarity and the result is `Σ sim / (|N1| + |N2| − |M|)`.
///
/// This keeps components *graded* — a pair sharing one of three name
/// tokens scores 1/3, not 0 — which is what gives the partial order its
/// dominance chains (Table V's reduction ratios collapse with binary
/// components). Attribute matching (Eq. 1) keeps the thresholded
/// [`sim_l`], as §IV-C specifies.
pub fn sim_l_weighted(n1: &[Value], n2: &[Value], min_sim: f64) -> f64 {
    sim_l_weighted_by(n1, n2, min_sim, literal_similarity)
}

/// [`sim_l_weighted`] over [`PreparedLiteral`]s — bit-identical results
/// (the greedy matching is the same code, [`prepared_similarity`] is
/// bit-identical to [`literal_similarity`]) without re-tokenising every
/// text literal on every comparison. This is the form the
/// similarity-vector stage uses: each entity's values are prepared once
/// and compared against every candidate partner.
pub fn sim_l_weighted_prepared(
    n1: &[PreparedLiteral],
    n2: &[PreparedLiteral],
    min_sim: f64,
) -> f64 {
    sim_l_weighted_by(n1, n2, min_sim, prepared_similarity)
}

/// Shared greedy-matching core of the weighted `simL` variants.
fn sim_l_weighted_by<T>(n1: &[T], n2: &[T], min_sim: f64, sim: impl Fn(&T, &T) -> f64) -> f64 {
    if n1.is_empty() || n2.is_empty() {
        return 0.0;
    }
    let sim = &sim;
    let mut scored: Vec<(f64, usize, usize)> = n1
        .iter()
        .enumerate()
        .flat_map(|(i, v1)| {
            n2.iter().enumerate().filter_map(move |(j, v2)| {
                let s = sim(v1, v2);
                (s >= min_sim).then_some((s, i, j))
            })
        })
        .collect();
    // Greedy maximum-weight matching: descending similarity, deterministic
    // tie-break by indexes.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut used1 = vec![false; n1.len()];
    let mut used2 = vec![false; n2.len()];
    let mut total = 0.0;
    let mut matched = 0usize;
    for (sim, i, j) in scored {
        if !used1[i] && !used2[j] {
            used1[i] = true;
            used2[j] = true;
            total += sim;
            matched += 1;
        }
    }
    total / (n1.len() + n2.len() - matched) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_l_identical_sets() {
        let a = vec![Value::text("alpha"), Value::text("beta")];
        assert!((sim_l(&a, &a, 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sim_l_disjoint_sets() {
        let a = vec![Value::text("alpha")];
        let b = vec![Value::text("zyzzy")];
        assert_eq!(sim_l(&a, &b, 0.9), 0.0);
    }

    #[test]
    fn sim_l_partial_overlap() {
        let a = vec![Value::text("alpha"), Value::text("beta")];
        let b = vec![Value::text("alpha"), Value::text("gamma"), Value::text("delta")];
        // one matched pair: 1 / (2 + 3 - 1) = 0.25
        assert!((sim_l(&a, &b, 0.9) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sim_l_empty_sets() {
        assert_eq!(sim_l(&[], &[], 0.9), 0.0);
        assert_eq!(sim_l(&[Value::text("x")], &[], 0.9), 0.0);
    }

    #[test]
    fn sim_l_uses_matching_not_counting() {
        // Both left literals are similar to the single right literal, but the
        // matching can use it only once.
        let a = vec![Value::text("alpha"), Value::text("alpha")];
        let b = vec![Value::text("alpha")];
        assert!((sim_l(&a, &b, 0.9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_sim_l_is_graded() {
        let a = vec![Value::text("john kelora")];
        let b = vec![Value::text("john mobari")];
        // One of three union tokens shared: 1/3, not 0.
        assert!((sim_l_weighted(&a, &b, 0.1) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(sim_l(&a, &b, 0.9), 0.0, "thresholded variant is binary");
    }

    #[test]
    fn weighted_sim_l_bounds_and_identity() {
        let a = vec![Value::text("alpha"), Value::text("beta")];
        assert!((sim_l_weighted(&a, &a, 0.1) - 1.0).abs() < 1e-9);
        assert_eq!(sim_l_weighted(&a, &[], 0.1), 0.0);
        let b = vec![Value::text("zzz")];
        assert_eq!(sim_l_weighted(&a, &b, 0.1), 0.0);
    }

    #[test]
    fn weighted_sim_l_matches_greedily() {
        // Two left values compete for one strong right value; the greedy
        // matching assigns the best pair and the leftover matches weakly.
        let a = vec![Value::text("one two three"), Value::text("one two four")];
        let b = vec![Value::text("one two three")];
        let got = sim_l_weighted(&a, &b, 0.1);
        assert!((got - 1.0 / 2.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn sim_l_numbers() {
        let a = vec![Value::number(100.0)];
        let b = vec![Value::number(99.0)];
        assert!(sim_l(&a, &b, 0.9) > 0.0);
        let c = vec![Value::number(5.0)];
        assert_eq!(sim_l(&a, &c, 0.9), 0.0);
    }
}
