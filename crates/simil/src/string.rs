//! Set- and character-based string similarity measures (paper §IV-B: the
//! approach "can work with any of them"; Jaccard is the default).

use crate::TokenSet;

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|`; 0.0 when both sets are empty.
pub fn jaccard(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Jaccard coefficient over interned token ids.
///
/// Both slices must be sorted ascending and duplicate-free (the natural
/// shape when a sorted `TokenSet` is interned against a lexicographically
/// sorted token universe). Bit-identical to [`jaccard`] on the
/// corresponding string sets: the intersection count and set sizes are
/// equal by construction and the final expression is the same, so the
/// `f64` result is the same — only the string comparisons are gone.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`; 0.0 when both sets are empty.
pub fn dice(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Set cosine `|A ∩ B| / sqrt(|A|·|B|)`; 0.0 when either set is empty.
pub fn cosine(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; 0.0 when either is empty.
pub fn overlap(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

/// Levenshtein edit distance between two strings, by characters.
///
/// Classic two-row dynamic program, O(|a|·|b|) time, O(min) memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &cl) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(cl != cs);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Edit similarity `1 − lev(a, b) / max(|a|, |b|)`; 1.0 for two empty strings.
pub fn normalized_edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize_tokens;
    use proptest::prelude::*;

    fn ts(s: &str) -> TokenSet {
        normalize_tokens(s)
    }

    #[test]
    fn jaccard_basic() {
        assert!((jaccard(&ts("a b c"), &ts("b c d")) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&ts(""), &ts("")), 0.0);
        assert!((jaccard(&ts("x"), &ts("x")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dice_basic() {
        assert!((dice(&ts("a b"), &ts("b c")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_basic() {
        assert!((cosine(&ts("a b"), &ts("b c")) - 0.5).abs() < 1e-12);
        assert_eq!(cosine(&ts(""), &ts("x")), 0.0);
    }

    #[test]
    fn overlap_basic() {
        assert!((overlap(&ts("a b c d"), &ts("a")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_basic() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_similarity_basic() {
        assert_eq!(normalized_edit_similarity("", ""), 1.0);
        assert!((normalized_edit_similarity("abcd", "abce") - 0.75).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn jaccard_ids_equals_jaccard_under_interning(
            a in "[a-e ]{0,16}", b in "[a-e ]{0,16}"
        ) {
            let (sa, sb) = (ts(&a), ts(&b));
            // Intern against the sorted union, exactly as
            // generate_candidates does.
            let mut universe: Vec<&str> =
                sa.iter().chain(sb.iter()).map(|s| s.as_str()).collect();
            universe.sort_unstable();
            universe.dedup();
            let intern = |s: &TokenSet| -> Vec<u32> {
                s.iter()
                    .map(|t| universe.binary_search(&t.as_str()).unwrap() as u32)
                    .collect()
            };
            let (ia, ib) = (intern(&sa), intern(&sb));
            // Bit-identical, not approximately equal.
            prop_assert_eq!(
                jaccard_ids(&ia, &ib).to_bits(),
                jaccard(&sa, &sb).to_bits()
            );
        }

        #[test]
        fn jaccard_symmetric_and_bounded(a in "[a-d ]{0,12}", b in "[a-d ]{0,12}") {
            let (sa, sb) = (ts(&a), ts(&b));
            let j1 = jaccard(&sa, &sb);
            let j2 = jaccard(&sb, &sa);
            prop_assert!((j1 - j2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&j1));
        }

        #[test]
        fn jaccard_self_is_one(a in "[a-d]{1,8}( [a-d]{1,8}){0,3}") {
            let sa = ts(&a);
            prop_assume!(!sa.is_empty());
            prop_assert!((jaccard(&sa, &sa) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn measures_order(a in "[a-e ]{0,14}", b in "[a-e ]{0,14}") {
            // jaccard ≤ dice ≤ overlap on non-empty sets (standard inequality chain)
            let (sa, sb) = (ts(&a), ts(&b));
            prop_assume!(!sa.is_empty() && !sb.is_empty());
            let j = jaccard(&sa, &sb);
            let d = dice(&sa, &sb);
            let o = overlap(&sa, &sb);
            prop_assert!(j <= d + 1e-12);
            prop_assert!(d <= o + 1e-12);
        }

        #[test]
        fn levenshtein_triangle(a in "[ab]{0,8}", b in "[ab]{0,8}", c in "[ab]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn levenshtein_symmetric(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn edit_similarity_bounded(a in ".{0,10}", b in ".{0,10}") {
            let s = normalized_edit_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
